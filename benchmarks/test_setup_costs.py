"""Section 8.1's in-text numbers: training time per epoch and competitor
build times.

The paper lists seconds/epoch for every dataset x task and the creation
times of the B+ tree, HashMap, and Bloom filter.  Expected shapes: the
traditional structures build in (fractions of) seconds while models train
for tens of seconds; compressed models do not train slower than
non-compressed ones at the same width (fewer embedding rows to update).
"""

from __future__ import annotations

from conftest import ALL_DATASETS
from test_table3_cardinality_memory import hashmap_for
from test_table7_index_memory import bptree_for
from test_table10_bloom_memory import traditional_filters

from repro.bench import (
    Timer,
    get_bloom_filter,
    get_cardinality_estimator,
    get_collection,
    get_set_index,
    report_table,
)


def test_training_seconds_per_epoch(benchmark):
    rows = []
    for name in ALL_DATASETS:
        rows.append(
            [
                name,
                get_cardinality_estimator(name, "lsm", True).report.seconds_per_epoch,
                get_cardinality_estimator(name, "clsm", True).report.seconds_per_epoch,
                get_set_index(name, "lsm").report.seconds_per_epoch,
                get_set_index(name, "clsm").report.seconds_per_epoch,
                get_bloom_filter(name, "lsm").report.seconds_per_epoch,
                get_bloom_filter(name, "clsm").report.seconds_per_epoch,
            ]
        )
    report_table(
        "setup_costs",
        ["dataset", "card LSM", "card CLSM", "idx LSM", "idx CLSM",
         "BF LSM", "BF CLSM"],
        rows,
        title="Section 8.1: training time (s/epoch) per dataset and task",
    )
    for row in rows:
        assert all(value > 0 for value in row[1:])
    benchmark(lambda: get_cardinality_estimator("sd", "clsm", True).report)


def test_competitor_build_times(benchmark):
    rows = []
    for name in ALL_DATASETS:
        collection = get_collection(name)
        with Timer() as tree_timer:
            bptree_for.__wrapped__(name)  # rebuild, uncached, to time it
        with Timer() as hashmap_timer:
            hashmap_for.__wrapped__(name)
        with Timer() as bloom_timer:
            traditional_filters.__wrapped__(name)
        rows.append(
            [name, len(collection), tree_timer.seconds, hashmap_timer.seconds,
             bloom_timer.seconds]
        )
    report_table(
        "setup_costs",
        ["dataset", "sets", "B+ tree (s)", "HashMap (s)", "Bloom x3 (s)"],
        rows,
        title="Section 8.1: competitor build times",
    )
    # Traditional structures build far faster than models train (tens of
    # seconds at this scale) — the paper's point about retraining costs.
    model_build = get_cardinality_estimator("rw-small", "clsm", True)
    tree_seconds = rows[0][2]
    assert model_build.report.total_seconds > tree_seconds

    benchmark(lambda: len(get_collection("sd")))
