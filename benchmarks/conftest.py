"""Benchmark-suite configuration.

The benchmarks regenerate every table and figure of the paper's evaluation
(Section 8) at reproduction scale.  Trained structures are cached per
process via :mod:`repro.bench.workbench`, so accuracy, memory, and latency
benches over the same configuration share one training run.

Run with:  pytest benchmarks/ --benchmark-only
Scale with: REPRO_SCALE=4 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

# Dataset keys in paper order, used by parametrized benches.
ALL_DATASETS = ("rw-small", "rw-mid", "rw-large", "tweets", "sd")
# Datasets whose vocabularies are large enough for compression to shrink
# the model drastically.  Tweets/SD have small vocabularies at reproduction
# scale, where the paper itself notes compression brings little (§8.2.1:
# "for SD ... there is no need for compression").
LARGE_VOCAB_DATASETS = ("rw-small", "rw-mid", "rw-large")
# The index-task tables (7/8) restrict to the datasets the paper shows
# (RW-1.5M falls back to the auxiliary structure and is omitted there).
INDEX_DATASETS = ("rw-small", "rw-large", "tweets", "sd")


@pytest.fixture(scope="session")
def paper_datasets() -> tuple[str, ...]:
    return ALL_DATASETS


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    """Clear persisted tables once per run (report_table appends)."""
    from repro.bench import results_dir

    for stale in results_dir().glob("*.txt"):
        stale.unlink()
    yield
