"""Table 4: per-query execution time for the cardinality-estimation task.

Queries run one at a time ("to mimic the behavior of a real query system",
§8.2.3).  Expected shape: the HashMap is orders of magnitude faster than
any model; CLSM is slightly slower than LSM (compression adds the
concatenation step); hybrids are no slower than their plain counterparts
(auxiliary hits short-circuit the model).
"""

from __future__ import annotations

import pytest
from conftest import ALL_DATASETS
from test_table3_cardinality_memory import hashmap_for

from repro.bench import (
    get_cardinality_estimator,
    get_cardinality_workload,
    mean_query_ms,
    report_table,
)


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_table4_latency(name, benchmark):
    queries, _ = get_cardinality_workload(name, 300)
    queries = list(queries)
    hashmap = hashmap_for(name)

    timings = {}
    for label, kind, hybrid in (
        ("LSM", "lsm", False),
        ("LSM-Hybrid", "lsm", True),
        ("CLSM", "clsm", False),
        ("CLSM-Hybrid", "clsm", True),
    ):
        estimator = get_cardinality_estimator(name, kind, hybrid)
        timings[label] = mean_query_ms(estimator.estimate, queries)
    timings["HashMap"] = mean_query_ms(hashmap.cardinality, queries)

    report_table(
        "table4",
        ["dataset", "LSM", "LSM-Hybrid", "CLSM", "CLSM-Hybrid", "HashMap"],
        [[name] + [timings[k] for k in
                   ("LSM", "LSM-Hybrid", "CLSM", "CLSM-Hybrid", "HashMap")]],
        title=f"Table 4 ({name}): execution time (ms/query), cardinality task",
    )

    # Paper shape: the HashMap lookup beats every model by a wide margin.
    assert timings["HashMap"] < timings["LSM"] / 10
    assert timings["HashMap"] < timings["CLSM"] / 10
    # Models answer within single-digit milliseconds at this scale.
    assert max(timings.values()) < 10.0

    estimator = get_cardinality_estimator(name, "clsm", True)
    benchmark(estimator.estimate, queries[0])
