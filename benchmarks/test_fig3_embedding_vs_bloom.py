"""Figure 3: embedding-matrix size vs Bloom-filter size.

The paper's motivation for compression: for growing element counts, a raw
shared embedding always overtakes an optimally sized Bloom filter, for any
embedding dimension and false-positive rate.  We regenerate the curves and
assert the crossover story, then show that compressed embeddings stay
*below* every Bloom curve.
"""

from __future__ import annotations

from repro.baselines import bloom_size_bytes
from repro.bench import report_table
from repro.core import ElementCompressor, embedding_matrix_bytes

ITEM_COUNTS = (100, 1_000, 10_000, 100_000, 1_000_000)
EMBEDDING_DIMS = (2, 8, 32)
FP_RATES = (0.1, 0.01, 0.001)


def compute_figure3_rows() -> list[list]:
    rows = []
    for items in ITEM_COUNTS:
        row: list = [items]
        for dim in EMBEDDING_DIMS:
            row.append(embedding_matrix_bytes(items, dim) / 1e6)
        for fp_rate in FP_RATES:
            row.append(bloom_size_bytes(items, fp_rate) / 1e6)
        compressed_rows = ElementCompressor(items, ns=2).total_vocab()
        row.append(embedding_matrix_bytes(compressed_rows, 8) / 1e6)
        rows.append(row)
    return rows


def test_fig3_embedding_vs_bloom(benchmark):
    rows = benchmark(compute_figure3_rows)
    report_table(
        "fig3",
        ["items"]
        + [f"emb d={d} (MB)" for d in EMBEDDING_DIMS]
        + [f"BF fp={p} (MB)" for p in FP_RATES]
        + ["comp. emb d=8 (MB)"],
        rows,
        title="Figure 3: embedding matrix vs Bloom filter size",
    )
    # Paper's claim 1: the raw embedding always ends up larger than the
    # Bloom filter as items grow (already at modest dimensions).
    for dim in EMBEDDING_DIMS:
        raw_large = embedding_matrix_bytes(ITEM_COUNTS[-1], dim)
        bloom_large = bloom_size_bytes(ITEM_COUNTS[-1], 0.001)
        assert raw_large > bloom_large
    # Paper's claim 2 (Section 5): ns=2 compression pushes the embedding
    # below even the strictest Bloom filter at 1M items.
    compressed = embedding_matrix_bytes(
        ElementCompressor(1_000_000, ns=2).total_vocab(), 8
    )
    assert compressed < bloom_size_bytes(1_000_000, 0.1)


def test_fig3_growth_is_linear_vs_logarithmic(benchmark):
    """Embedding grows linearly in items; the Bloom filter does too but
    with a ~9.6 bits/item slope at fp=0.01 — the learned side only wins
    after compression decouples rows from items."""

    def slopes():
        emb = [embedding_matrix_bytes(n, 8) / n for n in ITEM_COUNTS]
        bloom = [bloom_size_bytes(n, 0.01) / n for n in ITEM_COUNTS]
        comp = [
            embedding_matrix_bytes(ElementCompressor(n, ns=2).total_vocab(), 8) / n
            for n in ITEM_COUNTS
        ]
        return emb, bloom, comp

    emb, bloom, comp = benchmark(slopes)
    # Per-item embedding cost is constant (32 B/item at d=8 float32).
    assert all(abs(v - emb[0]) < 1e-9 for v in emb)
    # Per-item Bloom cost is constant (~1.2 B/item at 1%).
    assert 1.0 < bloom[-1] < 1.4
    # Per-item compressed-embedding cost vanishes with scale.
    assert comp[-1] < comp[0] / 10
