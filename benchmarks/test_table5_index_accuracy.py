"""Table 5: index accuracy (q-error / absolute error) vs outlier percentile.

For each dataset and model kind, the hybrid index is trained with guided
outlier removal at thresholds <50 / <75 / <90 / <95 and with no removal.
Accuracy is measured over the index workload, with auxiliary (outlier)
hits answered exactly.  Expected shapes: error decreases monotonically as
more outliers are evicted; "No Removal" is clearly the worst; LSM is
generally at least as accurate as CLSM.

Datasets: the three representative ones (RW-small, Tweets, SD) — training
5 percentile variants x 2 kinds per dataset is the expensive part of the
suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import get_index_workload, get_set_index, report_table
from repro.core import LearnedSetIndex, mean_absolute_error, mean_q_error

DATASETS = ("rw-small", "tweets", "sd")
PERCENTILES = (50.0, 75.0, 90.0, 95.0, None)


def hybrid_errors(index: LearnedSetIndex, queries, positions):
    """Predicted-vs-true errors with auxiliary hits answered exactly."""
    estimates = np.empty(len(queries), dtype=np.float64)
    for row, query in enumerate(queries):
        exact = index.auxiliary.get(query)
        estimates[row] = exact if exact is not None else index.predict_position(query)
    truths = positions.astype(np.float64)
    # Positions are 0-based; shift both sides so q-error is well defined.
    return (
        mean_q_error(estimates + 1.0, truths + 1.0),
        mean_absolute_error(estimates, truths),
    )


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("kind", ("lsm", "clsm"))
def test_table5_accuracy_vs_percentile(name, kind, benchmark):
    queries, positions = get_index_workload(name, 300)
    queries = list(queries)

    q_errors = {}
    abs_errors = {}
    for percentile in PERCENTILES:
        index = get_set_index(name, kind, percentile)
        q_err, abs_err = hybrid_errors(index, queries, positions)
        label = f"<{percentile:.0f}%" if percentile is not None else "No Removal"
        q_errors[label] = q_err
        abs_errors[label] = abs_err

    labels = list(q_errors)
    report_table(
        "table5",
        ["dataset/kind", "metric"] + labels,
        [
            [f"{name}/{kind.upper()}", "avg q-error"] + [q_errors[k] for k in labels],
            [f"{name}/{kind.upper()}", "avg abs-error"]
            + [abs_errors[k] for k in labels],
        ],
        title=f"Table 5 ({name}, {kind.upper()}-Hybrid): accuracy vs percentile",
    )

    # Paper shape: more aggressive removal -> lower (or equal) error, and
    # every removal beats No Removal.
    assert q_errors["<50%"] <= q_errors["No Removal"] * 1.05
    assert abs_errors["<50%"] <= abs_errors["No Removal"] * 1.05
    assert q_errors["<50%"] <= q_errors["<95%"] * 1.05

    index = get_set_index(name, kind, 90.0)
    benchmark(index.predict_position, queries[0])
