"""Architecture ablation: DeepSets vs Set Transformer (paper §2 / §3.2).

The paper states: "Although the Set Transformer has a slightly better
accuracy than the DeepSets model for some more complicated tasks, for
simpler tasks, they perform similarly.  However, the DeepSets model is
superiorly faster and smaller, which is crucial when replacing traditional
data structures."  This bench measures all three claims on the cardinality
task: accuracy (comparable), model size (DeepSets smaller), per-query
latency (DeepSets faster).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.bench import report_table
from repro.core import (
    DeepSetsModel,
    LogMinMaxScaler,
    SetTransformerModel,
    TrainConfig,
    guided_fit,
    mean_q_error,
)
from repro.datasets import generate_rw_like
from repro.nn.serialize import state_dict_bytes
from repro.sets import cardinality_training_pairs


@lru_cache(maxsize=None)
def world():
    collection = generate_rw_like(1500, seed=77)
    subsets, cards = cardinality_training_pairs(
        collection, max_subset_size=3, max_samples=15_000,
        rng=np.random.default_rng(0),
    )
    scaler = LogMinMaxScaler.for_cardinality(int(cards.max()))
    return collection, list(subsets), cards.astype(float), scaler


@lru_cache(maxsize=None)
def trained(kind: str):
    collection, subsets, cards, scaler = world()
    vocab = collection.max_element_id() + 1
    if kind == "deepsets":
        model = DeepSetsModel(
            vocab, 16, (32,), (32,), rng=np.random.default_rng(1)
        )
    else:
        model = SetTransformerModel(
            vocab, dim=16, num_heads=4, num_blocks=1,
            rng=np.random.default_rng(1),
        )
    result = guided_fit(
        model, subsets, cards, scaler,
        TrainConfig(epochs=20, batch_size=512, lr=3e-3, loss="mse", seed=1),
        rng=np.random.default_rng(1),
    )
    return model, result.history.seconds_per_epoch


def test_ablation_architecture(benchmark):
    _, subsets, cards, scaler = world()
    rng = np.random.default_rng(2)
    chosen = rng.choice(len(subsets), 300, replace=False)
    queries = [subsets[i] for i in chosen]
    exact = cards[chosen]

    rows = []
    metrics = {}
    for label, kind in (("DeepSets", "deepsets"), ("SetTransformer", "transformer")):
        model, seconds_per_epoch = trained(kind)
        estimates = np.maximum(scaler.inverse(model.predict(queries)), 1.0)
        # Batched per-query time: single-query calls are dominated by
        # Python dispatch overhead for both models, so the paper's speed
        # comparison is measured on batches (as training/inference runs).
        import time

        started = time.perf_counter()
        for _ in range(5):
            model.predict(queries)
        batched_ms = (time.perf_counter() - started) / (5 * len(queries)) * 1e3
        metrics[label] = {
            "q": mean_q_error(estimates, exact),
            "bytes": state_dict_bytes(model),
            "ms": batched_ms,
            "epoch_s": seconds_per_epoch,
        }
        rows.append(
            [label, metrics[label]["q"], metrics[label]["bytes"] / 1e3,
             batched_ms, seconds_per_epoch]
        )

    report_table(
        "ablation_architecture",
        ["model", "mean q-error", "size (KB)", "ms/query (batched)", "s/epoch"],
        rows,
        title="Ablation: DeepSets vs Set Transformer (cardinality task)",
    )

    deepsets, transformer = metrics["DeepSets"], metrics["SetTransformer"]
    # Paper §3.2: similar accuracy on simple tasks...
    assert deepsets["q"] < transformer["q"] * 3
    # ...but DeepSets is smaller and faster (inference and training).
    assert deepsets["ms"] < transformer["ms"]
    assert deepsets["epoch_s"] < transformer["epoch_s"]
    assert deepsets["bytes"] < transformer["bytes"]

    model, _ = trained("deepsets")
    benchmark(model.predict_one, queries[0])
