"""Table 3: memory consumption for the cardinality-estimation task.

LSM / LSM-Hybrid / CLSM / CLSM-Hybrid against the exact all-subsets
HashMap.  Expected shape: CLSM models are orders of magnitude smaller than
LSM models (the compressed embeddings); hybrids add a modest auxiliary
overhead; the HashMap dwarfs everything.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from conftest import ALL_DATASETS, LARGE_VOCAB_DATASETS

from repro.baselines import SubsetHashMap
from repro.bench import (
    MAX_SUBSET_SIZE,
    get_cardinality_estimator,
    get_collection,
    megabytes,
    report_table,
)


@lru_cache(maxsize=None)
def hashmap_for(name: str) -> SubsetHashMap:
    return SubsetHashMap(get_collection(name), max_subset_size=MAX_SUBSET_SIZE)


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_table3_memory(name, benchmark):
    lsm = get_cardinality_estimator(name, "lsm", False)
    lsm_hybrid = get_cardinality_estimator(name, "lsm", True)
    clsm = get_cardinality_estimator(name, "clsm", False)
    clsm_hybrid = get_cardinality_estimator(name, "clsm", True)
    hashmap = hashmap_for(name)

    row = [
        name,
        megabytes(lsm.total_bytes()),
        megabytes(lsm_hybrid.total_bytes()),
        megabytes(clsm.total_bytes()),
        megabytes(clsm_hybrid.total_bytes()),
        megabytes(hashmap.size_bytes()),
    ]
    report_table(
        "table3",
        ["dataset", "LSM", "LSM-Hybrid", "CLSM", "CLSM-Hybrid", "HashMap"],
        [row],
        title=f"Table 3 ({name}): memory (MB), cardinality task",
    )

    # Paper shapes: compression shrinks the model (massively so when the
    # vocabulary is large); the exact HashMap is far larger than any
    # learned variant.
    if name in LARGE_VOCAB_DATASETS:
        assert clsm.model_bytes() < lsm.model_bytes() / 5
    else:
        assert clsm.model_bytes() <= lsm.model_bytes()
    assert hashmap.size_bytes() > lsm_hybrid.total_bytes()
    assert hashmap.size_bytes() > 10 * clsm_hybrid.total_bytes()
    # Hybrid = model + auxiliary, strictly more than the plain model.
    assert lsm_hybrid.total_bytes() > lsm.model_bytes()
    assert clsm_hybrid.total_bytes() > clsm.model_bytes()

    benchmark(clsm_hybrid.total_bytes)
