"""Figure 7: sum-of-digits — DeepSets vs compressed DeepSets vs LSTM/GRU.

The original DeepSets text experiment (§8.5.1): train on multisets of at
most 10 digits labelled with their sum, test on much larger multisets
(sizes 5–100).  Expected shapes:

* DeepSets and the compressed variant generalize far beyond the training
  sizes (sum pooling + linear head extrapolates);
* LSTM and GRU degrade badly as the test size grows;
* with a larger digit universe (values up to 100), the compressed variant
  matches the plain model's accuracy with a smaller embedding footprint.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro import nn
from repro.bench import report_table
from repro.core import (
    CompressedDeepSetsModel,
    DeepSetsModel,
    ElementCompressor,
    TrainConfig,
    Trainer,
)
from repro.core.deepsets import SetModel
from repro.datasets import digit_sum_eval_data, digit_sum_training_data
from repro.nn.data import SetBatch, SetDataLoader

TRAIN_SAMPLES = 12_000
EVAL_SIZES = (5, 10, 20, 50, 100)
EVAL_SAMPLES = 500
EPOCHS = 25


class RecurrentRegressor(SetModel):
    """Embedding -> LSTM/GRU -> linear head, consuming ragged batches.

    The Figure 7 competitors: sequence models have to *read* the multiset
    in some order, so they are exposed to the size distribution shift.
    """

    def __init__(self, cell: str, vocab_size: int, embedding_dim: int = 16,
                 hidden: int = 32, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.embedding = nn.Embedding(vocab_size, embedding_dim, rng=rng)
        recurrent = nn.LSTM if cell == "lstm" else nn.GRU
        self.rnn = recurrent(embedding_dim, hidden, rng=rng)
        self.head = nn.Linear(hidden, 1, rng=rng)

    def forward(self, batch: SetBatch):
        sizes = batch.set_sizes()
        max_len = int(sizes.max()) if len(sizes) else 1
        padded = np.zeros((batch.num_sets, max_len), dtype=np.int64)
        mask = np.zeros((batch.num_sets, max_len), dtype=np.float64)
        cursor = 0
        for row, size in enumerate(sizes):
            padded[row, :size] = batch.elements[cursor : cursor + size]
            mask[row, :size] = 1.0
            cursor += size
        embedded = self.embedding(padded.ravel())
        embedded = embedded.reshape(batch.num_sets, max_len, -1)
        return self.head(self.rnn(embedded, mask))


def make_deepsets(max_digit: int, rng) -> DeepSetsModel:
    return DeepSetsModel(
        vocab_size=max_digit + 1,
        embedding_dim=16,
        phi_hidden=(32,),
        rho_hidden=(),           # linear head: the extrapolating choice
        pooling="sum",
        out_activation="identity",
        rng=rng,
    )


def make_compressed(max_digit: int, rng) -> CompressedDeepSetsModel:
    return CompressedDeepSetsModel(
        ElementCompressor(max_digit, ns=2),
        embedding_dim=16,
        phi_hidden=(32,),
        rho_hidden=(),
        pooling="sum",
        out_activation="identity",
        rng=rng,
    )


@lru_cache(maxsize=None)
def trained_models(max_digit: int):
    sets, sums = digit_sum_training_data(
        TRAIN_SAMPLES, max_set_size=10, max_digit=max_digit, seed=0
    )
    models = {
        "DeepSets": make_deepsets(max_digit, np.random.default_rng(0)),
        "CDeepSets": make_compressed(max_digit, np.random.default_rng(1)),
        "LSTM": RecurrentRegressor(
            "lstm", max_digit + 1, rng=np.random.default_rng(2)
        ),
        "GRU": RecurrentRegressor(
            "gru", max_digit + 1, rng=np.random.default_rng(3)
        ),
    }
    for label, model in models.items():
        loader = SetDataLoader(
            sets, sums, batch_size=256, rng=np.random.default_rng(4)
        )
        Trainer(
            model, TrainConfig(epochs=EPOCHS, lr=3e-3, loss="mae", seed=4)
        ).fit(loader)
    return models


def evaluate(model, max_digit: int) -> dict[int, float]:
    maes = {}
    for size in EVAL_SIZES:
        sets, sums = digit_sum_eval_data(
            size, EVAL_SAMPLES, max_digit=max_digit, seed=size
        )
        predictions = model.predict(sets)
        maes[size] = float(np.abs(predictions - sums).mean())
    return maes


def test_fig7a_digits_1_to_10(benchmark):
    models = trained_models(10)
    rows = []
    results = {}
    for label, model in models.items():
        maes = evaluate(model, 10)
        results[label] = maes
        rows.append([label] + [maes[s] for s in EVAL_SIZES])
    report_table(
        "fig7",
        ["model"] + [f"M={s}" for s in EVAL_SIZES],
        rows,
        title="Figure 7a: sum-of-digits MAE, digits in [1, 10]",
    )

    # Paper shape: set models generalize to sizes far beyond training;
    # recurrent models fall apart at M=100.
    assert results["DeepSets"][100] < results["LSTM"][100] / 3
    assert results["DeepSets"][100] < results["GRU"][100] / 3
    assert results["CDeepSets"][100] < results["LSTM"][100] / 3
    # In-distribution everyone is decent.
    assert results["LSTM"][10] < 5.0
    assert results["DeepSets"][10] < 5.0

    benchmark(models["DeepSets"].predict_one, list(range(1, 9)))


def test_fig7b_digits_1_to_100(benchmark):
    """Larger digit universe: compression pays while accuracy holds."""
    models = trained_models(100)
    deepsets = models["DeepSets"]
    compressed = models["CDeepSets"]
    rows = []
    results = {}
    for label, model in (("DeepSets", deepsets), ("CDeepSets", compressed)):
        maes = evaluate(model, 100)
        results[label] = maes
        rows.append(
            [label]
            + [maes[s] for s in EVAL_SIZES]
            + [model.embedding_parameters() * 4 / 1e3]
        )
    report_table(
        "fig7",
        ["model"] + [f"M={s}" for s in EVAL_SIZES] + ["emb KB"],
        rows,
        title="Figure 7b: sum-of-digits MAE, digits in [1, 100]",
    )

    # Paper shape: the compressed embedding is smaller while accuracy is
    # in the same regime.
    assert compressed.embedding_parameters() < deepsets.embedding_parameters()
    # Normalize by the label magnitude (sums scale with M * E[digit]).
    rel_plain = results["DeepSets"][100] / (100 * 50.5)
    rel_comp = results["CDeepSets"][100] / (100 * 50.5)
    assert rel_comp < max(3 * rel_plain, 0.25)

    benchmark(compressed.predict_one, [1, 50, 99])
