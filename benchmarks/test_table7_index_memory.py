"""Table 7: memory consumption for the index task.

Hybrid learned indexes broken down into Model / Aux.Str. / Err. columns,
against a B+ tree (branching factor 100) over permutation-invariant set
hashes.  Expected shapes: the CLSM model column is tiny; most hybrid
memory sits in the auxiliary structure; the B+ tree is far larger than
either hybrid.  (The paper omits RW-1.5M here — its hybrid falls back to
the auxiliary structure entirely; we keep the same dataset selection.)
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from conftest import INDEX_DATASETS, LARGE_VOCAB_DATASETS

from repro.baselines import BPlusTree, commutative_set_hash
from repro.bench import get_collection, get_set_index, megabytes, report_table
from repro.nn.serialize import pickled_size_bytes


@lru_cache(maxsize=None)
def bptree_for(name: str) -> BPlusTree:
    tree = BPlusTree(order=100)
    for position, stored in enumerate(get_collection(name)):
        tree.insert(commutative_set_hash(stored), position)
    return tree


@pytest.mark.parametrize("name", INDEX_DATASETS)
def test_table7_memory(name, benchmark):
    lsm = get_set_index(name, "lsm")
    clsm = get_set_index(name, "clsm")
    tree = bptree_for(name)
    tree_mb = megabytes(pickled_size_bytes(tree))

    rows = []
    for label, index in (("LSM-Hybrid", lsm), ("CLSM-Hybrid", clsm)):
        rows.append(
            [
                name,
                label,
                megabytes(index.model_bytes()),
                megabytes(index.auxiliary_bytes()),
                megabytes(index.error_bytes()),
                tree_mb,
            ]
        )
    report_table(
        "table7",
        ["dataset", "variant", "model", "aux.str.", "err.", "B+ tree"],
        rows,
        title=f"Table 7 ({name}): memory (MB), index task",
    )

    # Paper shapes.  Note a scale caveat: the paper trains on ALL subsets
    # (~25x the number of sets) yet reports small auxiliary structures; at
    # reproduction scale the training corpus is subsampled, so the evicted
    # 10% is large *relative to the collection* and the auxiliary can rival
    # the B+ tree.  The model+error part — the learned replacement itself —
    # stays far below the tree, which is the claim that matters.
    if name in LARGE_VOCAB_DATASETS:
        assert clsm.model_bytes() < lsm.model_bytes() / 5
    else:
        assert clsm.model_bytes() <= lsm.model_bytes()
    tree_bytes = pickled_size_bytes(tree)
    assert clsm.model_bytes() + clsm.error_bytes() < tree_bytes
    assert lsm.model_bytes() + lsm.error_bytes() < tree_bytes
    # The auxiliary structure dominates the hybrid footprint.
    assert clsm.auxiliary_bytes() > clsm.model_bytes()

    benchmark(clsm.total_bytes)
