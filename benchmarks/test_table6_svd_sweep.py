"""Table 6: impact of the compression factor sv_d (index task, Tweets).

The divisor interpolates between the most compressing setting ("Full
comp.") and no compression at all: larger sv_d means larger remainder
vocabularies, more embedding parameters, better accuracy — a tunable
memory/accuracy knob.  Expected shapes: accuracy improves and memory grows
monotonically with sv_d; training time is lower with compression.
"""

from __future__ import annotations

import numpy as np

from repro.bench import (
    MAX_SUBSET_SIZE,
    MAX_TRAINING_SAMPLES,
    get_collection,
    get_index_pairs,
    get_index_workload,
    megabytes,
    report_table,
)
from repro.core import (
    LearnedSetIndex,
    ModelConfig,
    TrainConfig,
    mean_q_error,
    optimal_divisor,
)

NAME = "tweets"


def build_index(divisor: int | None, kind: str = "clsm") -> LearnedSetIndex:
    return LearnedSetIndex.build(
        get_collection(NAME),
        model_config=ModelConfig(
            kind=kind, embedding_dim=8, phi_hidden=(32,), rho_hidden=(32,),
            divisor=divisor, seed=3,
        ),
        train_config=TrainConfig(epochs=20, batch_size=1024, lr=5e-3, loss="mse", seed=3),
        max_subset_size=MAX_SUBSET_SIZE,
        max_training_samples=MAX_TRAINING_SAMPLES,
        rng=np.random.default_rng(3),
        training_pairs=get_index_pairs(NAME),
    )


def test_table6_divisor_sweep(benchmark):
    collection = get_collection(NAME)
    max_id = collection.max_element_id()
    full = optimal_divisor(max_id, 2)
    divisors: list[tuple[str, int | None, str]] = [
        ("Full comp.", full, "clsm"),
        (f"sv_d={4 * full}", 4 * full, "clsm"),
        (f"sv_d={16 * full}", 16 * full, "clsm"),
        ("No comp.", None, "lsm"),
    ]
    queries, positions = get_index_workload(NAME, 300)
    queries = list(queries)

    rows = []
    results = {}
    built = {}
    for label, divisor, kind in divisors:
        index = built[label] = build_index(divisor, kind)
        estimates = np.array([index.predict_position(q) for q in queries])
        q_err = mean_q_error(estimates + 1.0, positions + 1.0)
        memory = megabytes(index.model_bytes())
        train_s = index.report.total_seconds
        results[label] = (q_err, memory, train_s)
        rows.append([label, q_err, memory, train_s])

    report_table(
        "table6",
        ["setting", "q-error", "model memory (MB)", "training time (s)"],
        rows,
        title="Table 6: impact of compression factor sv_d (Tweets, index task)",
    )

    # Paper shapes: memory grows monotonically with sv_d; full compression
    # is the smallest and no-compression the largest model.  (At
    # reproduction scale the Tweets vocabulary is small, so the end-to-end
    # ratio is modest; the ordering is the claim.)
    memories = [results[label][1] for label, _, _ in divisors]
    assert all(a <= b * 1.001 for a, b in zip(memories, memories[1:]))
    assert memories[0] < memories[-1] / 1.5

    benchmark(built["Full comp."].predict_position, queries[0])
