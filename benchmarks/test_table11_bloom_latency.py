"""Table 11: per-query execution time for the Bloom-filter task.

Expected shapes: traditional Bloom filters answer in single-digit
microseconds; the learned filters are slower but remain sub-millisecond
(fewer neurons than the other tasks); CLSM is slightly slower than LSM
(compression + concatenation).
"""

from __future__ import annotations

import pytest
from conftest import ALL_DATASETS
from test_table10_bloom_memory import traditional_filters

from repro.bench import (
    get_bloom_filter,
    get_query_workload,
    mean_query_ms,
    report_table,
)


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_table11_latency(name, benchmark):
    queries = [q[:3] for q in get_query_workload(name, 300)]
    lsm = get_bloom_filter(name, "lsm")
    clsm = get_bloom_filter(name, "clsm")
    traditional = traditional_filters(name)

    timings = {
        "LSM": mean_query_ms(lsm.contains, queries),
        "CLSM": mean_query_ms(clsm.contains, queries),
    }
    for fp_rate, bloom in traditional.items():
        timings[f"BF {fp_rate}"] = mean_query_ms(bloom.contains_set, queries)

    labels = ["LSM", "CLSM", "BF 0.1", "BF 0.01", "BF 0.001"]
    report_table(
        "table11",
        ["dataset"] + labels,
        [[name] + [timings[k] for k in labels]],
        title=f"Table 11 ({name}): execution time (ms/query), Bloom-filter task",
    )

    # Paper shapes: the traditional filter is much faster than the models;
    # everything stays well under 10 ms at this scale.
    assert timings["BF 0.01"] < timings["LSM"]
    assert timings["BF 0.01"] < timings["CLSM"]
    assert max(timings.values()) < 10.0

    benchmark(clsm.contains, queries[0])
