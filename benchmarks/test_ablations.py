"""Ablation benches for the design choices DESIGN.md calls out.

* loss: MSE-on-log-scale vs the MAE/log-q-error surrogate;
* pooling: sum (paper default) vs mean vs max;
* phi fusion: the Section 5 requirement — removing it collapses CLSM;
* negative sampling: uniform (paper-style) vs adversarial
  frequency-weighted negatives for the learned Bloom filter;
* generalization: trained-subset workload vs unseen subsets.

All ablations run on a small RW-like collection so the whole file stays
cheap relative to the main table benches.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.bench import report_table
from repro.core import (
    CompressedDeepSetsModel,
    ElementCompressor,
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    ModelConfig,
    TrainConfig,
    mean_q_error,
)
from repro.datasets import generate_rw_like
from repro.sets import (
    InvertedIndex,
    cardinality_training_pairs,
    negative_membership_samples,
    positive_membership_samples,
    sample_query_workload,
)


@lru_cache(maxsize=None)
def small_world():
    collection = generate_rw_like(2500, seed=42)
    truth = InvertedIndex(collection)
    pairs = cardinality_training_pairs(
        collection, max_subset_size=3, max_samples=25_000,
        rng=np.random.default_rng(0),
    )
    return collection, truth, pairs


def build_estimator(loss: str, pooling: str = "sum"):
    collection, _, pairs = small_world()
    return LearnedCardinalityEstimator.build(
        collection,
        model_config=ModelConfig(
            kind="clsm", embedding_dim=8, phi_hidden=(32,), rho_hidden=(64,),
            pooling=pooling, seed=0,
        ),
        train_config=TrainConfig(epochs=25, batch_size=1024, lr=5e-3,
                                 loss=loss, seed=0),
        training_pairs=pairs,
    )


def trained_workload(num: int = 400):
    _, _, (subsets, cards) = small_world()
    rng = np.random.default_rng(1)
    chosen = rng.choice(len(subsets), size=num, replace=False)
    return [subsets[i] for i in chosen], np.array(
        [cards[i] for i in chosen], dtype=float
    )


def test_ablation_losses(benchmark):
    """MSE on the log-scaled targets vs the MAE (log-q-error) surrogate.

    Under Adam at this scale, MAE's constant-magnitude gradients pull the
    model to the median cardinality (1 under skew); MSE fits the tail too.
    This is why the suite trains regression models with MSE even though
    both are admissible per the paper.
    """
    queries, exact = trained_workload()
    rows = []
    means = {}
    for loss in ("mse", "q_error"):
        estimator = build_estimator(loss)
        estimates = estimator.estimate_many(queries)
        means[loss] = mean_q_error(estimates, exact)
        rows.append([loss, means[loss]])
    report_table(
        "ablation_losses",
        ["training loss", "mean q-error"],
        rows,
        title="Ablation: regression training loss (cardinality task)",
    )
    assert means["mse"] <= means["q_error"] * 1.05
    estimator = build_estimator("mse")
    benchmark(estimator.estimate, queries[0])


def test_ablation_pooling(benchmark):
    """Sum pooling (the paper's choice) vs mean and max.

    Sum is the theoretically sufficient statistic in the DeepSets
    decomposition; mean loses set-size information (cardinality shrinks
    with size, so that hurts), and max discards multiplicities.
    """
    queries, exact = trained_workload()
    rows = []
    means = {}
    for pooling in ("sum", "mean", "max"):
        estimator = build_estimator("mse", pooling=pooling)
        estimates = estimator.estimate_many(queries)
        means[pooling] = mean_q_error(estimates, exact)
        rows.append([pooling, means[pooling]])
    report_table(
        "ablation_pooling",
        ["pooling", "mean q-error"],
        rows,
        title="Ablation: permutation-invariant pooling (cardinality task)",
    )
    # Sum must be competitive with the best alternative.
    assert means["sum"] <= min(means.values()) * 1.5
    estimator = build_estimator("mse", pooling="sum")
    benchmark(estimator.estimate, queries[0])


def test_ablation_phi_fusion(benchmark):
    """Section 5's correctness argument, measured.

    Without the phi fusion after sub-element concatenation, swapped
    quotient/remainder pairings pool to identical representations, so the
    model trains toward contradictory targets.  Count how many element
    pairs of the real vocabulary actually collide, and compare accuracy.
    """
    collection, _, pairs = small_world()
    max_id = collection.max_element_id()
    compressor = ElementCompressor(max_id, ns=2)

    def build(fuse: bool):
        model = CompressedDeepSetsModel(
            compressor,
            embedding_dim=8,
            phi_hidden=(32,) if fuse else (),
            rho_hidden=(64,),
            fuse_subelements=fuse,
            rng=np.random.default_rng(0),
        )
        from repro.core.scaling import LogMinMaxScaler
        from repro.core.hybrid import guided_fit

        subsets, cards = pairs
        scaler = LogMinMaxScaler.for_cardinality(int(cards.max()))
        guided_fit(
            model, list(subsets), cards.astype(float), scaler,
            TrainConfig(epochs=25, batch_size=1024, lr=5e-3, loss="mse", seed=0),
            rng=np.random.default_rng(0),
        )
        return model, scaler

    queries, exact = trained_workload()
    rows = []
    means = {}
    for fuse in (True, False):
        model, scaler = build(fuse)
        estimates = np.maximum(scaler.inverse(model.predict(queries)), 1.0)
        label = "with phi fusion" if fuse else "without phi fusion"
        means[fuse] = mean_q_error(estimates, exact)
        rows.append([label, means[fuse]])

    # The structural counterexample: swapped sub-element pairs collide.
    x_pair = [1 * compressor.divisor + 2, 2 * compressor.divisor + 1]  # (1,2),(2,1)
    z_pair = [1 * compressor.divisor + 1, 2 * compressor.divisor + 2]  # (1,1),(2,2)
    from repro.nn.data import SetBatch

    model_broken, _ = build(False)
    out_x = model_broken(SetBatch.from_sets([x_pair])).data
    out_z = model_broken(SetBatch.from_sets([z_pair])).data
    collision = float(np.abs(out_x - out_z).max())
    rows.append(["X-vs-Z collision (no fusion)", collision])

    report_table(
        "ablation_phi_fusion",
        ["configuration", "mean q-error / collision"],
        rows,
        title="Ablation: phi fusion of compressed sub-elements (Section 5)",
    )

    assert collision < 1e-9  # structurally indistinguishable
    assert means[True] <= means[False] * 1.05

    model, scaler = build(True)
    benchmark(model.predict_one, queries[0])


def test_ablation_negative_sampling(benchmark):
    """Uniform vs adversarial (frequency-weighted) negatives (§7.1.2)."""
    collection, truth, _ = small_world()
    positives = positive_membership_samples(
        collection, max_subset_size=3, max_samples=20_000,
        rng=np.random.default_rng(2),
    )
    rows = []
    accuracies = {}
    for label, weighted in (("uniform", False), ("frequency-weighted", True)):
        negatives = negative_membership_samples(
            collection, truth, num_samples=len(positives), max_subset_size=3,
            rng=np.random.default_rng(3), frequency_weighted=weighted,
        )
        filter_ = LearnedBloomFilter.from_training_data(
            positives, negatives, max_element_id=collection.max_element_id(),
            model_config=ModelConfig(
                kind="clsm", embedding_dim=4, phi_hidden=(16,),
                rho_hidden=(16,), seed=2,
            ),
            train_config=TrainConfig(epochs=20, batch_size=1024, lr=5e-3,
                                     loss="bce", seed=2),
        )
        accuracies[label] = filter_.report.train_accuracy
        rows.append([label, accuracies[label], filter_.report.num_backup_entries])
    report_table(
        "ablation_negatives",
        ["negative sampling", "train accuracy", "backup entries"],
        rows,
        title="Ablation: negative sampling strategy (Bloom-filter task)",
    )
    # Adversarial negatives are strictly harder.
    assert accuracies["uniform"] >= accuracies["frequency-weighted"]
    benchmark(lambda: positives[0])


def test_ablation_generalization_to_unseen(benchmark):
    """Trained-subset workload vs genuinely unseen subsets (§7.1.1).

    The paper trains on all subsets because supervised estimators do not
    reliably generalize; this quantifies the gap at reproduction scale.
    """
    collection, truth, (subsets, cards) = small_world()
    estimator = build_estimator("mse")
    trained_queries, trained_exact = trained_workload()

    trained_set = set(subsets)
    unseen_queries = []
    rng = np.random.default_rng(5)
    for query in sample_query_workload(collection, 3000, rng=rng,
                                       max_subset_size=3):
        if query not in trained_set:
            unseen_queries.append(query)
        if len(unseen_queries) == 300:
            break
    unseen_exact = np.array([truth.cardinality(q) for q in unseen_queries])

    q_trained = mean_q_error(
        estimator.estimate_many(trained_queries), trained_exact
    )
    q_unseen = mean_q_error(estimator.estimate_many(unseen_queries), unseen_exact)
    report_table(
        "ablation_generalization",
        ["workload", "mean q-error"],
        [["trained subsets", q_trained], ["unseen subsets", q_unseen]],
        title="Ablation: generalization to unseen subsets (cardinality task)",
    )
    assert q_unseen >= q_trained * 0.8  # unseen is never meaningfully easier
    benchmark(estimator.estimate, unseen_queries[0])
