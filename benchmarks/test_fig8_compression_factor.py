"""Figure 8: impact of the compression factor ns on input dimensions.

Increasing ns drastically reduces the model's input dimensionality; the
paper recommends ns = 2 or 3 as the sweet spot between size and accuracy.
"""

from __future__ import annotations

from repro.bench import report_table
from repro.core import compressed_input_dims

VOCAB_SIZES = (10_000, 100_000, 1_000_000)
NS_VALUES = (1, 2, 3, 4, 5, 6)


def compute_figure8_rows() -> list[list]:
    return [
        [vocab] + [compressed_input_dims(vocab, ns) for ns in NS_VALUES]
        for vocab in VOCAB_SIZES
    ]


def test_fig8_input_dims_vs_ns(benchmark):
    rows = benchmark(compute_figure8_rows)
    report_table(
        "fig8",
        ["max element id"] + [f"ns={ns}" for ns in NS_VALUES],
        rows,
        title="Figure 8: input dimensions vs compression factor ns",
    )
    for row in rows:
        dims = row[1:]
        # Monotone, drastic reduction from ns=1 to ns=2 (the paper's
        # "drastic reduction in the input dimensions").
        assert dims[1] < dims[0] / 40
        assert all(b <= a for a, b in zip(dims, dims[1:]))


def test_fig8_diminishing_returns(benchmark):
    """Beyond ns=3 the savings flatten — the paper's rationale for
    recommending ns in {2, 3}."""

    def ratios():
        dims = [compressed_input_dims(1_000_000, ns) for ns in NS_VALUES]
        return [a / b for a, b in zip(dims, dims[1:])]

    gains = benchmark(ratios)
    assert gains[0] > 100       # ns=1 -> 2: orders of magnitude
    assert gains[1] > 5         # ns=2 -> 3: still big
    assert gains[3] < gains[1]  # ns=4 -> 5: flattening
