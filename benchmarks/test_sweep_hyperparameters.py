"""Section 8.1's hyperparameter sweep, reproduced in miniature.

The paper varies the embedding size (2–32), the number of neurons (8–256),
and the number of layers (1–2).  This bench sweeps a compact grid on the
SD dataset's cardinality task and reports the accuracy/memory trade-off.
Expected shapes: accuracy improves (or saturates) with capacity while the
memory grows; the embedding dimension dominates LSM model size.
"""

from __future__ import annotations

import numpy as np

from repro.bench import (
    get_cardinality_pairs,
    get_collection,
    report_table,
)
from repro.core import (
    LearnedCardinalityEstimator,
    ModelConfig,
    TrainConfig,
    mean_q_error,
)

NAME = "sd"
EMBEDDING_DIMS = (2, 8, 32)
NEURONS = (8, 64)
LAYERS = (1, 2)


def build(embedding_dim: int, neurons: int, layers: int):
    return LearnedCardinalityEstimator.build(
        get_collection(NAME),
        model_config=ModelConfig(
            kind="lsm",
            embedding_dim=embedding_dim,
            phi_hidden=(neurons,),
            rho_hidden=(neurons,) * layers,
            seed=0,
        ),
        train_config=TrainConfig(
            epochs=15, batch_size=1024, lr=5e-3, loss="mse", seed=0
        ),
        training_pairs=get_cardinality_pairs(NAME),
    )


def test_sweep_embedding_and_neurons(benchmark):
    subsets, cards = get_cardinality_pairs(NAME)
    rng = np.random.default_rng(0)
    chosen = rng.choice(len(subsets), 300, replace=False)
    queries = [subsets[i] for i in chosen]
    exact = np.asarray([cards[i] for i in chosen], dtype=float)

    rows = []
    by_config = {}
    for embedding_dim in EMBEDDING_DIMS:
        for neurons in NEURONS:
            for layers in LAYERS:
                estimator = build(embedding_dim, neurons, layers)
                q_err = mean_q_error(estimator.estimate_many(queries), exact)
                size_kb = estimator.model_bytes() / 1e3
                by_config[(embedding_dim, neurons, layers)] = (q_err, size_kb)
                rows.append([embedding_dim, neurons, layers, q_err, size_kb])

    report_table(
        "sweep_hyperparameters",
        ["emb dim", "neurons", "layers", "mean q-error", "model KB"],
        rows,
        title="Section 8.1 sweep (SD, cardinality, LSM)",
    )

    # Memory grows monotonically with the embedding dimension at fixed
    # width/depth (the dominating term for LSM).
    for neurons in NEURONS:
        for layers in LAYERS:
            sizes = [by_config[(d, neurons, layers)][1] for d in EMBEDDING_DIMS]
            assert sizes[0] < sizes[1] < sizes[2]
    # The biggest configuration is at least as accurate as the smallest.
    largest = by_config[(32, 64, 2)][0]
    smallest = by_config[(2, 8, 1)][0]
    assert largest <= smallest * 1.5

    estimator = build(8, 64, 1)
    benchmark(estimator.estimate, queries[0])
