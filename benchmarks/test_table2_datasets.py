"""Table 2: dataset statistics.

Regenerates the paper's dataset-specification table for the scaled
reproduction datasets and checks their qualitative properties (size
ordering, set-size ranges, skew).
"""

from __future__ import annotations

from conftest import ALL_DATASETS

from repro.bench import get_collection, report_table
from repro.datasets import DATASETS

# Paper values for reference (Table 2).
PAPER = {
    "rw-small": ("RW-200k", 200_000, 30_324, 52_905, 2, 8),
    "rw-mid": ("RW-1.5M", 1_500_000, 231_954, 638_488, 2, 8),
    "rw-large": ("RW-3M", 3_000_000, 346_893, 968_112, 2, 8),
    "tweets": ("Tweets", 1_900_000, 73_618, 513_696, 1, 12),
    "sd": ("SD", 100_000, 5_661, 99_280, 6, 7),
}


def test_table2_dataset_statistics(benchmark):
    rows = []
    for name in ALL_DATASETS:
        collection = get_collection(name)
        stats = collection.stats()
        paper_name, *_ = PAPER[name]
        rows.append(
            [
                paper_name,
                stats.num_sets,
                stats.num_unique_elements,
                stats.max_cardinality,
                f"{stats.min_set_size}/{stats.max_set_size}",
            ]
        )
    report_table(
        "table2",
        ["dataset", "n", "uniq elem", "max card", "min/max size"],
        rows,
        title="Table 2: dataset specification (reproduction scale)",
    )
    # Benchmark the stats computation itself on the smallest dataset.
    benchmark(get_collection("sd").stats)


def test_table2_shape_properties(benchmark):
    # RW sizes strictly ordered like the paper's three variants.
    sizes = benchmark(
        lambda: [len(get_collection(n)) for n in ("rw-small", "rw-mid", "rw-large")]
    )
    assert sizes[0] < sizes[1] < sizes[2]
    # Set-size ranges match the paper.
    for name in ("rw-small", "rw-mid", "rw-large"):
        stats = get_collection(name).stats()
        assert stats.min_set_size >= 2 and stats.max_set_size <= 8
    tweets = get_collection("tweets").stats()
    assert tweets.min_set_size >= 1 and tweets.max_set_size <= 12
    sd = get_collection("sd").stats()
    assert {sd.min_set_size, sd.max_set_size} <= {6, 7}
    # SD has far fewer unique elements relative to its size (the paper's
    # "fewer unique elements that appear often").
    sd_ratio = len(get_collection("sd")) / sd.num_unique_elements
    rw_stats = get_collection("rw-small").stats()
    rw_ratio = len(get_collection("rw-small")) / rw_stats.num_unique_elements
    assert sd_ratio > rw_ratio


def test_table2_vocab_scales_with_rw_size(benchmark):
    small, large = benchmark(
        lambda: (
            get_collection("rw-small").stats().num_unique_elements,
            get_collection("rw-large").stats().num_unique_elements,
        )
    )
    assert large > small * 2
