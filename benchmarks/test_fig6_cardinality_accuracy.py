"""Figure 6: cardinality-estimation accuracy (q-error) per result size.

For every dataset, four estimators — LSM, LSM-Hybrid, CLSM, CLSM-Hybrid —
are trained over the same subset corpus and scored on a positive query
workload, with the average q-error bucketed by true result size exactly as
in the paper's figure.  Expected shapes:

* hybrids sharply improve on their plain counterparts (outliers answered
  exactly, model fits the rest better);
* LSM is generally at least as accurate as CLSM (compression trades
  accuracy for memory);
* errors grow with dataset size / vocabulary.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import ALL_DATASETS

from repro.bench import (
    get_cardinality_estimator,
    get_cardinality_workload,
    report_table,
)
from repro.core import group_q_error_by_result_size, mean_q_error

VARIANTS = (
    ("LSM", "lsm", False),
    ("LSM-Hybrid", "lsm", True),
    ("CLSM", "clsm", False),
    ("CLSM-Hybrid", "clsm", True),
)


def _workload_truth(name: str):
    # Queries are drawn from the trained subset corpus, as in the paper
    # (all subsets are training data there, §7.1.1).
    queries, exact = get_cardinality_workload(name, 600)
    return list(queries), np.asarray(exact)


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_fig6_accuracy_by_result_size(name, benchmark):
    queries, exact = _workload_truth(name)
    buckets: list[str] = []
    table: dict[str, dict[str, float]] = {}
    means: dict[str, float] = {}
    for label, kind, hybrid in VARIANTS:
        estimator = get_cardinality_estimator(name, kind, hybrid)
        estimates = estimator.estimate_many(queries)
        grouped = group_q_error_by_result_size(estimates, exact)
        table[label] = grouped
        means[label] = mean_q_error(estimates, exact)
        for bucket in grouped:
            if bucket not in buckets:
                buckets.append(bucket)
    rows = [
        [label] + [table[label].get(bucket, float("nan")) for bucket in buckets]
        + [means[label]]
        for label, _, _ in VARIANTS
    ]
    report_table(
        "fig6",
        ["estimator"] + buckets + ["mean"],
        rows,
        title=f"Figure 6 ({name}): avg q-error per query result size",
    )

    # Paper shape: the hybrid variants improve on the plain models.
    assert means["LSM-Hybrid"] <= means["LSM"] * 1.05
    assert means["CLSM-Hybrid"] <= means["CLSM"] * 1.05
    # Hybrids land in the near-exact regime.
    assert means["LSM-Hybrid"] < 5.0
    assert means["CLSM-Hybrid"] < 5.0

    # Benchmark the batched estimation path of the best variant.
    estimator = get_cardinality_estimator(name, "clsm", True)
    benchmark(estimator.estimate_many, queries[:100])
