"""Table 10: memory consumption for the Bloom-filter task.

LSM / CLSM against traditional Bloom filters at fp rates 0.1 / 0.01 /
0.001 sized for the indexed subset universe.  Expected shapes: CLSM is far
smaller than LSM (whose embedding scales with the vocabulary) and smaller
than every traditional filter; stricter fp rates enlarge the traditional
filter.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from conftest import ALL_DATASETS, LARGE_VOCAB_DATASETS

from repro.baselines import BloomFilter
from repro.bench import get_bloom_filter, get_collection, megabytes, report_table
from repro.sets import enumerate_subsets

FP_RATES = (0.1, 0.01, 0.001)


@lru_cache(maxsize=None)
def traditional_filters(name: str) -> dict[float, BloomFilter]:
    """Bloom filters indexing every subset (<= size 3) of the collection."""
    collection = get_collection(name)
    subsets = {
        subset
        for stored in collection
        for subset in enumerate_subsets(stored, max_size=3)
    }
    filters = {}
    for fp_rate in FP_RATES:
        bloom = BloomFilter(capacity=len(subsets), fp_rate=fp_rate)
        for subset in subsets:
            bloom.add_set(subset)
        filters[fp_rate] = bloom
    return filters


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_table10_memory(name, benchmark):
    lsm = get_bloom_filter(name, "lsm")
    clsm = get_bloom_filter(name, "clsm")
    traditional = traditional_filters(name)

    row = [
        name,
        megabytes(lsm.total_bytes()),
        megabytes(clsm.total_bytes()),
    ] + [megabytes(traditional[fp].size_bytes()) for fp in FP_RATES]
    report_table(
        "table10",
        ["dataset", "LSM", "CLSM"] + [f"BF {fp}" for fp in FP_RATES],
        [row],
        title=f"Table 10 ({name}): memory (MB), Bloom-filter task",
    )

    # Paper shapes: the CLSM model itself is much smaller than the LSM
    # model (drastically so at large vocabularies), and stricter fp rates
    # cost the traditional filter memory.
    if name in LARGE_VOCAB_DATASETS:
        assert clsm.model_bytes() < lsm.model_bytes() / 3
    else:
        assert clsm.model_bytes() <= lsm.model_bytes()
    sizes = [traditional[fp].size_bytes() for fp in FP_RATES]
    assert sizes[0] < sizes[1] < sizes[2]
    # The compressed learned filter undercuts the strict traditional one.
    assert clsm.model_bytes() < traditional[0.001].size_bytes()

    benchmark(clsm.total_bytes)
