"""Table 9: binary accuracy for the Bloom-filter task.

Accuracy over the training data (positives + sampled negatives) after
training, matching the paper's protocol ("if we consider only the training
sets, both models perform exceptionally well... the false positive rate
cannot be bound" — §8.4.1).  Expected shapes: both LSM and CLSM land in
the high-accuracy regime, with LSM >= CLSM; there are never false
negatives thanks to the backup filter.
"""

from __future__ import annotations

import pytest
from conftest import ALL_DATASETS

from repro.bench import get_bloom_filter, report_table


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_table9_binary_accuracy(name, benchmark):
    lsm = get_bloom_filter(name, "lsm")
    clsm = get_bloom_filter(name, "clsm")

    report_table(
        "table9",
        ["dataset", "LSM", "CLSM"],
        [[name, lsm.report.train_accuracy, clsm.report.train_accuracy]],
        title=f"Table 9 ({name}): binary accuracy, Bloom-filter task",
    )

    # Paper shape: high training accuracy for both variants, LSM at least
    # roughly as good as CLSM.  SD is the hardest case at reproduction
    # scale (tiny vocabulary -> dense co-occurrence -> negatives are
    # genuinely ambiguous), so the floor is looser there.
    floor_lsm, floor_clsm = (0.85, 0.80) if name.startswith("rw") else (0.72, 0.70)
    assert lsm.report.train_accuracy > floor_lsm
    assert clsm.report.train_accuracy > floor_clsm
    assert lsm.report.train_accuracy >= clsm.report.train_accuracy - 0.05

    # No false negatives over the indexed (trained) positive universe —
    # the guarantee holds exactly there (§7.1.2 restricts the filter to a
    # predefined subset size / universe).
    import numpy as np

    rng = np.random.default_rng(0)
    sample = rng.choice(len(clsm.trained_positives), 2000, replace=False)
    positives = [clsm.trained_positives[i] for i in sample]
    assert clsm.contains_many(positives).all()
    assert lsm.contains_many(positives).all()

    benchmark(clsm.contains, positives[0])
