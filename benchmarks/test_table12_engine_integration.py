"""Table 12: cardinality estimation inside a relational engine.

The paper implements CLSM as a PostgreSQL UDF and compares exact COUNT
queries without an index, with the hstore (GIN) index, and through the
estimator (§8.5.3).  The mini engine reproduces the three regimes over the
RW-large dataset.  Expected shapes: seq-scan COUNT is orders of magnitude
slower than both alternatives; the CLSM UDF's footprint is a tiny fraction
of the GIN index; the UDF is competitive with the index on latency while
the model build (training) costs far more than the index build.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bench import (
    Timer,
    get_cardinality_estimator,
    get_cardinality_workload,
    get_collection,
    mean_query_ms,
    megabytes,
    report_table,
)
from repro.engine import SetQueryEngine, SetTable

NAME = "rw-large"
NUM_QUERIES = 100  # scaled from the paper's 5000 (seq scans dominate)


@lru_cache(maxsize=None)
def engine_with_everything():
    table = SetTable.from_collection(get_collection(NAME))
    engine = SetQueryEngine(table)
    with Timer() as gin_timer:
        engine.create_gin_index()
    estimator = get_cardinality_estimator(NAME, "clsm", True)
    engine.register_udf("clsm", estimator.estimate)
    return engine, estimator, gin_timer.seconds


def test_table12_three_regimes(benchmark):
    engine, estimator, gin_build_seconds = engine_with_everything()
    queries = list(get_cardinality_workload(NAME, NUM_QUERIES)[0])

    seqscan_ms = mean_query_ms(
        lambda q: engine.count(q, plan="seqscan"), queries[:20]
    )
    gin_ms = mean_query_ms(lambda q: engine.count(q, plan="gin"), queries)
    udf_ms = mean_query_ms(lambda q: engine.count(q, plan="udf:clsm"), queries)

    report_table(
        "table12",
        ["metric", "engine w/o index", "engine w/ GIN index", "CLSM UDF"],
        [
            ["avg exec time (ms)", seqscan_ms, gin_ms, udf_ms],
            ["memory (MB)", "-", megabytes(engine.gin.size_bytes()),
             megabytes(estimator.total_bytes())],
            ["build time (s)", "-", gin_build_seconds,
             estimator.report.total_seconds],
        ],
        title="Table 12: cardinality estimation in the mini engine (RW-large)",
    )

    # Paper shapes.
    assert seqscan_ms > 20 * gin_ms          # index >> seq scan
    assert seqscan_ms > 20 * udf_ms          # UDF >> seq scan
    assert estimator.total_bytes() < engine.gin.size_bytes() / 3
    assert estimator.report.total_seconds > gin_build_seconds

    benchmark(lambda: engine.count(queries[0], plan="udf:clsm"))


def test_table12_planner_prefers_gin(benchmark):
    engine, _, _ = engine_with_everything()
    assert engine.explain() == "gin"
    result = benchmark(lambda: engine.count((1, 2), plan=None))
    assert result.plan == "gin"
