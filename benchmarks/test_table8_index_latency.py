"""Table 8: per-query execution time for the index task, plus the
local-vs-global error-bound comparison (§8.3.3).

Expected shapes: the B+ tree answers in microseconds while the hybrid
learned indexes take fractions of a millisecond to milliseconds (bounded
sequential search around the prediction); local error bounds scan no more
sets than a single global bound.
"""

from __future__ import annotations

import pytest
from conftest import INDEX_DATASETS
from test_table7_index_memory import bptree_for

from repro.baselines import commutative_set_hash
from repro.bench import (
    get_index_workload,
    get_set_index,
    mean_query_ms,
    report_table,
)


@pytest.mark.parametrize("name", INDEX_DATASETS)
def test_table8_latency(name, benchmark):
    queries, _ = get_index_workload(name, 200)
    queries = list(queries)
    tree = bptree_for(name)

    timings = {}
    for label, kind in (("LSM-Hybrid", "lsm"), ("CLSM-Hybrid", "clsm")):
        index = get_set_index(name, kind)
        index.use_local_errors = True
        timings[label] = mean_query_ms(index.lookup, queries)
    timings["B+ tree"] = mean_query_ms(
        lambda q: tree.search(commutative_set_hash(q)), queries
    )

    report_table(
        "table8",
        ["dataset", "LSM-Hybrid", "CLSM-Hybrid", "B+ tree"],
        [[name, timings["LSM-Hybrid"], timings["CLSM-Hybrid"], timings["B+ tree"]]],
        title=f"Table 8 ({name}): execution time (ms/query), index task",
    )

    # Paper shape: the B+ tree is far faster than the learned indexes.
    assert timings["B+ tree"] < timings["LSM-Hybrid"] / 5
    assert timings["B+ tree"] < timings["CLSM-Hybrid"] / 5

    index = get_set_index(name, "clsm")
    benchmark(index.lookup, queries[0])


@pytest.mark.parametrize("name", INDEX_DATASETS)
def test_table8_local_vs_global_error(name, benchmark):
    """Local per-range bounds confine the sequential search (§8.3.3)."""
    queries, _ = get_index_workload(name, 150)
    queries = list(queries)
    index = get_set_index(name, "clsm")

    index.use_local_errors = True
    index.reset_stats()
    for query in queries:
        index.lookup(query)
    local_scanned = index.stats.sets_scanned

    index.use_local_errors = False
    index.reset_stats()
    for query in queries:
        index.lookup(query)
    global_scanned = index.stats.sets_scanned

    index.use_local_errors = True
    index.reset_stats()

    report_table(
        "table8_local_vs_global",
        ["dataset", "mean scan (local)", "mean scan (global)",
         "mean bound (local)", "global bound"],
        [[
            name,
            local_scanned / len(queries),
            global_scanned / len(queries),
            index.bounds.mean_bound(),
            index.bounds.global_error,
        ]],
        title=f"Table 8 addendum ({name}): local vs global error bounds",
    )

    assert local_scanned <= global_scanned
    assert index.bounds.mean_bound() <= index.bounds.global_error

    benchmark(index.bounds.bound, float(len(index.collection) // 2))
