#!/usr/bin/env bash
# Fault suite: run every fault-injection test, then the full tier-1 suite,
# proving the reliability guards hold AND nothing regressed around them.
#
# Usage:  scripts/run_fault_suite.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== fault-injection tests (-m faults) =="
python -m pytest -m faults -q -p no:cacheprovider "$@"

echo
echo "== full tier-1 suite =="
python -m pytest -q -p no:cacheprovider "$@"
