#!/usr/bin/env bash
# Fault suite: run every fault-injection test, drive the graded fault-storm
# scenario end to end, then the full tier-1 suite — proving the reliability
# guards hold under live faults AND nothing regressed around them.
#
# Usage:  scripts/run_fault_suite.sh [extra pytest args...]
#
# Seed: honours REPRO_TEST_SEED if set (echoed so failures are replayable),
# matching the CI scenario-smoke job's rotation.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== fault-injection tests (-m faults) =="
python -m pytest -m faults -q -p no:cacheprovider "$@"

echo
echo "== graded fault-storm scenario (seed ${REPRO_TEST_SEED:-default}) =="
python -m repro.cli scenario run fault-storm --fast --seeds 1

echo
echo "== adaptive drift differential (seed ${REPRO_TEST_SEED:-default}) =="
python -m pytest -q -p no:cacheprovider tests/adapt \
    "tests/test_edge_conformance.py::TestAdaptiveEdgeConformance" "$@"

echo
echo "== full tier-1 suite =="
python -m pytest -q -p no:cacheprovider "$@"
