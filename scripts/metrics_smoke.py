#!/usr/bin/env python
"""CI metrics smoke test: serve a tiny structure, scrape it, validate.

Trains a minimal cardinality estimator, serves it through the TCP
frontend, drives a few queries, then hits the ``METRICS`` verb and checks
that the Prometheus-style exposition

* is non-empty and ``# EOF``-framed,
* contains no duplicate metric family names,
* parses line by line (``# HELP``/``# TYPE`` comments plus
  ``name{labels} value`` samples with float-parseable values),
* covers the families the observability layer promises: serve latency
  histogram, cache hit rate, guard fallbacks, shard fan-out, and the
  last-training stats.

Exit code 0 on success, 1 with a diagnostic on any violation — cheap
enough for every CI run (a few seconds end to end).
"""

from __future__ import annotations

import re
import socket
import sys

from repro.core import ModelConfig, OutlierRemovalConfig, TrainConfig
from repro.reliability import GuardedCardinalityEstimator
from repro.serve import SetServer, TcpServeFrontend
from repro.sets import SetCollection
from repro.shard import ShardedBuilder, ShardPlan

REQUIRED_FAMILIES = (
    "repro_serve_latency_seconds",
    "repro_serve_requests_served_total",
    "repro_cache_hit_rate",
    "repro_health_fallbacks",
    "repro_shard_fanout_shard_calls",
    "repro_training_final_loss",
)

SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
)


def build_structure():
    collection = SetCollection(
        [[i % 5, (i % 7) + 5, (i % 3) + 12] for i in range(40)]
    )
    plan = ShardPlan.contiguous(collection, 2)
    builder = ShardedBuilder(
        plan,
        workers=1,
        base_seed=0,
        guarded=True,
        model_config=ModelConfig(
            kind="lsm", embedding_dim=2, phi_hidden=(4,), rho_hidden=(4,), seed=0
        ),
        train_config=TrainConfig(epochs=2, batch_size=32, lr=5e-3, loss="mse", seed=0),
        removal=OutlierRemovalConfig(percentile=90.0, at_epochs=(1,)),
        max_subset_size=3,
        max_training_samples=500,
    )
    return builder.build("cardinality"), collection


def scrape(address) -> list[str]:
    with socket.create_connection(address, timeout=10.0) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        for i in range(20):
            stream.write(f"{i % 5} {(i % 7) + 5}\n")
            stream.flush()
            answer = stream.readline().strip()
            if answer.startswith("error"):
                raise AssertionError(f"query {i} failed: {answer}")
        stream.write("METRICS\n")
        stream.flush()
        lines = []
        for raw in stream:
            if raw.strip() == "# EOF":
                return lines
            lines.append(raw.rstrip("\n"))
    raise AssertionError("METRICS reply was not terminated by '# EOF'")


def validate(lines: list[str]) -> None:
    assert lines, "exposition is empty"
    families: list[str] = []
    samples = 0
    for line in lines:
        if line.startswith("# TYPE "):
            parts = line.split()
            assert len(parts) == 4, f"malformed TYPE line: {line!r}"
            assert parts[3] in ("counter", "gauge", "histogram"), line
            families.append(parts[2])
        elif line.startswith("# HELP "):
            assert len(line.split()) >= 3, f"malformed HELP line: {line!r}"
        elif line.startswith("#"):
            raise AssertionError(f"unexpected comment line: {line!r}")
        else:
            assert SAMPLE_LINE.match(line), f"unparseable sample: {line!r}"
            float(line.rsplit(" ", 1)[1])  # value must parse
            samples += 1
    assert samples > 0, "exposition has no samples"
    duplicates = {name for name in families if families.count(name) > 1}
    assert not duplicates, f"duplicate metric families: {sorted(duplicates)}"
    missing = [name for name in REQUIRED_FAMILIES if name not in families]
    assert not missing, f"missing required families: {missing}"


def main() -> int:
    structure, _ = build_structure()
    assert isinstance(structure.parts[0], GuardedCardinalityEstimator)
    with SetServer(structure, cache_size=64) as server:
        frontend = TcpServeFrontend(server, port=0).start_background()
        try:
            lines = scrape(frontend.address)
        finally:
            frontend.shutdown()
    validate(lines)
    print(
        f"metrics smoke OK: {len(lines)} exposition lines, "
        f"{sum(1 for l in lines if l.startswith('# TYPE '))} families"
    )
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as failure:
        print(f"metrics smoke FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
