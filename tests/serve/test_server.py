"""SetServer threaded integration: parity, coalescing, swap, admission.

The acceptance tests for the serving subsystem live here: eight client
threads drive each structure type through a shared :class:`SetServer` and
the answers must match an unbatched serial loop exactly, while the server
stats prove requests were actually coalesced.  A separate test performs a
hot snapshot swap mid-traffic and checks no request is lost.
"""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.reliability import (
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
)
from repro.serve import (
    BatchPolicy,
    ServerOverloadedError,
    SetServer,
    detect_kind,
)
from repro.sets import InvertedIndex

from .conftest import QUERIES, small_model_config, train_estimator, wait_until

THREADS = 8


def serial_answers(kind, structure, queries):
    """Ground truth: the unbatched single-query API, one call at a time."""
    if kind == "cardinality":
        return [float(structure.estimate(q)) for q in queries]
    if kind == "index":
        return [structure.lookup(q) for q in queries]
    return [bool(structure.contains(q)) for q in queries]


def answers_agree(kind, got, want):
    if kind == "cardinality":
        return math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9)
    return got == want


def drive_concurrently(server, queries, threads=THREADS):
    """Fan the workload over client threads, each submitting its slice
    open-loop (all futures first, then gather) so the queue actually fills
    and the dispatcher gets something to coalesce."""
    results = [None] * len(queries)
    errors = []

    def client(offset: int) -> None:
        rows = list(range(offset, len(queries), threads))
        try:
            futures = [(row, server.submit(queries[row])) for row in rows]
            for row, future in futures:
                results[row] = future.result(timeout=30.0)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    workers = [threading.Thread(target=client, args=(t,)) for t in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert not errors
    return results


def guard(kind, structure, truth):
    if kind == "cardinality":
        return GuardedCardinalityEstimator(structure, truth)
    if kind == "index":
        return GuardedSetIndex(structure, truth)
    return GuardedBloomFilter(structure, truth)


STRUCTURES = [
    ("cardinality", "estimator", False),
    ("cardinality", "estimator", True),
    ("index", "index", False),
    ("index", "index", True),
    ("bloom", "bloom", False),
    ("bloom", "bloom", True),
]


@pytest.mark.slow
@pytest.mark.parametrize(
    "kind,fixture,guarded",
    STRUCTURES,
    ids=[f"{k}{'-guarded' if g else ''}" for k, _, g in STRUCTURES],
)
class TestThreadedParity:
    """Acceptance: 8 threads, answers identical to serial, batching real."""

    def test_concurrent_answers_match_serial_loop(
        self, request, truth, kind, fixture, guarded
    ):
        structure = request.getfixturevalue(fixture)
        if guarded:
            structure = guard(kind, structure, truth)
        serial = serial_answers(kind, structure, QUERIES)

        policy = BatchPolicy(max_batch_size=32, max_wait_ms=20.0)
        # cache_size=0: every request must travel through the batcher, so
        # the parity check covers the batched path for all rows.
        with SetServer(structure, policy=policy, cache_size=0) as server:
            results = drive_concurrently(server, QUERIES)

        for row, (got, want) in enumerate(zip(results, serial)):
            assert answers_agree(kind, got, want), (
                f"row {row} query {QUERIES[row]}: served {got!r} != serial {want!r}"
            )

        stats = server.stats
        assert stats.requests_served == len(QUERIES)
        assert stats.requests_failed == 0
        # Batching actually coalesced: strictly fewer dispatches than
        # requests, both against the served total and the through-queue
        # count (which excludes any cache shortcuts by construction here).
        assert stats.batches_dispatched < stats.requests_served
        assert stats.batches_dispatched < stats.batched_requests
        assert stats.mean_batch_size > 1.0


class TestCaching:
    def test_repeated_queries_are_served_from_cache(self, estimator):
        with SetServer(estimator, cache_size=256) as server:
            # Blocking one-at-a-time so each answer lands in the cache
            # before its repeats arrive; then a full batched replay.
            first = [server.query(q) for q in QUERIES]
            second = server.query_many(QUERIES)
        assert first == second
        stats = server.stats
        # QUERIES repeats each distinct query 6x, then we replayed it all:
        # only the first occurrence of each distinct query can miss.
        distinct = len({server._canonical(q) for q in QUERIES})
        assert stats.cache_hits_served == stats.requests_served - distinct
        assert server.cache.hits == stats.cache_hits_served
        assert stats.batched_requests == distinct

    def test_record_update_invalidates_cached_answer(self, collection):
        estimator = train_estimator(collection, seed=2)
        query = (0, 1)
        with SetServer(estimator, cache_size=256) as server:
            before = server.query(query)
            assert server.query(query) == before  # cached
            estimator.record_update(query, 41)
            after = server.query(query)
        assert after == 41.0
        assert before != after
        assert server.cache.invalidations >= 1

    def test_record_update_invalidates_subset_and_superset_keys(self, collection):
        """Regression: a mutation used to drop only its exact cache key.

        Updating set S can change the answer of any cached subset of S
        (S now satisfies it) and any cached superset (its answer was
        derived from state the mutation changed).  With only exact-key
        invalidation the subset query kept serving its stale count.
        """
        estimator = train_estimator(collection, seed=4)
        subset, updated, superset = (0,), (0, 1), (0, 1, 2)
        with SetServer(estimator, cache_size=256) as server:
            stale_subset = server.query(subset)
            stale_superset = server.query(superset)
            assert server.query(subset) == stale_subset  # cached
            estimator.record_update(updated, 40)
            # All three keys were swept, so these re-run the model; the
            # updated key itself must reflect the new auxiliary value.
            assert server.query(updated) == 40.0
            assert server.cache.invalidations >= 2  # subset + superset
            fresh_subset = server.query(subset)
            fresh_superset = server.query(superset)
            # Answers are recomputed (cache re-fill), not served stale:
            # for this estimator the model path is deterministic, so values
            # match, but they came from a fresh forward pass.
            assert server.cache.as_dict()["entries"] >= 3
            assert fresh_subset == float(estimator.estimate(subset))
            assert fresh_superset == float(estimator.estimate(superset))

    def test_stale_cached_cardinality_after_insert_regression(self, collection):
        """The ISSUE's exact scenario: cached subset count goes stale.

        A cardinality estimator whose auxiliary absorbs an insert for
        ``(0, 1)`` must not keep serving the pre-insert cached answer for
        the subset query ``(0,)`` — exact-key invalidation missed it.
        """
        estimator = train_estimator(collection, seed=5)
        with SetServer(estimator, cache_size=256) as server:
            server.query((0,))  # prime the subset key
            estimator.record_update((0, 1), 41)
            estimator.auxiliary[(0,)] = 17.0  # the subset's answer changed too
            assert server.query((0,)) == 17.0  # stale cache would say otherwise

    def test_swap_clears_cache(self, collection, estimator):
        replacement = train_estimator(collection, seed=3)
        with SetServer(estimator, cache_size=256) as server:
            server.query((0, 1))
            assert len(server.cache) == 1
            server.swap(replacement)
            assert len(server.cache) == 0
            assert server.stats.snapshot_swaps == 1
            assert server.snapshot.version == 1


class TestSnapshotSwap:
    def test_swap_rejects_kind_mismatch(self, estimator, index):
        with SetServer(estimator, cache_size=0) as server:
            with pytest.raises(TypeError):
                server.swap(index)

    def test_detect_kind_rejects_unknown_structure(self):
        with pytest.raises(TypeError):
            detect_kind(object())

    @pytest.mark.slow
    @pytest.mark.parametrize("kind", ["cardinality", "index", "bloom"])
    def test_swap_mid_traffic_loses_no_requests(
        self, request, collection, kind
    ):
        import repro.core as core

        old = request.getfixturevalue(
            {"cardinality": "estimator", "index": "index", "bloom": "bloom"}[kind]
        )
        rng = np.random.default_rng(7)
        if kind == "cardinality":
            new = train_estimator(collection, seed=7)
        elif kind == "index":
            new = core.LearnedSetIndex.build(
                collection,
                model_config=small_model_config(),
                train_config=core.TrainConfig(
                    epochs=4, batch_size=64, lr=5e-3, loss="mse", seed=7
                ),
                max_subset_size=3,
                rng=rng,
            )
        else:
            new = core.LearnedBloomFilter.build(
                collection,
                train_config=core.TrainConfig(
                    epochs=4, batch_size=64, lr=5e-3, loss="bce", seed=7
                ),
                max_subset_size=2,
                rng=rng,
            )

        serial_old = serial_answers(kind, old, QUERIES)
        serial_new = serial_answers(kind, new, QUERIES)

        policy = BatchPolicy(max_batch_size=8, max_wait_ms=1.0)
        results = [[None] * len(QUERIES) for _ in range(THREADS)]
        errors = []
        started = threading.Barrier(THREADS + 1)

        def client(tid: int) -> None:
            try:
                started.wait(timeout=10.0)
                # Closed loop: one query at a time, stretching traffic out
                # so the swap lands while requests are in flight.
                for row, query in enumerate(QUERIES):
                    results[tid][row] = server.query(query, timeout=30.0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with SetServer(old, policy=policy, cache_size=0) as server:
            workers = [
                threading.Thread(target=client, args=(t,)) for t in range(THREADS)
            ]
            for worker in workers:
                worker.start()
            started.wait(timeout=10.0)
            # Hot-swap once traffic is demonstrably in flight — at least
            # two batches dispatched — instead of after a fixed sleep.
            assert wait_until(lambda: server.stats.batches_dispatched >= 2)
            server.swap(new)
            for worker in workers:
                worker.join()

        assert not errors
        # No request lost: every slot of every client resolved...
        assert all(r is not None or kind == "index" for row in results for r in row)
        assert server.stats.requests_served == THREADS * len(QUERIES)
        assert server.stats.requests_failed == 0
        assert server.stats.snapshot_swaps == 1
        # ...and every answer came from a coherent generation (old or new).
        for tid in range(THREADS):
            for row in range(len(QUERIES)):
                got = results[tid][row]
                assert answers_agree(kind, got, serial_old[row]) or answers_agree(
                    kind, got, serial_new[row]
                ), (
                    f"thread {tid} row {row}: {got!r} matches neither "
                    f"old {serial_old[row]!r} nor new {serial_new[row]!r}"
                )


class TestAdmissionControl:
    def test_shed_to_exact_requires_exact_index(self, estimator):
        with pytest.raises(ValueError):
            SetServer(
                estimator, policy=BatchPolicy(overflow="shed-to-exact"), cache_size=0
            )

    def test_shed_to_exact_answers_exactly_under_overload(self, estimator, truth):
        policy = BatchPolicy(max_queue=4, overflow="shed-to-exact")
        server = SetServer(estimator, policy=policy, cache_size=0, exact=truth)
        # Dispatcher not started: the queue fills, the rest must shed.
        futures = [server.submit(q) for q in QUERIES[:12]]
        shed_rows = [
            row for row, f in enumerate(futures) if f.done() and row >= policy.max_queue
        ]
        assert server.stats.shed == len(QUERIES[:12]) - policy.max_queue
        for row in shed_rows:
            assert futures[row].result(0.0) == float(truth.cardinality(QUERIES[row]))
        server.start()
        for future in futures:
            future.result(timeout=30.0)
        server.close()
        assert server.stats.requests_served == 12
        assert server.stats.requests_failed == 0

    def test_reject_policy_surfaces_overload_error(self, estimator):
        policy = BatchPolicy(max_queue=2, overflow="reject")
        server = SetServer(estimator, policy=policy, cache_size=0)
        admitted = [server.submit(q) for q in QUERIES[:2]]
        overflow = server.submit(QUERIES[2])
        with pytest.raises(ServerOverloadedError):
            overflow.result(1.0)
        assert server.stats.rejected == 1
        server.start()
        for future in admitted:
            future.result(timeout=30.0)
        server.close()
        assert server.stats.requests_failed == 1  # the rejected one

    def test_malformed_query_fails_alone_on_raw_structure(self, estimator):
        with SetServer(estimator, cache_size=0) as server:
            good = server.submit((0, 1))
            bad = server.submit(("not", "ints"))
            also_good = server.submit((1, 2))
            assert good.result(30.0) == pytest.approx(estimator.estimate((0, 1)))
            with pytest.raises(Exception):
                bad.result(30.0)
            assert also_good.result(30.0) == pytest.approx(estimator.estimate((1, 2)))
        assert server.stats.requests_failed == 1

    def test_guarded_structure_absorbs_malformed_queries(self, estimator, truth):
        guarded = GuardedCardinalityEstimator(estimator, truth)
        with SetServer(guarded, cache_size=0) as server:
            answers = server.query_many([(0, 1), ("not", "ints"), (1, 2)])
        assert answers[1] == 0.0
        assert server.stats.requests_failed == 0
        health = server.stats_dict()["health"]
        assert health["short_circuits"].get("malformed_query", 0) >= 1


class TestStatsSurface:
    def test_stats_dict_includes_kind_version_cache_and_health(
        self, estimator, truth
    ):
        guarded = GuardedCardinalityEstimator(estimator, truth)
        with SetServer(guarded, cache_size=64) as server:
            server.query_many(QUERIES[:6])
        report = server.stats_dict()
        assert report["kind"] == "cardinality"
        assert report["snapshot_version"] == 0
        assert report["requests_served"] == 6
        assert "p99_ms" in report and report["p50_ms"] >= 0.0
        assert report["cache"]["capacity"] == 64
        assert "model_answers" in report["health"]
        assert "[serve]" in server.stats.report_line()
