"""TCP frontend hardening: deadlines, idle timeouts, bounded line length.

One slow or hostile client must not be able to pin a handler thread
forever (idle timeout), park a request on a wedged backend indefinitely
(per-request deadline), or balloon handler memory with an unbounded line
(line length cap).
"""

from __future__ import annotations

import concurrent.futures
import socket
import time

import pytest

from repro.serve import SetServer, TcpServeFrontend

from .test_net import ask, connect


@pytest.fixture
def server(estimator):
    server = SetServer(estimator, cache_size=64).start()
    yield server
    server.close()


def make_frontend(server, **kwargs):
    return TcpServeFrontend(server, port=0, **kwargs).start_background()


class TestLineLength:
    def test_overlong_line_is_rejected_and_connection_closed(self, server):
        tcp = make_frontend(server, max_line_bytes=64)
        try:
            sock, stream = connect(tcp)
            try:
                reply = ask(stream, "0 " * 200)
                assert reply == "error line too long"
                # The handler hung up; the next read sees EOF.
                assert stream.readline() == ""
            finally:
                sock.close()
        finally:
            tcp.shutdown()

    def test_line_within_cap_still_served(self, server):
        tcp = make_frontend(server, max_line_bytes=64)
        try:
            sock, stream = connect(tcp)
            try:
                assert ask(stream, "0 1") == f"{server.query((0, 1)):.2f}"
            finally:
                sock.close()
        finally:
            tcp.shutdown()


class TestRequestDeadline:
    def test_wedged_backend_yields_deadline_error(self, server):
        tcp = make_frontend(server, request_deadline_s=0.2)
        # A future that never completes: the handler must give up at the
        # deadline instead of pinning the connection forever.
        server.submit = lambda query, predicate=None: concurrent.futures.Future()
        try:
            sock, stream = connect(tcp)
            try:
                start = time.monotonic()
                assert ask(stream, "0 1") == "error deadline exceeded"
                assert time.monotonic() - start < 5.0
                # The connection survives a deadline miss.
                assert ask(stream, "STATS") != ""
            finally:
                sock.close()
        finally:
            tcp.shutdown()


class TestIdleTimeout:
    def test_idle_connection_is_reaped(self, server):
        tcp = make_frontend(server, idle_timeout_s=0.2)
        try:
            sock, stream = connect(tcp)
            try:
                assert ask(stream, "0 1") != ""
                # Block on the next line with a generous socket timeout:
                # the handler's 0.2s idle window fires first and closes
                # the connection, which we observe as EOF — no fixed
                # sleep to mistune against a loaded CI box.
                sock.settimeout(10.0)
                assert stream.readline() == ""
            finally:
                sock.close()
        finally:
            tcp.shutdown()

    def test_active_connection_outlives_the_idle_window(self, server):
        tcp = make_frontend(server, idle_timeout_s=0.5)
        try:
            sock, stream = connect(tcp)
            try:
                # Keep the connection active until well past the idle
                # window (wall-clock measured, not slept): every ask is
                # activity, so the handler must never reap us.
                deadline = time.monotonic() + 1.25
                asks = 0
                while time.monotonic() < deadline or asks < 2:
                    assert ask(stream, "0 1") != ""
                    asks += 1
            finally:
                sock.close()
        finally:
            tcp.shutdown()


class TestValidation:
    def test_rejects_bad_knobs(self, server):
        with pytest.raises(ValueError):
            TcpServeFrontend(server, idle_timeout_s=0.0)
        with pytest.raises(ValueError):
            TcpServeFrontend(server, request_deadline_s=-1.0)
        with pytest.raises(ValueError):
            TcpServeFrontend(server, max_line_bytes=8)

    def test_none_disables_timeouts(self, server):
        tcp = TcpServeFrontend(
            server, idle_timeout_s=None, request_deadline_s=None
        ).start_background()
        try:
            sock, stream = connect(tcp)
            try:
                assert ask(stream, "0 1") != ""
            finally:
                sock.close()
        finally:
            tcp.shutdown()
