"""Graceful degradation: shed to the exact fallback under sustained faults.

When the guarded structure's health counters show (nearly) every answer
coming from the exact fallback, paying thread-pool dispatch plus a model
forward pass per request buys nothing.  The server notices, degrades to
answering on the caller thread straight from the exact path, keeps
probing the model, and recovers once the guard reports health again.
"""

from __future__ import annotations

import pytest

from repro.reliability import ALWAYS, FaultInjector, GuardedCardinalityEstimator
from repro.serve import SetServer

from .conftest import QUERIES


@pytest.fixture
def guarded_server(estimator, truth):
    guarded = GuardedCardinalityEstimator(estimator, truth)
    # cache_size=0 so every request reaches the guard's health counters;
    # a small window so a short storm fills it.
    server = SetServer(
        guarded, cache_size=0, degrade_window=8, degrade_probe_every=4
    ).start()
    yield server
    server.close()


def _drive(server, count):
    for i in range(count):
        server.submit(QUERIES[i % len(QUERIES)]).result(timeout=10.0)


class TestDegradation:
    def test_healthy_server_never_degrades(self, guarded_server):
        _drive(guarded_server, 24)
        stats = guarded_server.stats_dict()
        assert stats["degraded"] is False
        assert stats["degrade_activations"] == 0

    def test_sustained_faults_trigger_degraded_mode(self, guarded_server):
        with FaultInjector(nan_predictions=ALWAYS):
            _drive(guarded_server, 32)
            stats = guarded_server.stats_dict()
            assert stats["degraded"] is True
            assert stats["degrade_activations"] >= 1
            assert stats["degraded_served"] > 0

    def test_degraded_answers_match_exact_truth(self, guarded_server, truth):
        with FaultInjector(nan_predictions=ALWAYS):
            _drive(guarded_server, 32)
            assert guarded_server.stats_dict()["degraded"] is True
            for query in QUERIES[:6]:
                answer = guarded_server.submit(query).result(timeout=10.0)
                assert answer == truth.cardinality(set(query))

    def test_server_recovers_once_faults_clear(self, guarded_server):
        with FaultInjector(nan_predictions=ALWAYS):
            _drive(guarded_server, 32)
            assert guarded_server.stats_dict()["degraded"] is True
        # Faults gone: periodic probes refill the window with healthy
        # model answers and the server exits degraded mode.
        _drive(guarded_server, 64)
        stats = guarded_server.stats_dict()
        assert stats["degraded"] is False
        assert stats["degrade_activations"] >= 1  # history is preserved

    def test_degraded_gauge_and_counters_in_exposition(self, guarded_server):
        with FaultInjector(nan_predictions=ALWAYS):
            _drive(guarded_server, 32)
            text = guarded_server.registry.render_text()
            lines = dict(
                line.rsplit(" ", 1)
                for line in text.splitlines()
                if line and not line.startswith("#")
            )
            assert float(lines["repro_serve_degraded"]) == 1.0
            assert float(lines["repro_serve_degrade_activations_total"]) >= 1.0
            assert float(lines["repro_serve_degraded_served_total"]) > 0.0

    def test_constructor_validates_knobs(self, estimator, truth):
        guarded = GuardedCardinalityEstimator(estimator, truth)
        with pytest.raises(ValueError):
            SetServer(guarded, degrade_after=1.5)
        with pytest.raises(ValueError):
            SetServer(guarded, degrade_window=0)
        with pytest.raises(ValueError):
            SetServer(guarded, degrade_probe_every=0)
