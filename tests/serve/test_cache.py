"""QueryCache: LRU semantics, counters, invalidation, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.serve import QueryCache


class TestLru:
    def test_hit_and_miss_counters(self):
        cache = QueryCache(capacity=2)
        found, _ = cache.get(("a",))
        assert not found
        cache.put(("a",), 1.0)
        found, value = cache.get(("a",))
        assert found and value == 1.0
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_order_is_least_recently_used(self):
        cache = QueryCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)
        assert cache.evictions == 1

    def test_cached_none_is_distinguishable_from_miss(self):
        cache = QueryCache(capacity=4)
        cache.put("missing-position", None)
        assert cache.get("missing-position") == (True, None)

    def test_put_refreshes_existing_key_without_eviction(self):
        cache = QueryCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("a") == (True, 10)

    def test_zero_capacity_disables_caching(self):
        cache = QueryCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") == (False, None)
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=-1)


class TestInvalidation:
    def test_invalidate_drops_single_key(self):
        cache = QueryCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate("a") is True
        assert cache.get("a") == (False, None)
        assert cache.get("b") == (True, 2)
        assert cache.invalidations == 1

    def test_invalidate_missing_key_counts_as_miss_not_invalidation(self):
        cache = QueryCache(capacity=4)
        assert cache.invalidate("ghost") is False
        assert cache.invalidations == 0
        assert cache.invalidation_misses == 1

    def test_clear_preserves_counters(self):
        cache = QueryCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestRelatedInvalidation:
    """A mutation of set S must drop subset AND superset keys, not just S."""

    def test_drops_exact_subset_and_superset_keys(self):
        cache = QueryCache(capacity=16)
        cache.put((1, 2), "exact")
        cache.put((1,), "subset")
        cache.put((2,), "subset")
        cache.put((1, 2, 3), "superset")
        cache.put((4, 5), "unrelated")
        dropped = cache.invalidate_related((1, 2))
        assert dropped == 4
        for key in [(1, 2), (1,), (2,), (1, 2, 3)]:
            assert cache.get(key) == (False, None), key
        assert cache.get((4, 5)) == (True, "unrelated")
        assert cache.invalidations == 4

    def test_empty_query_key_is_always_dropped(self):
        # The empty query aggregates the whole collection; every mutation
        # can change its answer.
        cache = QueryCache(capacity=4)
        cache.put((), "count-all")
        assert cache.invalidate_related((7, 8)) == 1
        assert cache.get(()) == (False, None)

    def test_overlapping_but_incomparable_keys_survive(self):
        cache = QueryCache(capacity=4)
        cache.put((1, 3), "overlap-not-subset")
        cache.invalidate_related((1, 2))
        assert cache.get((1, 3)) == (True, "overlap-not-subset")

    def test_sweep_without_victims_counts_one_miss(self):
        cache = QueryCache(capacity=4)
        cache.put((9,), "far")
        assert cache.invalidate_related((1, 2)) == 0
        assert cache.invalidation_misses == 1
        assert cache.invalidations == 0


class TestConcurrency:
    def test_concurrent_mixed_operations_stay_consistent(self):
        cache = QueryCache(capacity=64)
        errors = []

        def hammer(tid: int) -> None:
            try:
                for i in range(500):
                    key = (tid, i % 100)
                    cache.put(key, i)
                    cache.get(key)
                    if i % 7 == 0:
                        cache.invalidate(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        assert cache.hits + cache.misses == 8 * 500

    def test_as_dict_reports_all_counters(self):
        cache = QueryCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        report = cache.as_dict()
        assert report == {
            "capacity": 4,
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "invalidations": 0,
            "invalidation_misses": 0,
            "hit_rate": 0.5,
        }

    def test_hit_rate_is_locked_and_consistent(self):
        cache = QueryCache(capacity=4)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        cache.get("b")
        assert cache.hit_rate == 0.5
