"""Threaded stress tests: telemetry counters conserve under concurrency.

The bugs these guard against were real: ``ServerStats.mean_batch_size``
and ``report_line`` used to read counters without the lock (torn
served/failed/batch combinations), and ``QueryCache.hit_rate`` read
``hits``/``misses`` unlocked.  Eight writer threads hammer the telemetry
while readers snapshot it; afterwards every conservation law must hold
*exactly* — a single lost ``+= 1`` breaks the equalities.
"""

from __future__ import annotations

import threading

from repro.serve import QueryCache, ServerStats

THREADS = 8
OPS_PER_THREAD = 10_000


def _run_threads(target) -> None:
    workers = [
        threading.Thread(target=target, args=(tid,)) for tid in range(THREADS)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


class TestServerStatsConservation:
    def test_counters_conserve_under_8_writers(self):
        stats = ServerStats()
        stop = threading.Event()

        def write(tid: int) -> None:
            for i in range(OPS_PER_THREAD):
                stats.record_submitted()
                if i % 10 == tid % 10:
                    stats.record_failed()
                else:
                    stats.record_served(0.001, from_cache=(i % 3 == 0))
                if i % 4 == 0:
                    stats.record_batch(4)

        def read() -> None:
            # Concurrent reads must never crash, deadlock, or report an
            # inconsistent served/failed total exceeding submissions.
            while not stop.is_set():
                snap = stats._snapshot()
                assert (
                    snap["requests_served"] + snap["requests_failed"]
                    <= snap["requests_submitted"]
                )
                stats.report_line()
                stats.mean_batch_size

        reader = threading.Thread(target=read)
        reader.start()
        try:
            _run_threads(write)
        finally:
            stop.set()
            reader.join()

        total = THREADS * OPS_PER_THREAD
        assert stats.requests_submitted == total
        assert stats.requests_served + stats.requests_failed == total
        assert stats.requests_failed == total // 10
        assert stats.batches_dispatched == total // 4
        assert stats.batched_requests == 4 * (total // 4)
        assert stats.mean_batch_size == 4.0

    def test_registry_exposition_matches_attribute_views(self):
        stats = ServerStats()
        stats.record_submitted()
        stats.record_served(0.002)
        flat = stats.registry.as_dict()
        assert flat["repro_serve_requests_submitted_total"] == 1
        assert flat["repro_serve_requests_served_total"] == 1
        assert flat["repro_serve_latency_seconds_count"] == 1


class TestQueryCacheConservation:
    def test_gets_and_invalidations_conserve_under_8_writers(self):
        cache = QueryCache(capacity=128)

        def write(tid: int) -> None:
            for i in range(OPS_PER_THREAD):
                key = (tid, i % 200)
                cache.put(key, i)
                cache.get(key)
                if i % 5 == 0:
                    cache.invalidate(key)

        _run_threads(write)

        total = THREADS * OPS_PER_THREAD
        assert cache.hits + cache.misses == total
        assert (
            cache.invalidations + cache.invalidation_misses
            == THREADS * (OPS_PER_THREAD // 5)
        )

    def test_hit_rate_read_concurrently_with_writers(self):
        # Large enough that no put/get pair can be split by an eviction.
        cache = QueryCache(capacity=1024)
        stop = threading.Event()
        rates = []

        def read() -> None:
            while not stop.is_set():
                rate = cache.hit_rate
                assert 0.0 <= rate <= 1.0
                rates.append(rate)

        def write(tid: int) -> None:
            for i in range(OPS_PER_THREAD // 10):
                cache.put((tid, i % 50), i)
                cache.get((tid, i % 50))
                cache.get((tid, "cold", i))

        reader = threading.Thread(target=read)
        reader.start()
        try:
            _run_threads(write)
        finally:
            stop.set()
            reader.join()
        assert rates, "reader thread never sampled"
        # Exactly one hit and one miss per iteration per writer.
        assert cache.hit_rate == 0.5
