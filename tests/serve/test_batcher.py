"""MicroBatcher: coalescing, flush triggers, overflow, shutdown, errors."""

from __future__ import annotations

import threading

import pytest

from repro.serve import (
    BatchPolicy,
    MicroBatcher,
    ServerClosedError,
    ServerOverloadedError,
)


def echo_batch(queries):
    return [("seen", q) for q in queries]


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        (
            {"max_batch_size": 0},
            {"max_wait_ms": -1.0},
            {"max_queue": 0},
            {"overflow": "panic"},
        ),
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)

    def test_shed_policy_requires_shed_fn(self):
        policy = BatchPolicy(overflow="shed-to-exact")
        with pytest.raises(ValueError):
            MicroBatcher(echo_batch, policy=policy)


class TestCoalescing:
    def test_coalesces_waiting_requests_into_one_batch(self):
        sizes = []
        entered = threading.Event()
        release = threading.Event()

        def slow_batch(queries):
            entered.set()
            release.wait(5.0)
            sizes.append(len(queries))
            return list(queries)

        batcher = MicroBatcher(
            slow_batch, BatchPolicy(max_batch_size=16, max_wait_ms=50.0)
        ).start()
        try:
            first = batcher.submit("warmup")  # occupies the dispatcher
            # The warmup batch is sealed once the batch fn is entered; only
            # then enqueue the rest, so they must land in later batches.
            assert entered.wait(5.0)
            futures = [batcher.submit(i) for i in range(10)]
            release.set()
            assert first.result(5.0) == "warmup"
            assert [f.result(5.0) for f in futures] == list(range(10))
        finally:
            batcher.close()
        # warmup ran alone; the 10 queued while it ran coalesced afterwards.
        assert sizes[0] == 1
        assert max(sizes[1:]) > 1
        assert sum(sizes) == 11

    def test_max_batch_size_caps_batches(self):
        sizes = []

        def tracking_batch(queries):
            sizes.append(len(queries))
            return list(queries)

        batcher = MicroBatcher(
            tracking_batch, BatchPolicy(max_batch_size=4, max_wait_ms=100.0)
        )
        futures = [batcher.submit(i) for i in range(12)]
        batcher.start()
        assert [f.result(5.0) for f in futures] == list(range(12))
        batcher.close()
        assert all(size <= 4 for size in sizes)

    def test_max_wait_flushes_partial_batch(self):
        batcher = MicroBatcher(
            echo_batch, BatchPolicy(max_batch_size=1024, max_wait_ms=10.0)
        ).start()
        try:
            future = batcher.submit("lonely")
            assert future.result(5.0) == ("seen", "lonely")
        finally:
            batcher.close()


class TestOverflow:
    def test_reject_policy_fails_fast_via_future(self):
        rejected = []
        batcher = MicroBatcher(
            echo_batch,
            BatchPolicy(max_queue=2, overflow="reject"),
            on_reject=lambda: rejected.append(1),
        )
        # Dispatcher not started: queue fills at max_queue.
        okay = [batcher.submit(i) for i in range(2)]
        overflow = batcher.submit("too-much")
        with pytest.raises(ServerOverloadedError):
            overflow.result(1.0)
        assert len(rejected) == 1
        batcher.start()
        assert [f.result(5.0) for f in okay] == [("seen", 0), ("seen", 1)]
        batcher.close()

    def test_shed_policy_answers_on_caller_thread(self):
        shed_threads = []

        def shed(query):
            shed_threads.append(threading.current_thread().name)
            return ("exact", query)

        batcher = MicroBatcher(
            echo_batch,
            BatchPolicy(max_queue=1, overflow="shed-to-exact"),
            shed_fn=shed,
        )
        queued = batcher.submit("queued")
        shed_future = batcher.submit("overflowed")
        assert shed_future.result(1.0) == ("exact", "overflowed")
        assert shed_threads == [threading.current_thread().name]
        batcher.start()
        assert queued.result(5.0) == ("seen", "queued")
        batcher.close()


class TestErrorsAndShutdown:
    def test_poison_request_fails_alone(self):
        def picky_batch(queries):
            if any(q == "poison" for q in queries):
                raise ValueError("bad query in batch")
            return list(queries)

        batcher = MicroBatcher(
            picky_batch, BatchPolicy(max_batch_size=8, max_wait_ms=100.0)
        )
        futures = [batcher.submit(q) for q in ("a", "poison", "b")]
        batcher.start()
        assert futures[0].result(5.0) == "a"
        with pytest.raises(ValueError):
            futures[1].result(5.0)
        assert futures[2].result(5.0) == "b"
        batcher.close()

    def test_short_batch_result_is_an_error(self):
        batcher = MicroBatcher(
            lambda queries: queries[:-1],
            BatchPolicy(max_batch_size=4, max_wait_ms=20.0),
        )
        futures = [batcher.submit(i) for i in range(3)]
        batcher.start()
        for future in futures:
            with pytest.raises(RuntimeError):
                future.result(5.0)
        batcher.close()

    def test_close_drains_admitted_requests(self):
        batcher = MicroBatcher(echo_batch, BatchPolicy(max_wait_ms=5.0))
        futures = [batcher.submit(i) for i in range(20)]
        batcher.start()
        batcher.close()
        assert [f.result(1.0) for f in futures] == [("seen", i) for i in range(20)]
        assert not batcher.running

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(echo_batch).start()
        batcher.close()
        with pytest.raises(ServerClosedError):
            batcher.submit("late")

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(echo_batch).start()
        batcher.close()
        batcher.close()

    def test_on_batch_callback_counts_every_request(self):
        sizes = []
        batcher = MicroBatcher(
            echo_batch,
            BatchPolicy(max_batch_size=4, max_wait_ms=5.0),
            on_batch=sizes.append,
        )
        futures = [batcher.submit(i) for i in range(10)]
        batcher.start()
        for future in futures:
            future.result(5.0)
        batcher.close()
        assert sum(sizes) == 10
