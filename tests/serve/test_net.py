"""TCP line-protocol frontend: answers, errors, STATS, concurrency."""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.serve import SetServer, TcpServeFrontend

from .conftest import QUERIES


@pytest.fixture
def frontend(estimator):
    server = SetServer(estimator, cache_size=64).start()
    tcp = TcpServeFrontend(server, port=0).start_background()
    yield tcp, server
    tcp.shutdown()
    server.close()


def connect(tcp):
    sock = socket.create_connection(tcp.address, timeout=10.0)
    return sock, sock.makefile("rw", encoding="utf-8", newline="\n")


def ask(stream, line):
    stream.write(line + "\n")
    stream.flush()
    return stream.readline().strip()


def ask_metrics(stream):
    """Send METRICS and collect exposition lines up to the # EOF frame."""
    stream.write("METRICS\n")
    stream.flush()
    lines = []
    for raw in stream:
        if raw.strip() == "# EOF":
            break
        lines.append(raw.rstrip("\n"))
    return lines


class TestProtocol:
    def test_query_line_returns_formatted_estimate(self, frontend, estimator):
        tcp, server = frontend
        sock, stream = connect(tcp)
        try:
            assert ask(stream, "0 1") == f"{server.query((0, 1)):.2f}"
        finally:
            sock.close()

    def test_malformed_line_keeps_connection_alive(self, frontend):
        tcp, _ = frontend
        sock, stream = connect(tcp)
        try:
            assert ask(stream, "zero one") == "error malformed query"
            assert ask(stream, "0 1") != ""  # still serving
        finally:
            sock.close()

    def test_stats_returns_server_json(self, frontend):
        tcp, _ = frontend
        sock, stream = connect(tcp)
        try:
            ask(stream, "0 1")
            report = json.loads(ask(stream, "STATS"))
            assert report["kind"] == "cardinality"
            assert report["requests_served"] >= 1
        finally:
            sock.close()

    def test_metrics_returns_framed_exposition(self, frontend):
        tcp, _ = frontend
        sock, stream = connect(tcp)
        try:
            ask(stream, "0 1")
            lines = ask_metrics(stream)
            assert lines, "exposition must be non-empty"
            type_names = [
                line.split()[2] for line in lines if line.startswith("# TYPE ")
            ]
            assert len(type_names) == len(set(type_names)), "duplicate families"
            assert "repro_serve_requests_served_total" in type_names
            assert "repro_serve_latency_seconds" in type_names
            assert "repro_cache_hit_rate" in type_names
            sample_names = {
                line.split("{")[0].split()[0]
                for line in lines
                if not line.startswith("#")
            }
            assert "repro_serve_latency_seconds_bucket" in sample_names
            # The connection still serves queries after the framed reply.
            assert ask(stream, "0 1") != ""
        finally:
            sock.close()

    def test_trace_returns_span_json(self, frontend):
        tcp, _ = frontend
        sock, stream = connect(tcp)
        try:
            ask(stream, "0 1")
            spans = json.loads(ask(stream, "TRACE 10"))
            assert isinstance(spans, list) and spans
            assert len(spans) <= 10
            names = {span["name"] for span in spans}
            assert names & {"encode", "cache_lookup", "model_forward", "batch_wait"}
            assert all("duration_ms" in span for span in spans)
        finally:
            sock.close()

    def test_trace_with_bad_limit_reports_error(self, frontend):
        tcp, _ = frontend
        sock, stream = connect(tcp)
        try:
            assert ask(stream, "TRACE abc") == "error malformed trace limit"
            assert ask(stream, "0 1") != ""  # connection stays up
        finally:
            sock.close()

    def test_refresh_without_maintainer_reports_disabled(self, frontend):
        tcp, _ = frontend
        sock, stream = connect(tcp)
        try:
            assert json.loads(ask(stream, "REFRESH")) == {"auto_refresh": False}
            assert ask(stream, "0 1") != ""  # connection stays up
        finally:
            sock.close()

    def test_refresh_reports_maintainer_status(self, frontend, collection):
        from repro.maintain import BackgroundRefresher, default_rebuilder

        tcp, server = frontend
        refresher = BackgroundRefresher(
            server,
            default_rebuilder(server.structure, collection=collection),
        )
        sock, stream = connect(tcp)
        try:
            status = json.loads(ask(stream, "REFRESH"))
            assert status["auto_refresh"] is True
            assert status["kind"] == "cardinality"
            assert status["refreshes"] == 0
            assert "policy" in status and "delta" in status
        finally:
            sock.close()
            refresher.close()
            refresher.delta.detach_all()
            server.maintainer = None

    def test_quit_closes_connection(self, frontend):
        tcp, _ = frontend
        sock, stream = connect(tcp)
        try:
            stream.write("QUIT\n")
            stream.flush()
            assert stream.readline() == ""  # EOF
        finally:
            sock.close()

    def test_concurrent_connections_share_the_batcher(self, frontend, estimator):
        tcp, server = frontend
        want = {q: f"{server.query(q):.2f}" for q in dict.fromkeys(QUERIES)}
        errors = []

        def client() -> None:
            try:
                sock, stream = connect(tcp)
                try:
                    for query in QUERIES:
                        line = " ".join(str(e) for e in query)
                        assert ask(stream, line) == want[query]
                finally:
                    sock.close()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert server.stats.requests_failed == 0
