"""Shared trained structures for the serving suite.

Training dominates test time, so the three learned structures are built
once per session over one small collection.  Tests that mutate a structure
(updates, swaps) must train their own or operate on fresh facades; the
server itself only reads.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    ModelConfig,
    OutlierRemovalConfig,
    TrainConfig,
)
from repro.sets import InvertedIndex, SetCollection

SETS = [
    [0, 1, 2],
    [1, 2],
    [0, 3],
    [1, 2, 3],
    [4, 5],
    [0, 4, 5],
    [2, 3, 4],
    [0, 1],
    [3, 5],
    [0, 2, 5],
    [1, 4],
    [2, 5],
]

# A workload mixing auxiliary hits, pure model-path subsets, repeated hot
# queries, and (for guarded serving) never-stored combinations.
QUERIES = [
    (0, 1),
    (1, 2),
    (2, 3),
    (0,),
    (4, 5),
    (1, 2, 3),
    (2,),
    (3, 5),
    (0, 2),
    (1, 4),
    (5,),
    (0, 4),
] * 6


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.002) -> bool:
    """Bounded condition wait for threaded tests: polls ``predicate`` until
    it holds or ``timeout`` elapses (never a fixed sleep — on a loaded CI
    box a fixed sleep is either too short, and flakes, or too long, and
    wastes the whole suite's budget)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


def small_model_config() -> ModelConfig:
    return ModelConfig(
        kind="lsm", embedding_dim=2, phi_hidden=(4,), rho_hidden=(4,), seed=0
    )


def train_estimator(collection, seed: int = 0) -> LearnedCardinalityEstimator:
    return LearnedCardinalityEstimator.build(
        collection,
        model_config=small_model_config(),
        train_config=TrainConfig(epochs=4, batch_size=64, lr=5e-3, loss="mse", seed=seed),
        removal=OutlierRemovalConfig(percentile=90.0, at_epochs=(3,)),
        max_subset_size=3,
        rng=np.random.default_rng(seed),
    )


@pytest.fixture(scope="session")
def collection() -> SetCollection:
    return SetCollection(SETS)


@pytest.fixture(scope="session")
def truth(collection) -> InvertedIndex:
    return InvertedIndex(collection)


@pytest.fixture(scope="session")
def estimator(collection) -> LearnedCardinalityEstimator:
    return train_estimator(collection)


@pytest.fixture(scope="session")
def index(collection) -> LearnedSetIndex:
    return LearnedSetIndex.build(
        collection,
        model_config=small_model_config(),
        train_config=TrainConfig(epochs=4, batch_size=64, lr=5e-3, loss="mse", seed=0),
        max_subset_size=3,
        rng=np.random.default_rng(0),
    )


@pytest.fixture(scope="session")
def bloom(collection) -> LearnedBloomFilter:
    return LearnedBloomFilter.build(
        collection,
        train_config=TrainConfig(epochs=4, batch_size=64, lr=5e-3, loss="bce", seed=0),
        max_subset_size=2,
        rng=np.random.default_rng(0),
    )
