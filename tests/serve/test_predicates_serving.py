"""Serving-layer predicate plumbing (ISSUE 9 tentpole, serve layer).

Covers the three serving surfaces the predicate family flows through:

* :class:`QueryCache` keys are ``(predicate_spec, canonical)`` pairs and
  :meth:`invalidate_related` sweeps per predicate (⊆/⊇ for subset and
  superset, intersection for overlap/jaccard, everything for unknown);
* :class:`SetServer` routes predicates to suite structures, caches per
  predicate, and rejects non-subset predicates on subset-only structures;
* the TCP line protocol's optional leading predicate token
  (:func:`parse_query_line` and a live frontend round-trip).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainConfig
from repro.core.predicate_suite import PredicateCardinalitySuite
from repro.reliability import GuardedPredicateSuite
from repro.serve import QueryCache, SetServer, TcpServeFrontend
from repro.serve.net import parse_query_line
from repro.sets.predicates import DEFAULT_PREDICATES

from .conftest import small_model_config
from .test_net import ask, connect

SPECS = tuple(predicate.spec for predicate in DEFAULT_PREDICATES)


@pytest.fixture(scope="module")
def suite(collection) -> PredicateCardinalitySuite:
    return PredicateCardinalitySuite.build(
        collection,
        model_config=small_model_config(),
        train_config=TrainConfig(epochs=3, batch_size=64, lr=5e-3, loss="mse", seed=0),
        num_samples=200,
        max_subset_size=3,
        rng=np.random.default_rng(0),
    )


@pytest.fixture(scope="module")
def guarded(suite, collection) -> GuardedPredicateSuite:
    return GuardedPredicateSuite.for_collection(suite, collection)


class TestCacheKeySweeps:
    def test_subset_and_superset_keys_sweep_by_containment(self):
        cache = QueryCache(capacity=16)
        cache.put(("subset", (1, 2)), 1.0)       # ⊆ mutated -> dropped
        cache.put(("superset", (1, 2, 3, 4)), 2.0)  # ⊇ mutated -> dropped
        cache.put(("subset", (1, 9)), 3.0)       # incomparable -> kept
        assert cache.invalidate_related((1, 2, 3)) == 2
        assert cache.get(("subset", (1, 9)))[0]

    def test_overlap_and_jaccard_keys_sweep_by_intersection(self):
        cache = QueryCache(capacity=16)
        cache.put(("overlap>=2", (3, 9)), 1.0)    # intersects -> dropped
        cache.put(("jaccard>=0.5", (1, 8)), 2.0)  # intersects -> dropped
        cache.put(("overlap>=2", (8, 9)), 3.0)    # disjoint -> kept
        assert cache.invalidate_related((1, 2, 3)) == 2
        assert cache.get(("overlap>=2", (8, 9)))[0]

    def test_incomparable_subset_key_survives_where_overlap_does_not(self):
        # The same cached query, one per predicate: the mutation (1, 2, 3)
        # overlaps (1, 9) without containing it either way.
        cache = QueryCache(capacity=16)
        cache.put(("subset", (1, 9)), 1.0)
        cache.put(("overlap>=2", (1, 9)), 2.0)
        assert cache.invalidate_related((1, 2, 3)) == 1
        assert cache.get(("subset", (1, 9)))[0]
        assert not cache.get(("overlap>=2", (1, 9)))[0]

    def test_empty_query_key_drops_under_every_predicate(self):
        cache = QueryCache(capacity=16)
        for spec in SPECS:
            cache.put((spec, ()), 0.0)
        assert cache.invalidate_related((7,)) == len(SPECS)

    def test_unknown_spec_key_is_dropped_conservatively(self):
        cache = QueryCache(capacity=16)
        cache.put(("between", (8, 9)), 1.0)
        assert cache.invalidate_related((1, 2)) == 1

    def test_legacy_bare_keys_keep_the_containment_sweep(self):
        cache = QueryCache(capacity=16)
        cache.put((1, 2), 1.0)
        cache.put((1, 9), 2.0)
        assert cache.invalidate_related((1, 2, 3)) == 1
        assert cache.get((1, 9))[0]


class TestParseQueryLine:
    def test_no_token_means_subset(self):
        assert parse_query_line(["3", "17"]) == ("subset", (3, 17))

    def test_leading_token_selects_the_predicate(self):
        for spec in ("superset", "overlap>=2", "jaccard>=0.5"):
            assert parse_query_line([spec, "3", "17"]) == (spec, (3, 17))

    def test_explicit_subset_token_is_accepted(self):
        assert parse_query_line(["subset", "3"]) == ("subset", (3,))

    def test_negative_ids_are_not_mistaken_for_predicates(self):
        assert parse_query_line(["-1", "3"]) == ("subset", (-1, 3))

    def test_bad_token_and_bad_ids_raise(self):
        with pytest.raises(ValueError):
            parse_query_line(["contains", "3"])
        with pytest.raises(ValueError):
            parse_query_line(["superset", "x"])


class TestServerPredicates:
    def test_subset_only_structure_rejects_other_predicates(self, estimator):
        with SetServer(estimator, cache_size=8) as server:
            assert not server.supports_predicates()
            assert server.query((0, 1)) >= 0.0  # subset still served
            with pytest.raises(ValueError, match="predicate"):
                server.query((0, 1), predicate="superset")

    def test_suite_server_answers_every_predicate(self, guarded, truth):
        with SetServer(guarded, cache_size=32) as server:
            assert server.supports_predicates()
            for spec in SPECS:
                value = server.query((0, 1), predicate=spec)
                assert 0.0 <= value <= truth.num_sets, spec

    def test_cache_entries_are_per_predicate(self, guarded):
        with SetServer(guarded, cache_size=32) as server:
            baseline = server.cache.misses
            for spec in SPECS:
                server.query((1, 2), predicate=spec)
            assert server.cache.misses == baseline + len(SPECS)
            hits = server.cache.hits
            for spec in SPECS:
                server.query((2, 1, 2), predicate=spec)  # same canonical
            assert server.cache.hits == hits + len(SPECS)

    def test_record_update_invalidates_across_predicates(self, collection):
        suite = PredicateCardinalitySuite.build(
            collection,
            model_config=small_model_config(),
            train_config=TrainConfig(
                epochs=2, batch_size=64, lr=5e-3, loss="mse", seed=1
            ),
            num_samples=120,
            max_subset_size=3,
            rng=np.random.default_rng(1),
        )
        with SetServer(suite, cache_size=32) as server:
            for spec in SPECS:
                server.query((1, 2), predicate=spec)
            assert len(server.cache) == len(SPECS)
            # Mutating (1, 2) can change the answer under every predicate.
            suite.record_update((1, 2), 9, predicate="subset")
            assert len(server.cache) == 0
            assert server.query((1, 2), predicate="subset") == 9.0

    def test_query_many_accepts_a_predicate(self, guarded, truth):
        with SetServer(guarded, cache_size=0) as server:
            values = server.query_many([(0, 1), (1, 2)], predicate="superset")
            exact = [
                truth.count_predicate("superset", (0, 1)),
                truth.count_predicate("superset", (1, 2)),
            ]
            assert all(0.0 <= v <= truth.num_sets for v in values)
            assert len(values) == len(exact)


class TestTcpPredicates:
    @pytest.fixture
    def frontend(self, guarded):
        server = SetServer(guarded, cache_size=64).start()
        tcp = TcpServeFrontend(server, port=0).start_background()
        yield tcp, server
        tcp.shutdown()
        server.close()

    def test_predicate_tokens_round_trip(self, frontend, truth):
        tcp, _ = frontend
        sock, stream = connect(tcp)
        try:
            for spec in SPECS:
                answer = ask(stream, f"{spec} 1 2")
                assert 0.0 <= float(answer) <= truth.num_sets, spec
            bare = ask(stream, "1 2")
            tagged = ask(stream, "subset 1 2")
            assert bare == tagged  # no token == explicit subset
        finally:
            sock.close()

    def test_unknown_predicate_token_is_malformed(self, frontend):
        tcp, _ = frontend
        sock, stream = connect(tcp)
        try:
            assert ask(stream, "contains 1 2") == "error malformed query"
            assert float(ask(stream, "1 2")) >= 0.0  # connection survives
        finally:
            sock.close()

    def test_unsupported_predicate_on_subset_server_is_an_error(self, estimator):
        server = SetServer(estimator, cache_size=0).start()
        tcp = TcpServeFrontend(server, port=0).start_background()
        sock, stream = connect(tcp)
        try:
            assert ask(stream, "superset 1 2") == "error ValueError"
            assert float(ask(stream, "1 2")) >= 0.0
        finally:
            sock.close()
            tcp.shutdown()
            server.close()
