"""SnapshotHolder: atomic swap semantics and version monotonicity."""

from __future__ import annotations

import threading

from repro.serve import SnapshotHolder


class TestSnapshotHolder:
    def test_initial_snapshot_is_version_zero(self):
        holder = SnapshotHolder("structure-a")
        assert holder.current.version == 0
        assert holder.current.structure == "structure-a"

    def test_swap_bumps_version_and_replaces_structure(self):
        holder = SnapshotHolder("a")
        snapshot = holder.swap("b")
        assert snapshot.version == 1
        assert holder.current is snapshot
        assert holder.current.structure == "b"

    def test_old_snapshot_reference_remains_usable(self):
        """A reader holding the old snapshot keeps serving from it."""
        holder = SnapshotHolder("a")
        before = holder.current
        holder.swap("b")
        assert before.structure == "a"
        assert holder.current.structure == "b"

    def test_concurrent_swaps_keep_versions_unique_and_monotonic(self):
        holder = SnapshotHolder("seed")
        versions = []
        lock = threading.Lock()

        def swapper(tid: int) -> None:
            for i in range(50):
                snapshot = holder.swap(f"{tid}-{i}")
                with lock:
                    versions.append(snapshot.version)

        threads = [threading.Thread(target=swapper, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(versions) == list(range(1, 8 * 50 + 1))
        assert holder.current.version == 8 * 50
