"""Drift differential: a rotating hot set trips — and fixes — one shard.

The scenario the adaptive loop exists for, end to end over a served
sharded stack:

* three contiguous shards over three element blocks; shards 0 and 1 are
  trained on their live data, shard 2's part was trained on a *stale*
  snapshot of its block (the hot combination ``{20,21,22}`` never
  co-occurred back then, and the stale scaler caps its answers well
  below today's truth — a systematic underestimate, not noise);
* the served workload rotates: a stable phase over blocks 0/1, then a
  Zipf-skewed hot set of block-2 queries.  The probe buckets observed
  error by shard offsets (Algorithm 2's local bounds), so only shard 2
  trips ``local_q_error:shard2``;
* the targeted refresh must rebuild *only* shard 2 (never all K unless
  all trip — see ``TestTargetedDispatch``), leave shards 0/1
  byte-identical, and — because the rebuild folds the observed
  frequencies in and pins still-hot misestimates — beat a static
  workload-blind full retrain on the observed distribution.

Determinism: the drifted shard's estimates are bounded by its stale
scaler (max historical element cardinality, at most 20 here) while the
hot truths are exactly ``SETS_PER_BLOCK``; the trip margin is therefore
structural, not a training accident.  ``REPRO_TEST_SEED`` rotates the
randomized fillers and every assertion echoes it.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import replace

import numpy as np

from repro import ModelConfig, TrainConfig
from repro.adapt import (
    AdaptiveRefresher,
    ShardStalenessTracker,
    WorkloadLog,
    workload_shard_rebuilder,
)
from repro.core.cardinality import LearnedCardinalityEstimator
from repro.core.qerror import q_error
from repro.maintain import (
    DeltaBuffer,
    StalenessPolicy,
    default_rebuilder,
    unwrap_structure,
)
from repro.serve import SetServer
from repro.sets import SetCollection
from repro.sets.inverted import InvertedIndex
from repro.shard import ShardPlan, ShardedCardinalityEstimator

SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))

NUM_SHARDS = 3
SETS_PER_BLOCK = 40
#: Today's block-2 reality: every set contains the full core.
CORE = (20, 21, 22, 23, 24)
#: The rotated-in hot set — size 4, above the training subset cap of 3,
#: so only the workload-aware rebuild ever sees these as training pairs.
HOT = [(20, 21, 22, 23), (20, 21, 22, 24), (20, 21, 23, 24), (20, 22, 23, 24)]
HOT_COUNTS = [16, 8, 4, 2]  # Zipf-ish skew

MODEL = ModelConfig(kind="lsm", embedding_dim=4, phi_hidden=(8,), rho_hidden=(8,))
TRAIN = TrainConfig(epochs=3, batch_size=32, verbose=False)


def _real_collection(rng: np.random.Generator) -> SetCollection:
    """Blocks 0/1 random over their ranges; block 2 all-contain-CORE."""
    sets: list[list[int]] = []
    for block in range(2):
        lo = 10 * block
        sets.append(list(range(lo, lo + 10)))  # anchors the block ceiling
        for _ in range(SETS_PER_BLOCK - 1):
            size = int(rng.integers(2, 5))
            sets.append(
                sorted(rng.choice(np.arange(lo, lo + 10), size=size,
                                  replace=False).tolist())
            )
    fillers = [25, 26, 27, 28, 29]
    for i in range(SETS_PER_BLOCK):
        sets.append(sorted(CORE + (fillers[i % len(fillers)],)))
    return SetCollection(sets)


def _stale_collection(rng: np.random.Generator) -> SetCollection:
    """Historical block 2: size-3 sets where the core never co-occurs.

    Every element appears in at most 20 sets, so a model trained (and
    scaled) on this snapshot cannot answer above 20 — while every hot
    query's live truth is ``SETS_PER_BLOCK`` (40).  The >= 2x q-error on
    the hot set is guaranteed by the scaler cap, whatever the weights.
    """
    sets: list[list[int]] = [[20, 23, 29]]  # anchors ids 20 and 29
    while len(sets) < SETS_PER_BLOCK // 2:
        candidate = sorted(
            rng.choice(np.arange(20, 30), size=3, replace=False).tolist()
        )
        if {20, 21, 22} <= set(candidate):
            continue
        sets.append(candidate)
    return SetCollection(sets)


def _build_router(real, stale):
    plan = ShardPlan.contiguous(real, NUM_SHARDS)
    parts = [
        LearnedCardinalityEstimator.build(
            plan[sid].collection,
            model_config=replace(MODEL, seed=SEED + sid),
            train_config=replace(TRAIN, seed=SEED + sid),
            max_subset_size=3,
        )
        for sid in range(NUM_SHARDS - 1)
    ]
    parts.append(
        LearnedCardinalityEstimator.build(
            stale,
            model_config=replace(MODEL, seed=SEED + 2),
            train_config=replace(TRAIN, seed=SEED + 2),
            max_subset_size=3,
        )
    )
    return plan, ShardedCardinalityEstimator(plan, parts)


def _weighted_q_error(structure, exact) -> float:
    """Count-weighted q-error over the observed (hot) distribution."""
    truths = np.asarray(
        [float(exact.cardinality(query)) for query in HOT], dtype=np.float64
    )
    estimates = np.asarray(structure.estimate_many(list(HOT)), dtype=np.float64)
    return float(
        np.average(q_error(estimates, truths),
                   weights=np.asarray(HOT_COUNTS, dtype=np.float64))
    )


class TestDriftDifferential:
    def test_rotating_hot_set_trips_and_repairs_only_the_drifted_shard(self):
        rng = np.random.default_rng(SEED)
        real = _real_collection(rng)
        stale = _stale_collection(rng)
        plan, router = _build_router(real, stale)
        # Exact LSM ceilings (9/19/29): hot queries provably skip 0 and 1.
        assert [part.max_known_id() for part in router.parts] == [9, 19, 29]
        exact = InvertedIndex(real)
        workload = WorkloadLog(capacity=128, observe_every=4)
        server = SetServer(
            router, exact=exact, workload=workload, cache_size=0
        ).start()
        try:
            # Phase 1 — the stable regime: traffic over blocks 0/1.
            for i in range(20):
                lo = 10 * (i % 2)
                server.query((lo + i % 9, lo + i % 9 + 1))
            # Phase 2 — the rotation: the hot set moves into block 2.
            for hot, count in zip(HOT, HOT_COUNTS):
                for _ in range(count):
                    server.query(hot)

            old_router = unwrap_structure(server.structure)
            old_parts = list(old_router.parts)
            old_bytes = [pickle.dumps(part) for part in old_parts]

            tracker = ShardStalenessTracker(
                plan.offsets(), window=16, min_observations=len(HOT)
            )
            policy = StalenessPolicy(
                max_deltas=None,
                max_aux_fraction=None,
                max_local_q_error=1.8,
                min_interval_s=0.0,
            )
            rebuilt_ids: list[int] = []
            base_rebuild = workload_shard_rebuilder(
                workload,
                model_config=MODEL,
                train_config=TRAIN,
                max_subset_size=3,
                pin_q_error=1.0,
                base_seed=SEED + 100,
            )

            def spy_shard_rebuild(router_, shard_id):
                rebuilt_ids.append(shard_id)
                return base_rebuild(router_, shard_id)

            full_calls: list[str] = []
            full_rebuild = default_rebuilder(
                router,
                model_config=MODEL,
                train_config=TRAIN,
                max_subset_size=3,
                base_seed=SEED + 900,
            )

            def spy_full_rebuild(inner):
                full_calls.append(type(inner).__name__)
                return full_rebuild(inner)

            refresher = AdaptiveRefresher(
                server,
                spy_full_rebuild,
                workload=workload,
                tracker=tracker,
                shard_rebuild=spy_shard_rebuild,
                exact=exact,
                probe_entries=len(HOT),
                policy=policy,
                delta=DeltaBuffer(),
            )

            state = refresher.collect_state()
            reasons = policy.evaluate(state)
            assert reasons == ["local_q_error:shard2"], (
                f"seed={SEED}: only the drifted shard may trip; "
                f"reasons={reasons} state={state.as_dict()}"
            )
            assert set(state.shard_q_errors) == {2}, (
                f"seed={SEED}: hot queries skip shards 0/1 (ceilings 9/19), "
                f"so only shard 2 has probe evidence; "
                f"got {state.shard_q_errors}"
            )

            # The static control: a workload-blind full retrain over the
            # live collection — what a periodic refresher would publish.
            control = default_rebuilder(
                router,
                model_config=MODEL,
                train_config=TRAIN,
                max_subset_size=3,
                base_seed=SEED + 500,
            )(old_router)

            drifted = _weighted_q_error(old_router, exact)
            assert drifted > 1.8, (
                f"seed={SEED}: the stale shard's scaler caps estimates at "
                f"20 vs truth 40, so pre-refresh weighted q-error must "
                f"exceed the policy threshold; got {drifted:.3f}"
            )

            refresher.refresh_now(reasons)

            # (1) Only the tripped shard was rebuilt — and via the
            # targeted path, not a disguised full rebuild.
            assert rebuilt_ids == [2], (
                f"seed={SEED}: expected exactly shard 2 rebuilt, "
                f"got {rebuilt_ids}"
            )
            assert not full_calls, (
                f"seed={SEED}: a single tripped shard must not trigger a "
                f"full rebuild; full path ran on {full_calls}"
            )
            assert refresher.partial_refreshes == 1, (
                f"seed={SEED}: expected one targeted refresh, "
                f"got {refresher.partial_refreshes}"
            )
            assert refresher.shards_rebuilt == 1

            new_router = unwrap_structure(server.structure)
            assert new_router is not old_router

            # (3) Untouched shards: same objects, byte-identical.
            for shard_id in range(NUM_SHARDS - 1):
                assert new_router.parts[shard_id] is old_parts[shard_id], (
                    f"seed={SEED}: untripped shard {shard_id} must keep "
                    f"its part object"
                )
                assert (
                    pickle.dumps(new_router.parts[shard_id])
                    == old_bytes[shard_id]
                ), (
                    f"seed={SEED}: untripped shard {shard_id} must be "
                    f"byte-identical after the targeted swap"
                )
            assert new_router.parts[2] is not old_parts[2], (
                f"seed={SEED}: the drifted shard must have a fresh part"
            )

            # (2) The adaptive rebuild beats the static control on the
            # observed distribution: hot frequencies were merged into its
            # training weights and still-wrong hot queries pinned exactly.
            adaptive = _weighted_q_error(new_router, exact)
            static = _weighted_q_error(control, exact)
            assert adaptive <= 1.0 + 1e-6, (
                f"seed={SEED}: hot queries must answer exactly after the "
                f"workload-aware rebuild (pin path); got {adaptive:.4f}"
            )
            assert adaptive < static, (
                f"seed={SEED}: adaptive refresh ({adaptive:.4f}) must beat "
                f"the workload-blind control ({static:.4f}) on the observed "
                f"distribution (pre-refresh drift {drifted:.3f})"
            )
        finally:
            server.close()


class _StubPart:
    """Constant-answer cardinality part (dispatch tests need no training)."""

    def __init__(self, generation: int, ceiling: int):
        self.generation = generation
        self._ceiling = ceiling

    def max_known_id(self) -> int:
        return self._ceiling

    def estimate_many(self, queries):
        return np.full(len(queries), float(self.generation), dtype=np.float64)


class TestTargetedDispatch:
    """The never-all-K-unless-all-trip half of assertion (1), on stubs."""

    def _serve(self):
        collection = SetCollection(
            [[i, i + 1] for i in range(0, 29, 2)] + [[29]]
        )
        plan = ShardPlan.contiguous(collection, NUM_SHARDS)
        ceiling = collection.max_element_id()
        router = ShardedCardinalityEstimator(
            plan, [_StubPart(1, ceiling) for _ in range(NUM_SHARDS)]
        )
        server = SetServer(
            router, exact=InvertedIndex(collection), cache_size=0
        ).start()
        tracker = ShardStalenessTracker(
            plan.offsets(), window=8, min_observations=1
        )
        for shard_id in range(NUM_SHARDS):
            tracker.record(shard_id, 5.0)
        rebuilt: list[int] = []
        full: list[int] = []
        ceiling_ = ceiling

        def shard_rebuild(router_, shard_id):
            rebuilt.append(shard_id)
            return _StubPart(2, ceiling_)

        def full_rebuild(inner):
            full.append(1)
            return ShardedCardinalityEstimator(
                plan, [_StubPart(2, ceiling_) for _ in range(NUM_SHARDS)]
            )

        refresher = AdaptiveRefresher(
            server,
            full_rebuild,
            workload=WorkloadLog(capacity=8),
            tracker=tracker,
            shard_rebuild=shard_rebuild,
            policy=StalenessPolicy(
                max_deltas=None, max_aux_fraction=None, max_local_q_error=2.0
            ),
            delta=DeltaBuffer(),
        )
        return server, refresher, rebuilt, full, tracker

    def test_strict_subset_of_shards_rebuilds_targeted(self):
        server, refresher, rebuilt, full, tracker = self._serve()
        try:
            refresher.refresh_now(
                ["local_q_error:shard0", "local_q_error:shard2"]
            )
            assert rebuilt == [0, 2], (
                f"seed={SEED}: exactly the named shards rebuild, "
                f"got {rebuilt}"
            )
            assert not full, f"seed={SEED}: no full rebuild for a subset"
            # Only the rebuilt shards' windows reset.
            assert tracker.observations(0) == 0
            assert tracker.observations(1) == 1
            assert tracker.observations(2) == 0
        finally:
            server.close()

    def test_all_shards_tripped_falls_back_to_full_rebuild(self):
        server, refresher, rebuilt, full, tracker = self._serve()
        try:
            refresher.refresh_now(
                [f"local_q_error:shard{i}" for i in range(NUM_SHARDS)]
            )
            assert full == [1], (
                f"seed={SEED}: all K tripped means one full rebuild"
            )
            assert rebuilt == [], (
                f"seed={SEED}: the targeted path must not also run"
            )
            # A full rebuild invalidates every shard's window.
            assert all(
                tracker.observations(i) == 0 for i in range(NUM_SHARDS)
            ), f"seed={SEED}: full rebuild must reset all tracker windows"
        finally:
            server.close()

    def test_mixed_global_and_local_reasons_force_full_rebuild(self):
        server, refresher, rebuilt, full, tracker = self._serve()
        try:
            refresher.refresh_now(["local_q_error:shard2", "delta_count"])
            assert full == [1] and rebuilt == [], (
                f"seed={SEED}: a global signal alongside a local one means "
                f"the whole structure drifted; full={full} rebuilt={rebuilt}"
            )
        finally:
            server.close()
