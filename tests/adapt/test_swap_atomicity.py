"""Regression: per-shard hot swap never exposes a torn router.

Targeted refresh publishes ``router.with_parts({...})`` through the
server's snapshot swap.  These tests pin the two halves of that
guarantee:

* *copy-and-swap* — readers hammering ``estimate_many`` while a writer
  loops shard replacements must only ever see whole published
  generations.  Stub parts encode ``generation * 1000**shard_id``, so a
  summed router answer decodes to the exact per-shard generation vector;
  a torn parts list (mixed old/new mid-replacement) would decode to a
  vector that was never published — chaos style borrowed from
  ``tests/pool``;
* *untouched parts are the same objects* — ``with_parts`` must not
  rebuild, copy, or re-wrap parts it was not asked to replace (the drift
  differential asserts byte-identity on real trained parts; object
  identity is the mechanism), while router-level mutation layers carry
  over.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro import SetCollection
from repro.serve import SetServer
from repro.sets.inverted import InvertedIndex
from repro.shard import ShardPlan, ShardedCardinalityEstimator, ShardedSetIndex
from repro.shard.routers import ShardedBloomFilter

SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))

NUM_SHARDS = 3
SWAPS = 60
READERS = 4


def _collection() -> SetCollection:
    rng = np.random.default_rng(SEED)
    sets = []
    for block in range(NUM_SHARDS):
        lo = 10 * block
        for _ in range(6):
            size = int(rng.integers(2, 5))
            sets.append(
                sorted(rng.choice(np.arange(lo, lo + 10), size=size,
                                  replace=False).tolist())
            )
    return SetCollection(sets)


class _StubPart:
    """Cardinality part answering ``generation * 1000**shard_id``.

    The router sums per-shard answers, so with one stub per shard the sum
    decodes (base 1000) back into each shard's generation — any mixed-
    generation readout is visible as a never-published digit vector.
    """

    def __init__(self, shard_id: int, generation: int, ceiling: int):
        self.shard_id = shard_id
        self.generation = generation
        self._ceiling = ceiling

    def max_known_id(self) -> int:
        return self._ceiling

    def estimate_many(self, queries):
        value = float(self.generation) * (1000.0 ** self.shard_id)
        return np.full(len(queries), value, dtype=np.float64)


def _decode(total: float) -> tuple[int, ...]:
    digits = []
    remaining = int(round(total))
    for _ in range(NUM_SHARDS):
        digits.append(remaining % 1000)
        remaining //= 1000
    return tuple(digits)


class TestTornRouterNeverObserved:
    def test_readers_see_only_published_generation_vectors(self):
        collection = _collection()
        plan = ShardPlan.contiguous(collection, NUM_SHARDS)
        ceiling = collection.max_element_id()
        router = ShardedCardinalityEstimator(
            plan,
            [_StubPart(sid, 1, ceiling) for sid in range(NUM_SHARDS)],
        )
        exact = InvertedIndex(collection)
        server = SetServer(router, exact=exact, cache_size=0).start()

        published: set[tuple[int, ...]] = {(1,) * NUM_SHARDS}
        publish_lock = threading.Lock()
        stop = threading.Event()
        violations: list[tuple[int, ...]] = []

        def read() -> None:
            query = (1, 15, 25)  # reaches every shard (ceiling is global)
            while not stop.is_set():
                structure = server.structure
                vector = _decode(float(structure.estimate_many([query])[0]))
                with publish_lock:
                    known = vector in published
                if not known:
                    violations.append(vector)
                    return

        readers = [threading.Thread(target=read) for _ in range(READERS)]
        for thread in readers:
            thread.start()
        try:
            generations = [1] * NUM_SHARDS
            for step in range(SWAPS):
                # Replace two shards at once: a torn parts list would
                # expose a half-applied vector that is never published.
                targets = [step % NUM_SHARDS, (step + 1) % NUM_SHARDS]
                for sid in set(targets):
                    generations[sid] += 1
                replacements = {
                    sid: _StubPart(sid, generations[sid], ceiling)
                    for sid in set(targets)
                }
                old = server.structure
                new_router = old.with_parts(replacements)
                with publish_lock:
                    published.add(tuple(generations))
                server.swap(new_router)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
            server.close()

        assert not violations, (
            f"seed={SEED}: readers observed torn generation vectors "
            f"{violations}; published={sorted(published)}"
        )


class TestWithPartsContract:
    def test_untouched_parts_are_the_same_objects(self):
        collection = _collection()
        plan = ShardPlan.contiguous(collection, NUM_SHARDS)
        ceiling = collection.max_element_id()
        parts = [_StubPart(sid, 1, ceiling) for sid in range(NUM_SHARDS)]
        router = ShardedCardinalityEstimator(plan, parts)
        router.record_update((1, 2), 5)

        fresh = _StubPart(1, 2, ceiling)
        clone = router.with_parts({1: fresh})

        assert type(clone) is ShardedCardinalityEstimator
        assert clone.parts[0] is parts[0], (
            f"seed={SEED}: untouched shard 0 must be the same object"
        )
        assert clone.parts[2] is parts[2], (
            f"seed={SEED}: untouched shard 2 must be the same object"
        )
        assert clone.parts[1] is fresh
        # The mutation layer carries over by value; later writes diverge.
        assert clone.auxiliary == {(1, 2): 5}
        router.record_update((3,), 7)
        assert (3,) not in clone.auxiliary

    def test_index_router_roundtrip_and_auxiliary(self):
        collection = _collection()
        plan = ShardPlan.contiguous(collection, NUM_SHARDS)

        class _StubIndexPart:
            def __init__(self, ceiling):
                self._ceiling = ceiling

            def max_known_id(self):
                return self._ceiling

            def lookup_many(self, queries):
                return [0 for _ in queries]

        ceiling = collection.max_element_id()
        parts = [_StubIndexPart(ceiling) for _ in range(NUM_SHARDS)]
        router = ShardedSetIndex(plan, parts)
        router.insert_update((5, 6), 11)
        clone = router.with_parts({0: _StubIndexPart(ceiling)})
        assert clone.auxiliary == {(5, 6): 11}
        assert clone.parts[1] is parts[1] and clone.parts[2] is parts[2]
        # Overrides answer before any fan-out, on both generations.
        assert clone.lookup((5, 6)) == 11

    def test_bloom_router_shares_insert_filter(self):
        collection = _collection()
        plan = ShardPlan.contiguous(collection, NUM_SHARDS)

        class _StubBloomPart:
            def __init__(self, ceiling):
                self._ceiling = ceiling

            def max_known_id(self):
                return self._ceiling

            def contains_many(self, queries):
                return np.zeros(len(queries), dtype=bool)

        ceiling = collection.max_element_id()
        parts = [_StubBloomPart(ceiling) for _ in range(NUM_SHARDS)]
        router = ShardedBloomFilter(plan, parts)
        router.insert((7, 8))
        clone = router.with_parts({2: _StubBloomPart(ceiling)})
        # Inserts are monotone, so the filter is *shared*, not copied:
        # an insert racing the swap is visible to both generations.
        assert clone._inserted is router._inserted
        assert clone.contains((7, 8)), (
            f"seed={SEED}: inserted subset must stay contained across "
            "a targeted swap"
        )
        router.insert((9,))
        assert clone.contains((9,))

    def test_out_of_range_shard_id_rejected(self):
        collection = _collection()
        plan = ShardPlan.contiguous(collection, NUM_SHARDS)
        ceiling = collection.max_element_id()
        router = ShardedCardinalityEstimator(
            plan, [_StubPart(sid, 1, ceiling) for sid in range(NUM_SHARDS)]
        )
        try:
            router.with_parts({NUM_SHARDS: _StubPart(0, 1, ceiling)})
        except IndexError:
            pass
        else:
            raise AssertionError(
                f"seed={SEED}: with_parts must reject shard id {NUM_SHARDS}"
            )
