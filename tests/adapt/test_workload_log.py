"""Property tests for the workload log's core guarantees.

Three invariants the adaptive loop leans on:

* bounded memory — eviction under sustained skew keeps exactly the
  highest-frequency keys (refresh training must see the hot set);
* exact conservation under concurrency — eight writer threads never lose
  a ``+= 1`` (frequencies are the sample weights; a torn count silently
  mis-weights training), mirroring ``tests/serve/test_stats_race.py``;
* per-predicate keying — the same canonical query under different
  predicate specs is always distinct entries (the serving cache's keying,
  and required for correct labels: a subset count is not a Jaccard count).
"""

from __future__ import annotations

import math
import os
import threading

from repro.adapt import WorkloadLog

SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))

THREADS = 8
OPS_PER_THREAD = 5_000


class TestBoundedEviction:
    def test_sustained_skew_keeps_the_hot_set(self):
        # A hot set of exactly `capacity` keys (count >= 2 each), then a
        # long stream of one-shot cold keys.  Every cold insert pushes
        # the log over capacity and evict-min must throw out a count-1
        # key — the cold one — never a hot key.
        capacity, cold = 16, 200
        log = WorkloadLog(capacity=capacity)
        for i in range(capacity):
            for _ in range(2 + i % 3):
                log.record("subset", (i,))
        for j in range(cold):
            log.record("subset", (1000 + j,))
        survivors = {entry.canonical for entry in log.entries()}
        expected = {(i,) for i in range(capacity)}
        assert survivors == expected, (
            f"seed={SEED}: eviction must keep the {capacity} hottest keys; "
            f"kept {sorted(survivors)}"
        )
        assert len(log) == capacity, f"seed={SEED}: capacity bound violated"
        assert log.evictions == cold, (
            f"seed={SEED}: expected {cold} evictions, got {log.evictions}"
        )
        counts = {e.canonical: e.count for e in log.entries()}
        assert counts == {(i,): 2 + i % 3 for i in range(capacity)}, (
            f"seed={SEED}: surviving counts must be exact"
        )

    def test_count_tie_evicts_oldest(self):
        log = WorkloadLog(capacity=2)
        log.record("subset", (1,))
        log.record("subset", (2,))
        log.record("subset", (3,))
        assert {e.canonical for e in log.entries()} == {(2,), (3,)}, (
            f"seed={SEED}: equal counts must evict the oldest key"
        )

    def test_top_orders_by_frequency_then_recency(self):
        log = WorkloadLog(capacity=8)
        for _ in range(3):
            log.record("subset", (1, 2))
        log.record("subset", (9,))
        log.record("subset", (5,))
        top = log.top()
        assert [e.canonical for e in top[:1]] == [(1, 2)]
        # (5,) was seen after (9,) — recency breaks the count tie.
        assert [e.canonical for e in top[1:]] == [(5,), (9,)]

    def test_observe_recreates_evicted_key(self):
        log = WorkloadLog(capacity=2)
        log.record("subset", (1,))
        log.record("subset", (2,))
        log.record("subset", (3,))  # evicts one
        log.observe("subset", (4,), 2.5)
        entry = {e.canonical: e for e in log.entries()}[(4,)]
        assert entry.q_error_count == 1 and entry.mean_q_error == 2.5
        assert len(log) == 2

    def test_non_finite_observations_dropped(self):
        log = WorkloadLog(capacity=4)
        log.record("subset", (1,))
        log.observe("subset", (1,), math.nan)
        log.observe("subset", (1,), math.inf)
        assert math.isnan(log.mean_observed_q_error())


class TestConcurrentConservation:
    def test_counts_conserve_under_8_writers(self):
        # Capacity exceeds the distinct-key count, so eviction never
        # interferes; every recorded bump must be present afterwards.
        distinct = 64
        log = WorkloadLog(capacity=2 * THREADS * distinct)
        observed_total = [0] * THREADS

        def write(tid: int) -> None:
            for i in range(OPS_PER_THREAD):
                due = log.record("subset", (tid, i % distinct))
                if due:
                    observed_total[tid] += 1
                if i % 7 == 0:
                    log.observe("subset", (tid, i % distinct), 1.5)

        workers = [
            threading.Thread(target=write, args=(tid,))
            for tid in range(THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        total = THREADS * OPS_PER_THREAD
        assert log.total_records == total, (
            f"seed={SEED}: lifetime record count must be exact"
        )
        counts = sum(entry.count for entry in log.entries())
        assert counts == total, (
            f"seed={SEED}: per-key counts must sum to {total}, got {counts}"
        )
        observations = sum(e.q_error_count for e in log.entries())
        assert observations == THREADS * ((OPS_PER_THREAD + 6) // 7), (
            f"seed={SEED}: q-error observations must conserve"
        )
        assert log.evictions == 0, f"seed={SEED}: no eviction expected"
        assert log.mean_observed_q_error() == 1.5

    def test_observe_every_fires_exactly_in_serial(self):
        log = WorkloadLog(capacity=128, observe_every=4)
        fired = sum(log.record("subset", (i,)) for i in range(100))
        assert fired == 25


class TestPerPredicateKeys:
    def test_same_canonical_under_specs_never_collides(self):
        log = WorkloadLog(capacity=32)
        specs = ["subset", "superset", "overlap>=2", "jaccard>=0.5"]
        for spec in specs:
            for _ in range(3):
                log.record(spec, (3, 1, 4))
        entries = {(e.spec, e.canonical): e.count for e in log.entries()}
        assert len(entries) == len(specs), (
            f"seed={SEED}: each spec must key its own entry, got {entries}"
        )
        assert all(count == 3 for count in entries.values())
        # Observations are spec-scoped too.
        log.observe("subset", (3, 1, 4), 9.0)
        by_key = {(e.spec, e.canonical): e for e in log.entries()}
        assert by_key[("subset", (1, 3, 4))].q_error_count == 1
        assert by_key[("superset", (1, 3, 4))].q_error_count == 0

    def test_canonicalization_dedupes_and_sorts(self):
        log = WorkloadLog(capacity=8)
        log.record("subset", (4, 1, 3))
        log.record("subset", (3, 3, 1, 4, 4))
        log.record("subset", [1, 4, 3])
        entries = log.entries()
        assert len(entries) == 1
        assert entries[0].canonical == (1, 3, 4)
        assert entries[0].count == 3
