"""Engine ↔ serving integration: `udf:` plans backed by a SetServer."""

from __future__ import annotations

import pytest

from repro.engine import ServedUdf, SetQueryEngine, SetTable
from repro.serve import SetServer
from repro.sets import SetCollection

from ..serve.conftest import QUERIES, SETS, train_estimator


@pytest.fixture(scope="module")
def collection() -> SetCollection:
    return SetCollection(SETS)


@pytest.fixture(scope="module")
def estimator(collection):
    return train_estimator(collection)


@pytest.fixture
def engine(collection) -> SetQueryEngine:
    return SetQueryEngine(SetTable.from_collection(collection))


class TestServedUdf:
    def test_rejects_non_server(self):
        with pytest.raises(TypeError):
            ServedUdf(object())

    def test_register_server_requires_cardinality_kind(self, engine):
        class FakeIndexServer:
            kind = "index"

        with pytest.raises(ValueError):
            engine.register_server("idx", FakeIndexServer())

    def test_count_routes_through_server(self, engine, estimator):
        with SetServer(estimator) as server:
            engine.register_server("clsm", server)
            result = engine.count((0, 1), plan="udf:clsm")
        assert result.plan == "udf:clsm"
        assert not result.is_exact
        assert result.count == pytest.approx(estimator.estimate((0, 1)), rel=1e-7)
        assert server.stats.requests_served == 1

    def test_count_many_batches_through_server(self, engine, estimator):
        with SetServer(estimator, cache_size=0) as server:
            engine.register_server("clsm", server)
            results = engine.count_many(QUERIES, plan="udf:clsm")
        assert len(results) == len(QUERIES)
        for result, query in zip(results, QUERIES):
            assert result.plan == "udf:clsm"
            assert result.count == pytest.approx(
                estimator.estimate(query), rel=1e-7
            )
        stats = server.stats
        assert stats.requests_served == len(QUERIES)
        # count_many submits the whole workload before gathering, so the
        # micro-batcher gets to coalesce it into vectorized calls.
        assert stats.batches_dispatched < stats.batched_requests

    def test_count_many_exact_plans_match_scalar_path(self, engine):
        queries = [(0, 1), (1, 2), (2, 3)]
        batched = engine.count_many(queries, plan="seqscan")
        for result, query in zip(batched, queries):
            assert result.count == engine.count(query, plan="seqscan").count
            assert result.is_exact

    def test_count_many_plain_udf_falls_back_to_loop(self, engine):
        engine.register_udf("fixed", lambda canonical: float(len(canonical)))
        results = engine.count_many([(0, 1), (3,)], plan="udf:fixed")
        assert [r.count for r in results] == [2.0, 1.0]

    def test_count_many_rejects_empty_query(self, engine, estimator):
        with SetServer(estimator) as server:
            engine.register_server("clsm", server)
            with pytest.raises(ValueError):
                engine.count_many([(0, 1), ()], plan="udf:clsm")

    def test_unknown_udf_plan_raises(self, engine):
        with pytest.raises(KeyError):
            engine.count((0,), plan="udf:ghost")
