"""Tests for the COUNT-query engine: plans, correctness, UDF integration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import SetQueryEngine, SetTable
from repro.sets import SetCollection, Vocabulary


@pytest.fixture
def engine() -> SetQueryEngine:
    collection = SetCollection([[1, 2, 3], [2, 3], [1, 4], [2, 3, 4], [1, 2, 3]])
    return SetQueryEngine(SetTable.from_collection(collection))


class TestSeqScan:
    def test_counts_exactly(self, engine):
        result = engine.count((2, 3), plan="seqscan")
        assert result.count == 4
        assert result.plan == "seqscan"
        assert result.rows_examined == 5
        assert result.is_exact

    def test_absent_query(self, engine):
        assert engine.count((1, 2, 3, 4), plan="seqscan").count == 0

    def test_empty_query_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.count(())


class TestGinPlan:
    def test_requires_index(self, engine):
        with pytest.raises(RuntimeError):
            engine.count((1,), plan="gin")

    def test_matches_seqscan(self, engine):
        engine.create_gin_index()
        for query in [(1,), (2, 3), (1, 2, 3), (4,), (2, 4)]:
            assert (
                engine.count(query, plan="gin").count
                == engine.count(query, plan="seqscan").count
            )

    def test_examines_no_rows(self, engine):
        engine.create_gin_index()
        assert engine.count((2, 3), plan="gin").rows_examined == 0

    def test_index_size_and_build_time(self, engine):
        index = engine.create_gin_index()
        assert index.size_bytes() > 0
        assert index.build_seconds >= 0

    def test_drop_index(self, engine):
        engine.create_gin_index()
        engine.drop_gin_index()
        assert engine.explain() == "seqscan"


class TestPlanner:
    def test_default_prefers_gin(self, engine):
        assert engine.explain() == "seqscan"
        engine.create_gin_index()
        assert engine.explain() == "gin"

    def test_unknown_plan_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.explain("bitmap")

    def test_udf_plan_requires_registration(self, engine):
        with pytest.raises(KeyError):
            engine.explain("udf:clsm")


class TestUdfPlan:
    def test_udf_routes_to_function(self, engine):
        engine.register_udf("fortytwo", lambda q: 42.0)
        result = engine.count((1,), plan="udf:fortytwo")
        assert result.count == 42.0
        assert result.plan == "udf:fortytwo"
        assert not result.is_exact

    def test_udf_receives_canonical_query(self, engine):
        seen = []
        engine.register_udf("probe", lambda q: seen.append(q) or 0.0)
        engine.count((3, 1, 3), plan="udf:probe")
        assert seen == [(1, 3)]

    def test_learned_estimator_as_udf(self, engine):
        """The Table 12 wiring: a learned estimator behind the UDF plan."""
        from repro.core import (
            LearnedCardinalityEstimator,
            ModelConfig,
            TrainConfig,
        )

        collection = engine.table.to_collection()
        estimator = LearnedCardinalityEstimator.build(
            collection,
            model_config=ModelConfig(kind="clsm", embedding_dim=2, seed=0),
            train_config=TrainConfig(epochs=3, seed=0),
        )
        engine.register_udf("clsm", estimator.estimate)
        result = engine.count((2, 3), plan="udf:clsm")
        assert result.count >= 1.0

    def test_registry_management(self, engine):
        engine.register_udf("f", lambda q: 1.0)
        assert "f" in engine.udfs
        assert engine.udfs.names() == ["f"]
        engine.udfs.unregister("f")
        assert "f" not in engine.udfs

    def test_non_callable_rejected(self, engine):
        with pytest.raises(TypeError):
            engine.register_udf("bad", 7)


class TestCountTokens:
    @pytest.fixture
    def vocab(self):
        vocabulary = Vocabulary()
        for element_id in range(5):  # "t0".."t4" line up with ids 0..4
            vocabulary.add(f"t{element_id}")
        return vocabulary

    def test_known_tokens_match_id_query(self, engine, vocab):
        result = engine.count_tokens(["t2", "t3"], vocab, plan="seqscan")
        assert result.count == engine.count((2, 3), plan="seqscan").count
        assert result.is_exact

    def test_unknown_token_is_defined_miss(self, engine, vocab):
        result = engine.count_tokens(["t2", "#neverseen"], vocab)
        assert result.count == 0.0
        assert result.rows_examined == 0
        assert result.plan in ("seqscan", "gin")

    def test_all_unknown_tokens_miss(self, engine, vocab):
        assert engine.count_tokens(["x", "y"], vocab).count == 0.0

    def test_strict_encode_would_raise(self, engine, vocab):
        """The lenient path is load-bearing: strict encoding raises KeyError."""
        with pytest.raises(KeyError):
            engine.count(vocab.encode(["t2", "#neverseen"]))

    def test_empty_token_list_keeps_engine_contract(self, engine, vocab):
        with pytest.raises(ValueError):
            engine.count_tokens([], vocab)


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.sets(st.integers(0, 20), min_size=1, max_size=5).map(tuple),
        min_size=1,
        max_size=25,
    ),
    query=st.sets(st.integers(0, 20), min_size=1, max_size=3).map(tuple),
)
def test_property_gin_equals_seqscan(data, query):
    engine = SetQueryEngine(SetTable.from_collection(SetCollection(data)))
    engine.create_gin_index()
    assert (
        engine.count(query, plan="gin").count
        == engine.count(query, plan="seqscan").count
    )
