"""Regression tests for the three engine-layer bugfixes (ISSUE 9).

Each test pins one latent bug found while wiring the predicate family
through :class:`SetQueryEngine`; each demonstrably fails when its fix is
reverted:

1. **miss-path plan validation** — ``count_tokens`` used to resolve the
   plan (``self.explain(plan)``) even when an unknown token already
   determined the answer was 0, so a *defined* miss raised
   ``RuntimeError`` (``plan="gin"`` with no index) or ``KeyError`` (an
   unregistered ``udf:`` plan);
2. **torn plan resolution mid-batch** — ``count_many`` re-resolved the
   plan inside each per-query call, so ``drop_gin_index()`` from another
   thread mid-batch tore the batch into half-answers, half
   ``RuntimeError``;
3. **per-call posting-list materialization** — ``GinIndex.size_bytes()``
   rebuilt and re-pickled every posting list on each call instead of
   caching the (immutable) footprint.
"""

from __future__ import annotations

import threading

import pytest

import repro.engine.gin as gin_module
from repro.engine import GinIndex, SetQueryEngine, SetTable
from repro.sets import SetCollection, Vocabulary


@pytest.fixture
def collection() -> SetCollection:
    return SetCollection([[1, 2, 3], [2, 3], [1, 4], [2, 3, 4], [1, 2, 3]])


@pytest.fixture
def engine(collection) -> SetQueryEngine:
    return SetQueryEngine(SetTable.from_collection(collection))


@pytest.fixture
def vocab() -> Vocabulary:
    vocab = Vocabulary()
    for token in ("a", "b", "c", "d"):
        vocab.add(token)
    return vocab


class TestCountTokensMissPath:
    """Bugfix 1: a defined miss must not touch the plan's executor."""

    def test_miss_does_not_raise_under_ginless_gin_plan(self, engine, vocab):
        # Pre-fix: explain("gin") raised RuntimeError despite the miss.
        result = engine.count_tokens(["unseen-token"], vocab, plan="gin")
        assert result.count == 0.0
        assert result.plan == "gin"
        assert result.rows_examined == 0

    def test_miss_does_not_raise_under_unregistered_udf_plan(self, engine, vocab):
        # Pre-fix: explain("udf:nope") raised KeyError despite the miss.
        result = engine.count_tokens(["unseen-token"], vocab, plan="udf:nope")
        assert result.count == 0.0
        assert result.plan == "udf:nope"

    def test_known_tokens_still_validate_the_plan(self, engine, vocab):
        # The fix must not weaken validation on the executing path.
        with pytest.raises(RuntimeError):
            engine.count_tokens(["a"], vocab, plan="gin")
        with pytest.raises(KeyError):
            engine.count_tokens(["a"], vocab, plan="udf:nope")

    def test_mixed_known_unknown_is_still_a_subset_miss(self, engine, vocab):
        result = engine.count_tokens(["a", "unseen-token"], vocab, plan="gin")
        assert result.count == 0.0

    def test_all_unknown_is_a_miss_under_every_predicate(self, engine, vocab):
        for spec in ("subset", "superset", "overlap>=1", "jaccard>=0.5"):
            result = engine.count_tokens(
                ["unseen-token"], vocab, plan="gin", predicate=spec
            )
            assert result.count == 0.0, spec


class TestCountManyResolvesOnce:
    """Bugfix 2: one resolution, one executor, for the whole batch."""

    def test_drop_mid_batch_does_not_tear_the_batch(self, engine):
        """Deterministic interleaving: the index vanishes after query #1.

        Pre-fix, ``count_many`` re-ran ``self.count(canonical,
        plan="gin")`` per query, which re-validated ``self.gin`` and
        raised ``RuntimeError`` for every query after the drop.
        """
        index = engine.create_gin_index()
        queries = [(1,), (2, 3), (2,), (1, 2, 3), (4,)]
        expected = [engine.count(q, plan="seqscan").count for q in queries]
        original = GinIndex.count_matching
        calls = {"n": 0}

        def dropping_count(self, query, predicate=None):
            calls["n"] += 1
            if calls["n"] == 1:
                engine.drop_gin_index()
            return original(self, query, predicate)

        try:
            GinIndex.count_matching = dropping_count
            results = engine.count_many(queries, plan="gin")
        finally:
            GinIndex.count_matching = original
        assert engine.gin is None  # the drop really happened mid-batch
        assert [r.count for r in results] == expected
        assert all(r.plan == "gin" for r in results)
        assert calls["n"] == len(queries)
        assert index.count_contains((2, 3)) == 4  # captured executor survived

    def test_concurrent_drop_thread_cannot_tear_the_batch(self, engine):
        """A real cross-thread ``drop_gin_index`` mid-batch."""
        engine.create_gin_index()
        queries = [(1,), (2, 3), (2,), (1, 2, 3), (4,), (2, 4)]
        expected = [engine.count(q, plan="seqscan").count for q in queries]
        original = GinIndex.count_matching
        dropped = threading.Event()

        def dropping_count(self, query, predicate=None):
            if not dropped.is_set():
                dropper = threading.Thread(target=engine.drop_gin_index)
                dropper.start()
                dropper.join()
                dropped.set()
            return original(self, query, predicate)

        try:
            GinIndex.count_matching = dropping_count
            results = engine.count_many(queries)  # planner picked gin
        finally:
            GinIndex.count_matching = original
        assert dropped.is_set()
        assert [r.count for r in results] == expected
        assert all(r.plan == "gin" for r in results)

    def test_single_count_also_executes_the_captured_index(self, engine):
        """``count`` captures its executor at resolution time too."""
        engine.create_gin_index()
        original = GinIndex.count_matching

        def dropping_count(self, query, predicate=None):
            engine.drop_gin_index()
            return original(self, query, predicate)

        try:
            GinIndex.count_matching = dropping_count
            result = engine.count((2, 3))
        finally:
            GinIndex.count_matching = original
        assert result.count == 4.0
        assert result.plan == "gin"


class TestGinSizeBytesCache:
    """Bugfix 3: the footprint is computed once per index instance."""

    def test_repeated_calls_pickle_once(self, engine, monkeypatch):
        index = engine.create_gin_index()
        calls = {"n": 0}
        real = gin_module.pickled_size_bytes

        def counting(payload):
            calls["n"] += 1
            return real(payload)

        monkeypatch.setattr(gin_module, "pickled_size_bytes", counting)
        first = index.size_bytes()
        second = index.size_bytes()
        third = index.size_bytes()
        assert first == second == third
        assert calls["n"] == 1  # pre-fix: one full re-pickle per call

    def test_cached_footprint_equals_a_fresh_computation(self, engine):
        """The Table-12 memory bench output must be byte-identical."""
        index = engine.create_gin_index()
        cached = index.size_bytes()
        fresh = gin_module.pickled_size_bytes(
            {e: index._inverted.posting(e) for e in index._inverted.elements()}
        )
        assert cached == fresh > 0

    def test_rebuild_invalidates_the_cache(self, engine):
        """``create_gin_index`` rebuilds; the new instance recomputes."""
        first = engine.create_gin_index()
        size_before = first.size_bytes()
        rebuilt = engine.create_gin_index()
        assert rebuilt is not first
        assert rebuilt._size_bytes is None  # nothing stale carried over
        assert rebuilt.size_bytes() == size_before
