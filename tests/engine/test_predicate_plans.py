"""Plan parity across the predicate family (ISSUE 9 tentpole, engine layer).

Every executing plan — seqscan, GIN posting lists, and the UDF routing
layer — must agree with a brute-force evaluation of
:meth:`Predicate.matches` over the stored rows, for every predicate in
``DEFAULT_PREDICATES`` plus extra thresholds.  Queries are drawn from a
seeded workload (``REPRO_TEST_SEED`` rotates in CI); failures echo the
seed so a red run reproduces from its message alone.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.engine import SetQueryEngine, SetTable
from repro.sets import SetCollection
from repro.sets.predicates import DEFAULT_PREDICATES, Predicate

SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))

PREDICATES = DEFAULT_PREDICATES + (
    Predicate.overlap(1),
    Predicate.overlap(3),
    Predicate.jaccard(0.3),
    Predicate.jaccard(1.0),
)


def seed_note(context: str = "") -> str:
    note = f"REPRO_TEST_SEED={SEED}"
    return f"{note} {context}".strip()


@pytest.fixture(scope="module")
def collection() -> SetCollection:
    rng = random.Random(SEED * 7919 + 17)
    sets = [
        sorted(rng.sample(range(30), rng.randint(1, 8))) for _ in range(60)
    ]
    return SetCollection(sets)


@pytest.fixture(scope="module")
def engine(collection) -> SetQueryEngine:
    engine = SetQueryEngine(SetTable.from_collection(collection))
    engine.create_gin_index()
    return engine


@pytest.fixture(scope="module")
def workload(collection) -> list[tuple[int, ...]]:
    rng = random.Random(SEED * 104729 + 3)
    queries = []
    stored = list(collection)
    for _ in range(40):
        base = list(rng.choice(stored))
        if rng.random() < 0.5 and len(base) > 1:
            base = rng.sample(base, rng.randint(1, len(base) - 1))
        if rng.random() < 0.3:
            base.append(rng.randint(0, 40))  # may be out-of-vocabulary
        queries.append(tuple(sorted(set(base))))
    return queries


def brute_force(collection, query, predicate) -> int:
    return sum(predicate.matches(query, stored) for stored in collection)


@pytest.mark.parametrize("predicate", PREDICATES, ids=lambda p: p.spec)
class TestPlanParity:
    def test_seqscan_matches_brute_force(
        self, engine, collection, workload, predicate
    ):
        for query in workload:
            expected = brute_force(collection, query, predicate)
            result = engine.count(query, plan="seqscan", predicate=predicate)
            assert result.count == expected, seed_note(
                f"predicate={predicate.spec} query={query}"
            )
            assert result.plan == "seqscan"
            assert result.rows_examined == len(collection)

    def test_gin_matches_brute_force(
        self, engine, collection, workload, predicate
    ):
        for query in workload:
            expected = brute_force(collection, query, predicate)
            result = engine.count(query, plan="gin", predicate=predicate)
            assert result.count == expected, seed_note(
                f"predicate={predicate.spec} query={query}"
            )
            assert result.plan == "gin"

    def test_gin_matching_rows_are_exactly_the_matching_rows(
        self, engine, collection, workload, predicate
    ):
        table = engine.table
        for query in workload:
            rows = engine.gin.matching_rows(query, predicate)
            expected = [
                row_id
                for row_id, stored in table.scan()
                if predicate.matches(query, stored)
            ]
            assert sorted(int(r) for r in rows) == expected, seed_note(
                f"predicate={predicate.spec} query={query}"
            )

    def test_count_many_matches_per_query_counts(
        self, engine, workload, predicate
    ):
        batch = engine.count_many(workload, plan="gin", predicate=predicate)
        singles = [
            engine.count(q, plan="seqscan", predicate=predicate).count
            for q in workload
        ]
        assert [r.count for r in batch] == singles, seed_note(predicate.spec)

    def test_spec_string_and_predicate_object_agree(
        self, engine, workload, predicate
    ):
        query = workload[0]
        via_object = engine.count(query, plan="gin", predicate=predicate)
        via_spec = engine.count(query, plan="gin", predicate=predicate.spec)
        assert via_object.count == via_spec.count, seed_note(predicate.spec)


class TestUdfPredicateContract:
    """Plain UDFs stay subset-only; predicate-aware UDFs get the predicate."""

    def test_plain_udf_answers_subset_only(self, engine, collection):
        engine.register_udf("plain", lambda q: float(len(q)))
        try:
            query = tuple(collection[0][:2])
            assert engine.count(query, plan="udf:plain").count == len(query)
            for predicate in PREDICATES:
                if predicate.kind == "subset":
                    continue
                with pytest.raises(ValueError, match="supports_predicates"):
                    engine.count(query, plan="udf:plain", predicate=predicate)
                with pytest.raises(ValueError, match="supports_predicates"):
                    engine.count_many(
                        [query], plan="udf:plain", predicate=predicate
                    )
        finally:
            engine.udfs.unregister("plain")

    def test_predicate_aware_udf_receives_the_predicate(self, engine, collection):
        received = []

        def aware(query, predicate=None):
            received.append(predicate)
            return 1.0

        aware.supports_predicates = True
        engine.register_udf("aware", aware)
        try:
            query = tuple(collection[0][:2])
            for predicate in PREDICATES:
                engine.count(query, plan="udf:aware", predicate=predicate)
            assert [p.spec for p in received] == [p.spec for p in PREDICATES]
        finally:
            engine.udfs.unregister("aware")

    def test_batch_udf_without_support_rejects_before_invoking(self, engine):
        calls = []

        def batch(query):
            calls.append(query)
            return 0.0

        batch.many = lambda queries: [0.0] * len(queries)
        batch.supports_predicates = False
        engine.register_udf("batch", batch)
        try:
            with pytest.raises(ValueError):
                engine.count_many(
                    [(1,), (2,)], plan="udf:batch", predicate="superset"
                )
            assert calls == []  # rejected up front, nothing executed
        finally:
            engine.udfs.unregister("batch")
