"""Tests for the hstore-style set table."""

from __future__ import annotations

import pytest

from repro.engine import SetTable
from repro.sets import SetCollection


class TestSetTable:
    def test_insert_returns_row_ids(self):
        table = SetTable()
        assert table.insert([1, 2]) == 0
        assert table.insert([3]) == 1
        assert len(table) == 2

    def test_rows_canonicalized(self):
        table = SetTable()
        table.insert([3, 1, 3])
        assert table.row(0) == (1, 3)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            SetTable().insert([])

    def test_scan_order(self):
        table = SetTable()
        table.insert([1])
        table.insert([2])
        assert list(table.scan()) == [(0, (1,)), (1, (2,))]

    def test_from_collection_preserves_order(self):
        collection = SetCollection([[5, 6], [1], [5, 6]])
        table = SetTable.from_collection(collection)
        assert [row for _, row in table.scan()] == list(collection)

    def test_to_collection_roundtrip(self):
        collection = SetCollection([[5, 6], [1]])
        table = SetTable.from_collection(collection)
        assert list(table.to_collection()) == list(collection)

    def test_heap_bytes_positive(self):
        table = SetTable()
        table.insert([1, 2, 3])
        assert table.heap_bytes() > 0

    def test_max_element_id(self):
        table = SetTable()
        table.insert([7, 2])
        assert table.max_element_id() == 7
