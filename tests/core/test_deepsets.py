"""Tests for the DeepSets (LSM) model: invariance, shapes, learning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeepSetsModel
from repro.nn.data import SetBatch


@pytest.fixture
def model(rng) -> DeepSetsModel:
    return DeepSetsModel(
        vocab_size=50, embedding_dim=4, phi_hidden=(8,), rho_hidden=(8,), rng=rng
    )


class TestForward:
    def test_output_shape(self, model):
        batch = SetBatch.from_sets([[1, 2, 3], [4], [5, 6]])
        assert model(batch).shape == (3, 1)

    def test_sigmoid_output_range(self, model):
        batch = SetBatch.from_sets([[i] for i in range(50)])
        out = model(batch).data
        assert np.all((out > 0) & (out < 1))

    def test_variable_set_sizes_in_one_batch(self, model):
        batch = SetBatch.from_sets([[1], list(range(30))])
        assert model(batch).shape == (2, 1)

    @pytest.mark.parametrize("pooling", ["sum", "mean", "max"])
    def test_all_poolings_run(self, rng, pooling):
        model = DeepSetsModel(20, 4, (8,), (8,), pooling=pooling, rng=rng)
        batch = SetBatch.from_sets([[1, 2], [3]])
        assert model(batch).shape == (2, 1)

    def test_unknown_pooling_rejected(self, rng):
        with pytest.raises(ValueError):
            DeepSetsModel(10, 4, pooling="median", rng=rng)

    def test_empty_phi_pools_raw_embeddings(self, rng):
        model = DeepSetsModel(10, 4, phi_hidden=(), rho_hidden=(8,), rng=rng)
        batch = SetBatch.from_sets([[1, 2]])
        assert model(batch).shape == (1, 1)


class TestPermutationInvariance:
    """The defining property (paper §3.2)."""

    @settings(max_examples=30, deadline=None)
    @given(
        elements=st.sets(st.integers(0, 49), min_size=1, max_size=10),
        seed=st.integers(0, 100),
    )
    def test_property_invariant_under_permutation(self, elements, seed):
        model = DeepSetsModel(50, 4, (8,), (8,), rng=np.random.default_rng(0))
        ordered = list(elements)
        shuffled = list(np.random.default_rng(seed).permutation(ordered))
        out_a = model(SetBatch.from_sets([ordered])).data
        out_b = model(SetBatch.from_sets([shuffled])).data
        np.testing.assert_allclose(out_a, out_b, atol=1e-12)

    def test_batch_order_does_not_change_per_set_outputs(self, model):
        sets = [[1, 2], [3, 4, 5], [6]]
        out_forward = model(SetBatch.from_sets(sets)).data
        out_reversed = model(SetBatch.from_sets(sets[::-1])).data
        np.testing.assert_allclose(out_forward, out_reversed[::-1], atol=1e-12)

    def test_different_sets_give_different_outputs(self, model):
        out = model(SetBatch.from_sets([[1, 2], [3, 4]])).data
        assert abs(out[0, 0] - out[1, 0]) > 1e-9


class TestVariableSizeSupport:
    def test_same_multiset_different_sizes_distinct(self, model):
        out = model(SetBatch.from_sets([[1], [1, 2]])).data
        assert abs(out[0, 0] - out[1, 0]) > 1e-9


class TestPredictHelpers:
    def test_predict_matches_forward(self, model):
        sets = [[1, 2, 3], [4], [5, 6]]
        direct = model(SetBatch.from_sets(sets)).data.ravel()
        np.testing.assert_allclose(model.predict(sets), direct)

    def test_predict_batches_consistently(self, model):
        sets = [[i % 50, (i * 7) % 50] for i in range(100)]
        sets = [sorted(set(s)) for s in sets]
        np.testing.assert_allclose(
            model.predict(sets, batch_size=7), model.predict(sets, batch_size=100)
        )

    def test_predict_one_matches_predict(self, model):
        assert model.predict_one([3, 1]) == pytest.approx(
            float(model.predict([[1, 3]])[0])
        )

    def test_predict_restores_training_mode(self, model):
        model.train()
        model.predict([[1]])
        assert model.training

    def test_embedding_parameters(self, model):
        assert model.embedding_parameters() == 50 * 4


class TestLearning:
    def test_learns_simple_set_function(self, rng):
        """The model can learn 'does the set contain element 0'."""
        model = DeepSetsModel(20, 4, (16,), (16,), rng=rng)
        from repro.nn import Adam, binary_cross_entropy
        from repro.nn.data import RaggedArray

        sets, labels = [], []
        for _ in range(300):
            size = int(rng.integers(1, 5))
            s = list(rng.choice(20, size=size, replace=False))
            sets.append(sorted(set(s)))
            labels.append(1.0 if 0 in s else 0.0)
        labels = np.array(labels)[:, None]
        ragged = RaggedArray(sets)
        optimizer = Adam(model.parameters(), lr=0.01)
        batch = ragged.batch(np.arange(len(sets)))
        for _ in range(100):
            loss = binary_cross_entropy(model(batch), labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        accuracy = ((model.predict(sets) > 0.5) == labels.ravel()).mean()
        assert accuracy > 0.95
