"""Tests for the compressed DeepSets model, including the paper's
X-vs-Z counterexample showing why the phi fusion is mandatory."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompressedDeepSetsModel, ElementCompressor
from repro.nn.data import SetBatch


@pytest.fixture
def compressor() -> ElementCompressor:
    return ElementCompressor(max_value=99, ns=2)  # divisor 10


@pytest.fixture
def model(compressor, rng) -> CompressedDeepSetsModel:
    return CompressedDeepSetsModel(
        compressor, embedding_dim=4, phi_hidden=(16,), rho_hidden=(8,), rng=rng
    )


class TestForward:
    def test_output_shape(self, model):
        batch = SetBatch.from_sets([[1, 2, 3], [4]])
        assert model(batch).shape == (2, 1)

    def test_handles_max_element(self, model):
        batch = SetBatch.from_sets([[99]])
        assert model(batch).shape == (1, 1)

    def test_ns3(self, rng):
        compressor = ElementCompressor(max_value=999, ns=3)
        model = CompressedDeepSetsModel(compressor, 4, (8,), (8,), rng=rng)
        batch = SetBatch.from_sets([[0, 500, 999]])
        assert model(batch).shape == (1, 1)

    def test_fusion_required_when_enabled(self, compressor, rng):
        with pytest.raises(ValueError, match="phi_hidden"):
            CompressedDeepSetsModel(compressor, 4, phi_hidden=(), rng=rng)


class TestEmbeddingShrinkage:
    def test_embeddings_much_smaller_than_lsm(self, rng):
        """The whole point of Section 5: sub-embeddings are tiny."""
        from repro.core import DeepSetsModel

        max_id = 100_000
        lsm = DeepSetsModel(max_id + 1, 8, (8,), (8,), rng=rng)
        compressor = ElementCompressor(max_id, ns=2)
        clsm = CompressedDeepSetsModel(compressor, 8, (8,), (8,), rng=rng)
        assert clsm.embedding_parameters() < lsm.embedding_parameters() / 100

    def test_embedding_tables_match_vocab_sizes(self, model, compressor):
        sizes = [e.num_embeddings for e in model.embeddings]
        assert tuple(sizes) == compressor.vocab_sizes()


class TestPermutationInvariance:
    @settings(max_examples=30, deadline=None)
    @given(
        elements=st.sets(st.integers(0, 99), min_size=1, max_size=8),
        seed=st.integers(0, 100),
    )
    def test_property_invariant_under_permutation(self, elements, seed):
        compressor = ElementCompressor(99, ns=2)
        model = CompressedDeepSetsModel(
            compressor, 4, (8,), (8,), rng=np.random.default_rng(0)
        )
        ordered = list(elements)
        shuffled = list(np.random.default_rng(seed).permutation(ordered))
        out_a = model(SetBatch.from_sets([ordered])).data
        out_b = model(SetBatch.from_sets([shuffled])).data
        np.testing.assert_allclose(out_a, out_b, atol=1e-12)


class TestPhiFusionCounterexample:
    """Section 5's X-vs-Z argument.

    With divisor 10, elements 12 -> (2, 1) and 21 -> (1, 2), while
    11 -> (1, 1) and 22 -> (2, 2).  The sets X = {12, 21} and Z = {11, 22}
    have identical *pooled sub-element* statistics (quotients {1, 2},
    remainders {1, 2}), so a model WITHOUT the phi fusion cannot tell them
    apart.  With fusion the pairs are combined per element first and the
    sets are distinguishable.
    """

    X = [12, 21]
    Z = [11, 22]

    def test_without_fusion_sets_collide(self, compressor, rng):
        broken = CompressedDeepSetsModel(
            compressor,
            embedding_dim=4,
            phi_hidden=(),
            rho_hidden=(8,),
            fuse_subelements=False,
            rng=rng,
        )
        out_x = broken(SetBatch.from_sets([self.X])).data
        out_z = broken(SetBatch.from_sets([self.Z])).data
        np.testing.assert_allclose(out_x, out_z, atol=1e-12)

    def test_with_fusion_sets_differ(self, model):
        out_x = model(SetBatch.from_sets([self.X])).data
        out_z = model(SetBatch.from_sets([self.Z])).data
        assert abs(out_x[0, 0] - out_z[0, 0]) > 1e-9

    def test_fused_model_can_learn_to_separate_the_pair(self, compressor, rng):
        """Train the fused model to give X and Z different labels."""
        from repro.nn import Adam, binary_cross_entropy

        model = CompressedDeepSetsModel(
            compressor, 4, (16,), (8,), rng=rng
        )
        batch = SetBatch.from_sets([self.X, self.Z])
        labels = np.array([[1.0], [0.0]])
        optimizer = Adam(model.parameters(), lr=0.02)
        for _ in range(200):
            loss = binary_cross_entropy(model(batch), labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        out = model(batch).data
        assert out[0, 0] > 0.9
        assert out[1, 0] < 0.1


class TestPredict:
    def test_predict_matches_forward(self, model):
        sets = [[1, 2, 3], [99], [50, 60]]
        direct = model(SetBatch.from_sets(sets)).data.ravel()
        np.testing.assert_allclose(model.predict(sets), direct)

    def test_predict_one(self, model):
        assert model.predict_one([5, 7]) == pytest.approx(
            float(model.predict([[5, 7]])[0])
        )
