"""Tests for guided training with outlier removal and local error bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DeepSetsModel,
    LocalErrorBounds,
    LogMinMaxScaler,
    OutlierRemovalConfig,
    TrainConfig,
    guided_fit,
)


def make_regression_task(rng, n=150, vocab=30):
    sets = []
    targets = []
    for _ in range(n):
        size = int(rng.integers(1, 4))
        s = sorted(set(rng.choice(vocab, size=size, replace=False).tolist()))
        sets.append(s)
        targets.append(float(sum(s)))  # learnable additive target
    return sets, np.array(targets)


class TestOutlierRemovalConfig:
    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            OutlierRemovalConfig(percentile=0.0)
        with pytest.raises(ValueError):
            OutlierRemovalConfig(percentile=100.0)

    def test_error_kind_validation(self):
        with pytest.raises(ValueError):
            OutlierRemovalConfig(error_kind="rmse")

    def test_none_percentile_allowed(self):
        assert OutlierRemovalConfig(percentile=None).percentile is None


class TestGuidedFit:
    def run(self, rng, removal, epochs=8):
        sets, targets = make_regression_task(rng)
        scaler = LogMinMaxScaler().fit(targets)
        model = DeepSetsModel(30, 4, (8,), (8,), rng=rng)
        return guided_fit(
            model,
            sets,
            targets,
            scaler,
            TrainConfig(epochs=epochs, lr=5e-3, batch_size=64, seed=0),
            removal=removal,
            rng=np.random.default_rng(0),
        ), len(sets)

    def test_no_removal_keeps_everything(self, rng):
        result, n = self.run(rng, removal=None)
        assert result.num_outliers == 0
        assert result.history.active_samples[-1] == n

    def test_removal_evicts_roughly_the_percentile(self, rng):
        result, n = self.run(
            rng, removal=OutlierRemovalConfig(percentile=90.0, at_epochs=(4,))
        )
        assert 0 < result.num_outliers <= int(0.12 * n) + 1
        assert result.history.active_samples[-1] == n - result.num_outliers

    def test_multiple_removal_epochs_accumulate(self, rng):
        result, _ = self.run(
            rng, removal=OutlierRemovalConfig(percentile=80.0, at_epochs=(3, 6))
        )
        single, _ = self.run(
            rng, removal=OutlierRemovalConfig(percentile=80.0, at_epochs=(3,))
        )
        assert result.num_outliers > single.num_outliers

    def test_max_fraction_budget_respected(self, rng):
        result, n = self.run(
            rng,
            removal=OutlierRemovalConfig(
                percentile=50.0,
                at_epochs=(2, 3, 4, 5, 6, 7),
                max_fraction_removed=0.2,
            ),
        )
        assert result.num_outliers <= int(0.2 * n)

    def test_final_errors_cover_all_samples(self, rng):
        result, n = self.run(
            rng, removal=OutlierRemovalConfig(percentile=90.0, at_epochs=(4,))
        )
        assert len(result.final_errors_abs) == n
        assert len(result.final_predictions) == n
        assert np.all(result.final_errors_abs >= 0)

    def test_outlier_indices_sorted_unique(self, rng):
        result, _ = self.run(
            rng, removal=OutlierRemovalConfig(percentile=80.0, at_epochs=(3, 6))
        )
        outliers = result.outlier_indices
        assert np.all(np.diff(outliers) > 0)


class TestLocalErrorBounds:
    def test_bound_is_max_error_in_bucket(self):
        estimates = np.array([5.0, 7.0, 150.0])
        truths = np.array([6.0, 4.0, 100.0])
        bounds = LocalErrorBounds(estimates, truths, range_length=100, max_value=200)
        assert bounds.bound(5.0) == pytest.approx(3.0)  # bucket 0: errors 1, 3
        assert bounds.bound(150.0) == pytest.approx(50.0)

    def test_local_tighter_than_global(self):
        """The paper's motivating case: one bad prediction should not widen
        everyone's search window."""
        rng = np.random.default_rng(0)
        truths = rng.uniform(0, 1000, size=500)
        estimates = truths + rng.normal(0, 2.0, size=500)
        estimates[0] = truths[0] + 800.0  # one catastrophic outlier
        bounds = LocalErrorBounds(estimates, truths, range_length=50, max_value=2000)
        assert bounds.global_error >= 800.0
        assert bounds.mean_bound() < bounds.global_error / 10

    def test_bucket_boundaries(self):
        bounds = LocalErrorBounds(
            np.array([0.0, 99.0, 100.0]),
            np.array([10.0, 99.0, 130.0]),
            range_length=100,
            max_value=200,
        )
        assert bounds.bound(50.0) == pytest.approx(10.0)
        assert bounds.bound(100.0) == pytest.approx(30.0)

    def test_out_of_range_estimates_clip_to_edge_buckets(self):
        bounds = LocalErrorBounds(
            np.array([50.0]), np.array([55.0]), range_length=100, max_value=100
        )
        assert bounds.bound(-10.0) == pytest.approx(5.0)
        assert bounds.bound(1e9) >= 0.0

    def test_empty_bucket_has_zero_bound(self):
        bounds = LocalErrorBounds(
            np.array([10.0]), np.array([12.0]), range_length=10, max_value=100
        )
        assert bounds.bound(95.0) == 0.0

    def test_size_bytes_scales_with_range(self):
        estimates = np.arange(1000.0)
        coarse = LocalErrorBounds(estimates, estimates, range_length=100)
        fine = LocalErrorBounds(estimates, estimates, range_length=10)
        assert fine.size_bytes() > coarse.size_bytes()
        assert len(fine) > len(coarse)

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalErrorBounds(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            LocalErrorBounds(np.zeros(2), np.zeros(2), range_length=0)

    def test_truths_within_bounds_by_construction(self):
        """For every training sample, |est - truth| <= bound(est)."""
        rng = np.random.default_rng(1)
        truths = rng.uniform(0, 500, size=300)
        estimates = truths + rng.normal(0, 30, size=300)
        bounds = LocalErrorBounds(estimates, truths, range_length=25, max_value=600)
        for est, truth in zip(estimates, truths):
            assert abs(est - truth) <= bounds.bound(est) + 1e-9
