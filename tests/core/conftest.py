"""Shared fixtures for task-level tests: a small trained stack.

Training is the expensive part, so the collection and the three learned
structures are module-scoped and deliberately tiny.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    ModelConfig,
    OutlierRemovalConfig,
    TrainConfig,
)
from repro.sets import InvertedIndex, SetCollection


def _make_collection(seed: int = 7, n: int = 250, vocab: int = 80) -> SetCollection:
    """Zipf-ish toy collection: frequent elements co-occur, tail is sparse."""
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, vocab + 1) ** 1.2
    weights /= weights.sum()
    sets = []
    for _ in range(n):
        size = int(rng.integers(2, 6))
        sets.append(
            tuple(sorted(set(rng.choice(vocab, size=size, replace=False, p=weights))))
        )
    return SetCollection(sets)


@pytest.fixture(scope="module")
def small_collection() -> SetCollection:
    return _make_collection()


@pytest.fixture(scope="module")
def ground_truth(small_collection) -> InvertedIndex:
    return InvertedIndex(small_collection)


@pytest.fixture(scope="module")
def trained_estimator(small_collection) -> LearnedCardinalityEstimator:
    return LearnedCardinalityEstimator.build(
        small_collection,
        model_config=ModelConfig(kind="clsm", embedding_dim=4, seed=0),
        train_config=TrainConfig(epochs=12, batch_size=256, lr=3e-3, seed=0),
        removal=OutlierRemovalConfig(percentile=90.0, at_epochs=(6,)),
        max_subset_size=3,
    )


@pytest.fixture(scope="module")
def trained_index(small_collection) -> LearnedSetIndex:
    return LearnedSetIndex.build(
        small_collection,
        model_config=ModelConfig(kind="clsm", embedding_dim=4, seed=1),
        train_config=TrainConfig(epochs=12, batch_size=256, lr=3e-3, seed=1),
        removal=OutlierRemovalConfig(percentile=90.0, at_epochs=(6,)),
        max_subset_size=3,
        error_range_length=50,
    )


@pytest.fixture(scope="module")
def trained_filter(small_collection) -> LearnedBloomFilter:
    return LearnedBloomFilter.build(
        small_collection,
        model_config=ModelConfig(
            kind="clsm", embedding_dim=4, phi_hidden=(16,), rho_hidden=(16,), seed=2
        ),
        train_config=TrainConfig(epochs=15, batch_size=256, lr=5e-3, loss="bce", seed=2),
        max_subset_size=3,
        num_negative_samples=1500,
    )
