"""Tests for the sandwiched and partitioned learned Bloom filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    PartitionedLearnedBloomFilter,
    SandwichedLearnedBloomFilter,
)
from repro.sets import positive_membership_samples


@pytest.fixture(scope="module")
def trained_pieces(trained_filter, small_collection):
    """Reuse the module-scoped trained classifier and positive universe."""
    positives = positive_membership_samples(small_collection, max_subset_size=3)
    return trained_filter.model, positives


class TestSandwiched:
    def test_no_false_negatives(self, trained_pieces):
        model, positives = trained_pieces
        sandwiched = SandwichedLearnedBloomFilter(model, positives)
        for positive in positives[:500]:
            assert sandwiched.contains(positive)

    def test_initial_filter_rejects_clear_negatives(self, trained_pieces):
        """The front filter rejects sets it never indexed (modulo its fp)."""
        model, positives = trained_pieces
        sandwiched = SandwichedLearnedBloomFilter(
            model, positives, initial_fp_rate=0.001
        )
        universe = set(positives)
        rng = np.random.default_rng(0)
        rejected = 0
        probes = 0
        while probes < 200:
            candidate = tuple(sorted(rng.integers(0, 80, size=3).tolist()))
            if len(set(candidate)) < 3 or candidate in universe:
                continue
            probes += 1
            if not sandwiched.contains(candidate):
                rejected += 1
        assert rejected > 150  # most unindexed combos are filtered out

    def test_dunder_contains(self, trained_pieces):
        model, positives = trained_pieces
        sandwiched = SandwichedLearnedBloomFilter(model, positives)
        assert positives[0] in sandwiched

    def test_total_bytes_includes_both_filters(self, trained_pieces):
        model, positives = trained_pieces
        sandwiched = SandwichedLearnedBloomFilter(model, positives)
        from repro.nn.serialize import state_dict_bytes

        assert sandwiched.total_bytes() > state_dict_bytes(model)

    def test_validation(self, trained_pieces):
        model, positives = trained_pieces
        with pytest.raises(ValueError):
            SandwichedLearnedBloomFilter(model, [])
        with pytest.raises(ValueError):
            SandwichedLearnedBloomFilter(model, positives, threshold=1.0)


class TestPartitioned:
    def test_no_false_negatives(self, trained_pieces):
        model, positives = trained_pieces
        partitioned = PartitionedLearnedBloomFilter(model, positives)
        for positive in positives[:500]:
            assert partitioned.contains(positive)

    def test_segment_of(self, trained_pieces):
        model, positives = trained_pieces
        partitioned = PartitionedLearnedBloomFilter(
            model, positives, boundaries=(0.3, 0.7), fp_rates=(0.001, 0.01)
        )
        assert partitioned.segment_of(0.1) == 0
        assert partitioned.segment_of(0.5) == 1
        assert partitioned.segment_of(0.9) == 2

    def test_top_segment_accepted_without_filter(self, trained_pieces):
        model, positives = trained_pieces
        partitioned = PartitionedLearnedBloomFilter(model, positives)
        assert len(partitioned.filters) == 2  # one per non-top segment

    def test_explicit_top_filter(self, trained_pieces):
        model, positives = trained_pieces
        partitioned = PartitionedLearnedBloomFilter(
            model,
            positives,
            boundaries=(0.5,),
            fp_rates=(0.001, 0.05),
            accept_top_segment=False,
        )
        assert len(partitioned.filters) == 2
        for positive in positives[:300]:
            assert partitioned.contains(positive)

    def test_validation(self, trained_pieces):
        model, positives = trained_pieces
        with pytest.raises(ValueError):
            PartitionedLearnedBloomFilter(model, [])
        with pytest.raises(ValueError):
            PartitionedLearnedBloomFilter(
                model, positives, boundaries=(0.7, 0.3), fp_rates=(0.1, 0.1)
            )
        with pytest.raises(ValueError):
            PartitionedLearnedBloomFilter(
                model, positives, boundaries=(0.5,), fp_rates=(0.1, 0.1, 0.1)
            )
        with pytest.raises(ValueError):
            PartitionedLearnedBloomFilter(
                model, positives, boundaries=(0.0,), fp_rates=(0.1,)
            )

    def test_smaller_than_sandwiched_for_confident_models(self, trained_pieces):
        """Partitioning skips backup for high-score positives, so it is
        usually no larger than the sandwich at matched budgets."""
        model, positives = trained_pieces
        partitioned = PartitionedLearnedBloomFilter(model, positives)
        sandwiched = SandwichedLearnedBloomFilter(model, positives)
        assert partitioned.total_bytes() < sandwiched.total_bytes()
