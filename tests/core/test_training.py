"""Tests for the trainer and train config."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DeepSetsModel, TrainConfig, Trainer
from repro.nn.data import SetDataLoader


def make_task(rng, n=200, vocab=20):
    """Sets labelled by whether they contain element 0 (easy classification)."""
    sets, labels = [], []
    for _ in range(n):
        size = int(rng.integers(1, 5))
        s = sorted(set(rng.choice(vocab, size=size, replace=False).tolist()))
        sets.append(s)
        labels.append(1.0 if 0 in s else 0.0)
    return sets, np.array(labels)


class TestTrainConfig:
    def test_defaults(self):
        config = TrainConfig()
        assert config.epochs == 50
        assert config.loss == "q_error"

    def test_make_optimizer_variants(self):
        from repro.nn import SGD, Adam, RMSprop
        from repro.nn.module import Parameter

        params = [Parameter(np.zeros(2))]
        assert isinstance(TrainConfig(optimizer="adam").make_optimizer(params), Adam)
        assert isinstance(TrainConfig(optimizer="sgd").make_optimizer(params), SGD)
        assert isinstance(
            TrainConfig(optimizer="rmsprop").make_optimizer(params), RMSprop
        )

    def test_unknown_optimizer(self):
        from repro.nn.module import Parameter

        with pytest.raises(ValueError):
            TrainConfig(optimizer="adagrad").make_optimizer([Parameter(np.zeros(1))])


class TestTrainer:
    def test_loss_decreases(self, rng):
        sets, labels = make_task(rng)
        model = DeepSetsModel(20, 4, (16,), (16,), rng=rng)
        loader = SetDataLoader(sets, labels, batch_size=64, rng=rng)
        trainer = Trainer(model, TrainConfig(epochs=25, lr=0.01, loss="bce"))
        history = trainer.fit(loader)
        assert history.losses[-1] < history.losses[0] * 0.5

    def test_history_bookkeeping(self, rng):
        sets, labels = make_task(rng, n=50)
        model = DeepSetsModel(20, 2, (4,), (4,), rng=rng)
        loader = SetDataLoader(sets, labels, batch_size=32, rng=rng)
        history = Trainer(model, TrainConfig(epochs=3, loss="bce")).fit(loader)
        assert len(history.losses) == 3
        assert len(history.epoch_seconds) == 3
        assert history.active_samples == [50, 50, 50]
        assert history.final_loss == history.losses[-1]
        assert history.seconds_per_epoch > 0
        assert history.total_seconds >= history.seconds_per_epoch

    def test_model_left_in_eval_mode(self, rng):
        sets, labels = make_task(rng, n=30)
        model = DeepSetsModel(20, 2, (4,), (4,), rng=rng)
        loader = SetDataLoader(sets, labels, batch_size=32, rng=rng)
        Trainer(model, TrainConfig(epochs=1, loss="bce")).fit(loader)
        assert not model.training

    def test_epoch_end_callback_and_deactivation(self, rng):
        sets, labels = make_task(rng, n=40)
        model = DeepSetsModel(20, 2, (4,), (4,), rng=rng)
        loader = SetDataLoader(sets, labels, batch_size=32, rng=rng)
        calls = []

        def on_epoch(epoch, trainer):
            calls.append(epoch)
            if epoch == 1:
                loader.deactivate(np.arange(10))

        history = Trainer(model, TrainConfig(epochs=3, loss="bce")).fit(
            loader, epoch_end=on_epoch
        )
        assert calls == [1, 2, 3]
        # Epoch 1 saw all 40; later epochs saw 30.
        assert history.active_samples == [40, 30, 30]

    def test_early_stopping_halts_on_plateau(self, rng):
        sets, labels = make_task(rng, n=60)
        model = DeepSetsModel(20, 2, (4,), (4,), rng=rng)
        loader = SetDataLoader(sets, labels, batch_size=32, rng=rng)
        # An absurd min_delta makes every epoch after the first "stale":
        # training stops after 1 + patience epochs.
        history = Trainer(
            model,
            TrainConfig(epochs=50, loss="bce", patience=3, min_delta=1e9),
        ).fit(loader)
        assert history.stopped_early
        assert len(history.losses) == 4

    def test_no_early_stop_while_improving(self, rng):
        sets, labels = make_task(rng, n=200)
        model = DeepSetsModel(20, 4, (16,), (16,), rng=rng)
        loader = SetDataLoader(sets, labels, batch_size=64, rng=rng)
        history = Trainer(
            model,
            TrainConfig(epochs=8, lr=0.01, loss="bce", patience=5, min_delta=0.0),
        ).fit(loader)
        assert not history.stopped_early
        assert len(history.losses) == 8

    def test_gradient_clipping_bounds_update_norm(self, rng):
        sets, labels = make_task(rng, n=60)
        model = DeepSetsModel(20, 2, (4,), (4,), rng=rng)
        loader = SetDataLoader(sets, labels, batch_size=60, rng=rng)
        # SGD applies the clipped gradient directly (Adam would rescale it).
        trainer = Trainer(
            model,
            TrainConfig(
                epochs=1, loss="bce", optimizer="sgd", grad_clip_norm=1e-6, lr=1.0
            ),
        )
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        trainer.fit(loader)
        # With the norm clipped to ~0, a huge lr still barely moves weights.
        for name, parameter in model.named_parameters():
            np.testing.assert_allclose(parameter.data, before[name], atol=1e-4)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(patience=0)
        with pytest.raises(ValueError):
            TrainConfig(grad_clip_norm=0.0)

    def test_deterministic_given_seed(self):
        def run():
            rng = np.random.default_rng(5)
            sets, labels = make_task(rng, n=60)
            model = DeepSetsModel(20, 2, (4,), (4,), rng=np.random.default_rng(1))
            loader = SetDataLoader(
                sets, labels, batch_size=32, rng=np.random.default_rng(2)
            )
            return Trainer(model, TrainConfig(epochs=3, loss="bce")).fit(loader).losses

        assert run() == run()
