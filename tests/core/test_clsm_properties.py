"""Randomized property suite for CLSM compression (Algorithm 1).

Dependency-free property testing (no hypothesis): each test draws its
cases from a seeded generator and embeds the seed in every assertion
message, so a CI failure is reproducible locally with
``REPRO_TEST_SEED=<seed> pytest tests/core/test_clsm_properties.py``.
The CI ``maintenance-soak`` job rotates the seed per run.

Covered properties, per the paper's Section 5 / Algorithm 1:

* decompose/recompose identity for every sampled id, for every
  ``ns in {1, 2, 3, 4}`` and ``max_id in {1, 2, prime, 2**20}``;
* divisor-boundary ids (``sv_d - 1``, ``sv_d``, ``sv_d ** k``) where the
  carry between sub-elements changes shape;
* every sub-element stays inside its declared embedding vocabulary;
* the vectorized ``compress_array`` agrees with the scalar path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.compression import (
    ElementCompressor,
    compress_element,
    decompress_element,
    optimal_divisor,
)

SEED = int(os.environ.get("REPRO_TEST_SEED", "20260805"))

NS_VALUES = (1, 2, 3, 4)
# 104729 is the 10000th prime: a universe size sharing no factors with any
# small divisor; 2**20 exercises the large-universe carry chains.
MAX_IDS = (1, 2, 104729, 2**20)

SAMPLES_PER_CASE = 250


def _sample_ids(rng: np.random.Generator, max_id: int) -> list[int]:
    """Random ids plus the universe edges (0 and ``max_id`` always)."""
    sampled = rng.integers(0, max_id + 1, size=SAMPLES_PER_CASE)
    return sorted({0, max_id, *(int(e) for e in sampled)})


def _boundary_ids(divisor: int, ns: int, max_id: int) -> list[int]:
    """Ids hugging the divisor boundaries: ``sv_d - 1``, ``sv_d``,
    ``sv_d ** k`` and their neighbours, clipped to the universe."""
    candidates = {divisor - 1, divisor, divisor + 1}
    for k in range(1, ns + 2):
        power = divisor**k
        candidates.update({power - 1, power, power + 1})
    return sorted(c for c in candidates if 0 <= c <= max_id)


@pytest.mark.parametrize("max_id", MAX_IDS)
@pytest.mark.parametrize("ns", NS_VALUES)
def test_roundtrip_identity_sampled(ns: int, max_id: int):
    rng = np.random.default_rng(SEED + ns * 1_000_003 + max_id)
    compressor = ElementCompressor(max_id, ns=ns)
    vocab = compressor.vocab_sizes()
    for element in _sample_ids(rng, max_id):
        parts = compressor.compress(element)
        context = (
            f"seed={SEED} ns={ns} max_id={max_id} "
            f"divisor={compressor.divisor} element={element} parts={parts}"
        )
        assert len(parts) == ns, context
        for position, part in enumerate(parts):
            assert 0 <= part < vocab[position], (
                f"{context}: sub-element {position} escapes its vocabulary "
                f"of {vocab[position]}"
            )
        assert compressor.decompress(parts) == element, context


@pytest.mark.parametrize("max_id", MAX_IDS)
@pytest.mark.parametrize("ns", NS_VALUES)
def test_roundtrip_identity_divisor_boundaries(ns: int, max_id: int):
    compressor = ElementCompressor(max_id, ns=ns)
    for element in _boundary_ids(compressor.divisor, ns, max_id):
        parts = compressor.compress(element)
        context = (
            f"seed={SEED} ns={ns} max_id={max_id} "
            f"divisor={compressor.divisor} boundary element={element}"
        )
        assert compressor.decompress(parts) == element, context


@pytest.mark.parametrize("ns", NS_VALUES)
def test_roundtrip_identity_exhaustive_small_universes(ns: int):
    """Every id of every small universe roundtrips — no sampling gaps."""
    for max_id in range(0, 65):
        compressor = ElementCompressor(max_id, ns=ns)
        for element in range(max_id + 1):
            parts = compressor.compress(element)
            assert compressor.decompress(parts) == element, (
                f"seed={SEED} ns={ns} max_id={max_id} "
                f"divisor={compressor.divisor} element={element}"
            )


@pytest.mark.parametrize("max_id", MAX_IDS)
@pytest.mark.parametrize("ns", NS_VALUES)
def test_compress_array_matches_scalar(ns: int, max_id: int):
    rng = np.random.default_rng(SEED + ns * 7_368_787 + max_id)
    compressor = ElementCompressor(max_id, ns=ns)
    ids = _sample_ids(rng, max_id)
    rows = compressor.compress_array(np.asarray(ids))
    assert rows.shape == (ns, len(ids))
    for column, element in enumerate(ids):
        scalar = compressor.compress(element)
        vectorized = tuple(int(rows[i, column]) for i in range(ns))
        assert vectorized == scalar, (
            f"seed={SEED} ns={ns} max_id={max_id} element={element}: "
            f"array path {vectorized} != scalar path {scalar}"
        )


@pytest.mark.parametrize("ns", NS_VALUES)
def test_optimal_divisor_covers_universe(ns: int):
    """``sv_d ** ns`` reaches ``max_id`` so the final quotient fits its
    declared vocabulary (the float-undershoot guard of optimal_divisor)."""
    rng = np.random.default_rng(SEED + ns)
    universes = {int(m) for m in rng.integers(1, 2**20, size=64)} | set(MAX_IDS)
    for max_id in sorted(universes):
        divisor = optimal_divisor(max_id, ns)
        context = f"seed={SEED} ns={ns} max_id={max_id} divisor={divisor}"
        assert divisor >= 2, context
        if ns > 1:
            assert divisor**ns >= max_id, context
        compressor = ElementCompressor(max_id, ns=ns, divisor=divisor)
        parts = compressor.compress(max_id)
        assert parts[-1] < compressor.vocab_sizes()[-1], context


@pytest.mark.parametrize("max_id", MAX_IDS)
def test_tuned_divisors_stay_lossless(max_id: int):
    """Table 6 tunes ``sv_d`` away from optimal; any divisor >= 2 must
    stay lossless for every ns."""
    rng = np.random.default_rng(SEED + max_id)
    divisors = sorted(
        {2, 3, optimal_divisor(max_id, 2), max(2, max_id), max(2, max_id + 1)}
    )
    for ns in NS_VALUES:
        for divisor in divisors:
            ids = _sample_ids(rng, max_id)[:50]
            for element in ids:
                parts = compress_element(element, divisor, ns)
                assert decompress_element(parts, divisor) == element, (
                    f"seed={SEED} ns={ns} max_id={max_id} "
                    f"divisor={divisor} element={element}"
                )
