"""Tests for the Set Transformer set model (the DeepSets alternative)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeepSetsModel, SetTransformerModel
from repro.nn.data import SetBatch


@pytest.fixture
def model(rng) -> SetTransformerModel:
    return SetTransformerModel(50, dim=16, num_heads=4, num_blocks=1, rng=rng)


class TestForward:
    def test_output_shape(self, model):
        batch = SetBatch.from_sets([[1, 2, 3], [4], [5, 6]])
        assert model(batch).shape == (3, 1)

    def test_sigmoid_range(self, model):
        out = model(SetBatch.from_sets([[i] for i in range(0, 50, 5)])).data
        assert np.all((out > 0) & (out < 1))

    def test_identity_head(self, rng):
        model = SetTransformerModel(10, dim=8, out_activation="identity", rng=rng)
        out = model(SetBatch.from_sets([[1], [2]])).data
        assert out.shape == (2, 1)

    def test_isab_variant(self, rng):
        model = SetTransformerModel(
            20, dim=16, num_blocks=2, num_inducing=4, rng=rng
        )
        assert model(SetBatch.from_sets([[1, 2, 3]])).shape == (1, 1)

    def test_padding_does_not_leak_between_sets(self, model):
        """A set's output must not depend on other sets in the batch."""
        alone = model(SetBatch.from_sets([[1, 2, 3]])).data
        batched = model(
            SetBatch.from_sets([[1, 2, 3], [10, 11, 12, 13, 14, 15]])
        ).data
        np.testing.assert_allclose(alone[0], batched[0], atol=1e-8)


class TestPermutationInvariance:
    @settings(max_examples=15, deadline=None)
    @given(
        elements=st.sets(st.integers(0, 49), min_size=1, max_size=8),
        seed=st.integers(0, 50),
    )
    def test_property_invariant(self, elements, seed):
        model = SetTransformerModel(
            50, dim=8, num_heads=2, num_blocks=1, rng=np.random.default_rng(0)
        )
        ordered = list(elements)
        shuffled = list(np.random.default_rng(seed).permutation(ordered))
        out_a = model(SetBatch.from_sets([ordered])).data
        out_b = model(SetBatch.from_sets([shuffled])).data
        np.testing.assert_allclose(out_a, out_b, atol=1e-9)


class TestTraining:
    def test_learns_simple_set_function(self, rng):
        from repro.nn import Adam, binary_cross_entropy

        sets, labels = [], []
        for _ in range(200):
            size = int(rng.integers(1, 5))
            s = sorted(set(rng.choice(20, size=size, replace=False).tolist()))
            sets.append(s)
            labels.append(1.0 if 0 in s else 0.0)
        labels = np.array(labels)[:, None]
        model = SetTransformerModel(20, dim=16, num_blocks=1, rng=rng)
        optimizer = Adam(model.parameters(), lr=3e-3)
        batch = SetBatch.from_sets(sets)
        for _ in range(60):
            loss = binary_cross_entropy(model(batch), labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        accuracy = ((model.predict(sets) > 0.5) == labels.ravel()).mean()
        assert accuracy > 0.9


class TestPaperTradeoff:
    def test_more_parameters_than_deepsets_at_same_width(self, rng):
        """§3.2's size claim: attention layers cost more than DeepSets."""
        vocab = 100
        transformer = SetTransformerModel(vocab, dim=16, num_blocks=1, rng=rng)
        deepsets = DeepSetsModel(vocab, 16, (16,), (16,), rng=rng)
        assert transformer.num_parameters() > deepsets.num_parameters()

    def test_slower_inference_than_deepsets(self, rng):
        """§3.2's speed claim, at equal width and batch."""
        import time

        vocab = 100
        transformer = SetTransformerModel(vocab, dim=16, num_blocks=1, rng=rng)
        deepsets = DeepSetsModel(vocab, 16, (16,), (16,), rng=rng)
        sets = [
            sorted(set(rng.choice(vocab, size=5, replace=False).tolist()))
            for _ in range(64)
        ]

        def clock(model):
            started = time.perf_counter()
            for _ in range(5):
                model.predict(sets)
            return time.perf_counter() - started

        clock(deepsets), clock(transformer)  # warm up
        assert clock(transformer) > clock(deepsets)
