"""Tests for Algorithm 1: per-element lossless compression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ElementCompressor,
    compress_element,
    compressed_input_dims,
    decompress_element,
    embedding_matrix_bytes,
    embedding_matrix_entries,
    optimal_divisor,
)


class TestOptimalDivisor:
    def test_square_root_for_ns2(self):
        assert optimal_divisor(100, 2) == 10
        assert optimal_divisor(101, 2) == 11

    def test_cube_root_for_ns3(self):
        assert optimal_divisor(1000, 3) == 10

    def test_floating_point_undershoot_guarded(self):
        # naive ceil(v ** (1/ns)) can undershoot on exact powers.
        for value in (10**6, 10**9, 2**30):
            divisor = optimal_divisor(value, 3)
            assert divisor**3 >= value

    def test_minimum_two(self):
        assert optimal_divisor(1, 2) == 2
        assert optimal_divisor(0, 2) == 2

    def test_ns1_degenerates_to_identity_range(self):
        assert optimal_divisor(50, 1) == 51

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            optimal_divisor(-1, 2)
        with pytest.raises(ValueError):
            optimal_divisor(10, 0)


class TestCompressElement:
    def test_paper_example(self):
        """Figure 4: ns=2, max=100 -> sv_d=10; 91 -> (1, 9), 12 -> (2, 1), 23 -> (3, 2)."""
        divisor = optimal_divisor(100, 2)
        assert compress_element(91, divisor, 2) == (1, 9)
        assert compress_element(12, divisor, 2) == (2, 1)
        assert compress_element(23, divisor, 2) == (3, 2)

    def test_roundtrip_ns2(self):
        for element in (0, 1, 9, 10, 99, 100, 12345):
            parts = compress_element(element, 10, 2)
            assert decompress_element(parts, 10) == element

    def test_roundtrip_ns4(self):
        for element in (0, 7, 255, 4095, 65535):
            parts = compress_element(element, 16, 4)
            assert len(parts) == 4
            assert decompress_element(parts, 16) == element

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            compress_element(-1, 10, 2)
        with pytest.raises(ValueError):
            compress_element(5, 1, 2)

    @settings(max_examples=100, deadline=None)
    @given(
        element=st.integers(0, 10**9),
        divisor=st.integers(2, 10**4),
        ns=st.integers(1, 5),
    )
    def test_property_lossless(self, element, divisor, ns):
        parts = compress_element(element, divisor, ns)
        assert len(parts) == ns
        assert decompress_element(parts, divisor) == element

    @settings(max_examples=100, deadline=None)
    @given(element=st.integers(0, 10**6), ns=st.integers(2, 4))
    def test_property_subelements_bounded_with_optimal_divisor(self, element, ns):
        divisor = optimal_divisor(10**6, ns)
        parts = compress_element(element, divisor, ns)
        for remainder in parts[:-1]:
            assert 0 <= remainder < divisor
        assert 0 <= parts[-1] <= 10**6 // divisor ** (ns - 1)


class TestElementCompressor:
    def test_default_divisor_is_optimal(self):
        compressor = ElementCompressor(100, ns=2)
        assert compressor.divisor == 10

    def test_custom_divisor(self):
        compressor = ElementCompressor(100, ns=2, divisor=50)
        assert compressor.compress(91) == (41, 1)
        assert compressor.decompress((41, 1)) == 91

    def test_compress_array_matches_scalar(self):
        compressor = ElementCompressor(10_000, ns=3)
        elements = np.array([0, 5, 99, 1234, 9999])
        rows = compressor.compress_array(elements)
        assert rows.shape == (3, 5)
        for column, element in enumerate(elements):
            assert tuple(rows[:, column]) == compressor.compress(int(element))

    def test_vocab_sizes_cover_all_subelements(self):
        compressor = ElementCompressor(999, ns=2)
        remainder_vocab, quotient_vocab = compressor.vocab_sizes()
        for element in range(1000):
            remainder, quotient = compressor.compress(element)
            assert remainder < remainder_vocab
            assert quotient < quotient_vocab

    def test_paper_motivating_numbers(self):
        """Section 5: 1M elements, ns=2 -> two tables of about 1000 rows."""
        compressor = ElementCompressor(1_000_000, ns=2)
        sizes = compressor.vocab_sizes()
        assert all(size <= 1001 for size in sizes)
        assert compressor.total_vocab() <= 2002

    def test_repr(self):
        assert "ns=2" in repr(ElementCompressor(100, ns=2))

    @settings(max_examples=50, deadline=None)
    @given(
        max_value=st.integers(1, 10**6),
        ns=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_property_array_roundtrip(self, max_value, ns, seed):
        compressor = ElementCompressor(max_value, ns=ns)
        elements = np.random.default_rng(seed).integers(0, max_value + 1, size=20)
        rows = compressor.compress_array(elements)
        recovered = [
            compressor.decompress(tuple(rows[:, i])) for i in range(len(elements))
        ]
        np.testing.assert_array_equal(recovered, elements)


class TestSizeAccounting:
    def test_embedding_entries_and_bytes(self):
        assert embedding_matrix_entries(1000, 100) == 100_000
        assert embedding_matrix_bytes(1000, 100) == 400_000

    def test_compressed_input_dims_shrink_with_ns(self):
        """Figure 8: higher ns drastically reduces input dimensions."""
        dims = [compressed_input_dims(10**6, ns) for ns in (1, 2, 3, 4)]
        assert dims[0] == 10**6 + 1
        assert dims[1] < dims[0] / 100
        assert dims[2] < dims[1]
        assert dims[3] < dims[2]

    def test_compression_beats_bloom_crossover(self):
        """Figure 3's point: raw embeddings dwarf a Bloom filter, compressed
        embeddings do not."""
        from repro.baselines import bloom_size_bytes

        items = 1_000_000
        raw = embedding_matrix_bytes(items, 8)
        bloom = bloom_size_bytes(items, 0.01)
        assert raw > bloom  # the problem
        compressed_rows = ElementCompressor(items, ns=2).total_vocab()
        compressed = embedding_matrix_bytes(compressed_rows, 8)
        assert compressed < bloom  # the fix
