"""Tests for the learned cardinality estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LearnedCardinalityEstimator,
    ModelConfig,
    TrainConfig,
    mean_q_error,
)
from repro.sets import sample_query_workload


class TestBuild:
    def test_report_populated(self, trained_estimator):
        report = trained_estimator.report
        assert report.num_training_subsets > 0
        assert report.num_outliers > 0
        assert report.seconds_per_epoch > 0
        assert np.isfinite(report.final_loss)

    def test_hybrid_flag(self, trained_estimator):
        assert trained_estimator.is_hybrid

    def test_from_training_data_without_removal_is_pure_model(self):
        subsets = [(0,), (1,), (0, 1), (2,)]
        cards = np.array([3, 2, 1, 1])
        estimator = LearnedCardinalityEstimator.from_training_data(
            subsets,
            cards,
            max_element_id=2,
            model_config=ModelConfig(kind="lsm", embedding_dim=2, seed=0),
            train_config=TrainConfig(epochs=3, seed=0),
        )
        assert not estimator.is_hybrid
        assert estimator.auxiliary_bytes() == 0


class TestEstimates:
    def test_outliers_answered_exactly(self, trained_estimator, ground_truth):
        for subset in list(trained_estimator.auxiliary)[:20]:
            assert trained_estimator.estimate(subset) == ground_truth.cardinality(
                subset
            )

    def test_estimates_floored_at_one(self, trained_estimator):
        # Even a garbage query returns at least 1.
        assert trained_estimator.estimate((0, 1, 2, 3, 4)) >= 1.0

    def test_query_order_invariance(self, trained_estimator):
        a = trained_estimator.estimate((5, 1))
        b = trained_estimator.estimate((1, 5))
        assert a == pytest.approx(b)

    def test_estimate_many_matches_single(self, trained_estimator):
        queries = [(0,), (1, 2), (3,)]
        many = trained_estimator.estimate_many(queries)
        singles = [trained_estimator.estimate(q) for q in queries]
        np.testing.assert_allclose(many, singles)

    def test_estimate_many_mixes_aux_and_model(self, trained_estimator):
        aux_query = next(iter(trained_estimator.auxiliary))
        queries = [aux_query, (0, 1)]
        out = trained_estimator.estimate_many(queries)
        assert out[0] == trained_estimator.auxiliary[aux_query]

    def test_accuracy_reasonable_on_workload(
        self, trained_estimator, small_collection, ground_truth
    ):
        queries = sample_query_workload(
            small_collection, 150, rng=np.random.default_rng(0), max_subset_size=3
        )
        truth = np.array([ground_truth.cardinality(q) for q in queries])
        estimates = trained_estimator.estimate_many(queries)
        assert mean_q_error(estimates, truth) < 3.0


class TestMemoryAccounting:
    def test_totals_add_up(self, trained_estimator):
        assert trained_estimator.total_bytes() == (
            trained_estimator.model_bytes() + trained_estimator.auxiliary_bytes()
        )

    def test_clsm_model_smaller_than_lsm(self, small_collection):
        common = dict(
            train_config=TrainConfig(epochs=2, seed=0),
            max_subset_size=2,
        )
        lsm = LearnedCardinalityEstimator.build(
            small_collection,
            model_config=ModelConfig(kind="lsm", embedding_dim=8, seed=0),
            **common,
        )
        clsm = LearnedCardinalityEstimator.build(
            small_collection,
            model_config=ModelConfig(kind="clsm", embedding_dim=8, seed=0),
            **common,
        )
        assert clsm.model_bytes() < lsm.model_bytes()
