"""Tests for the learned set index and Algorithm 2 search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LearnedSetIndex, ModelConfig, TrainConfig
from repro.sets import index_training_pairs, sample_query_workload


class TestLookupCorrectness:
    def test_all_trained_subsets_found_exactly(
        self, trained_index, small_collection, ground_truth
    ):
        """The hybrid guarantee: every trained subset resolves to its true
        first position (via auxiliary, bounds, or fallback)."""
        subsets, positions = index_training_pairs(small_collection, max_subset_size=3)
        sample = np.random.default_rng(0).choice(len(subsets), 200, replace=False)
        for row in sample:
            assert trained_index.lookup(subsets[row]) == positions[row]

    def test_workload_lookups_match_ground_truth(
        self, trained_index, small_collection, ground_truth
    ):
        queries = sample_query_workload(
            small_collection, 100, rng=np.random.default_rng(1), max_subset_size=3
        )
        for query in queries:
            assert trained_index.lookup(query) == ground_truth.first_position(query)

    def test_absent_query_returns_none(self, trained_index, ground_truth):
        # Construct a query over existing elements that never co-occurs.
        absent = None
        for a in range(30):
            for b in range(30, 60):
                if ground_truth.cardinality((a, b)) == 0 and (a in ground_truth) and (
                    b in ground_truth
                ):
                    absent = (a, b)
                    break
            if absent:
                break
        assert absent is not None
        assert trained_index.lookup(absent) is None

    def test_no_fallback_mode_may_miss(self, trained_index):
        """With fallback off, untrained subsets can return None (documented)."""
        result = trained_index.lookup((0, 1, 2, 3, 4), fallback_scan=False)
        assert result is None or isinstance(result, int)


class TestEqualitySearch:
    def test_lookup_equal_finds_stored_sets(self, trained_index, small_collection):
        for position in (0, 10, 100):
            stored = small_collection[position]
            found = trained_index.lookup_equal(stored)
            # The first equal occurrence may precede `position` (duplicates).
            assert small_collection[found] == stored
            assert found <= position

    def test_lookup_equal_rejects_proper_subsets(
        self, trained_index, small_collection
    ):
        stored = small_collection[0]
        if len(stored) > 1:
            subset = stored[:-1]
            found = trained_index.lookup_equal(subset)
            assert found is None or small_collection[found] == subset


class TestStatsAndBounds:
    def test_stats_accumulate(self, trained_index, small_collection):
        trained_index.reset_stats()
        queries = sample_query_workload(
            small_collection, 20, rng=np.random.default_rng(2), max_subset_size=3
        )
        for query in queries:
            trained_index.lookup(query)
        stats = trained_index.stats
        assert stats.lookups == 20
        assert stats.auxiliary_hits <= 20
        assert stats.sets_scanned >= 0
        assert stats.mean_scan_length >= 0.0

    def test_local_errors_scan_less_than_global(self, small_collection):
        """Ablation: the same index scans more with a single global bound."""
        config = dict(
            model_config=ModelConfig(kind="clsm", embedding_dim=4, seed=3),
            train_config=TrainConfig(epochs=8, batch_size=256, lr=3e-3, seed=3),
            max_subset_size=2,
            error_range_length=25,
        )
        index = LearnedSetIndex.build(small_collection, **config)
        queries = sample_query_workload(
            small_collection, 30, rng=np.random.default_rng(4), max_subset_size=2
        )
        index.use_local_errors = True
        index.reset_stats()
        for query in queries:
            index.lookup(query)
        local_scanned = index.stats.sets_scanned
        index.use_local_errors = False
        index.reset_stats()
        for query in queries:
            index.lookup(query)
        global_scanned = index.stats.sets_scanned
        assert local_scanned <= global_scanned


class TestUpdates:
    def test_update_within_bounds_not_stored(self, trained_index):
        query = (0,)
        estimate = trained_index.predict_position(query)
        before = len(trained_index.auxiliary)
        trained_index.insert_update(query, int(round(estimate)))
        assert len(trained_index.auxiliary) == before

    def test_update_outside_bounds_goes_to_auxiliary(
        self, trained_index, small_collection
    ):
        query = (0, 2)
        far_position = len(small_collection) - 1
        estimate = trained_index.predict_position(query)
        if abs(estimate - far_position) <= trained_index.bounds.bound(estimate):
            pytest.skip("estimate happens to cover the far position")
        before = len(trained_index.auxiliary)
        trained_index.insert_update(query, far_position)
        assert len(trained_index.auxiliary) == before + 1
        assert trained_index.lookup(query) == far_position
        del trained_index.auxiliary[query]  # restore shared fixture

    def test_auxiliary_fraction(self, trained_index):
        assert 0.0 < trained_index.auxiliary_fraction < 1.0


class TestMemoryAccounting:
    def test_breakdown_adds_up(self, trained_index):
        assert trained_index.total_bytes() == (
            trained_index.model_bytes()
            + trained_index.auxiliary_bytes()
            + trained_index.error_bytes()
        )

    def test_error_bytes_positive(self, trained_index):
        assert trained_index.error_bytes() > 0
