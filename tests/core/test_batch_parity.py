"""Batch/single parity: `*_many` must agree elementwise with the scalar API.

Property-style checks over mixed workloads — auxiliary hits, model-path
subsets, duplicates, and (through the guarded facades) out-of-vocabulary,
empty, and malformed queries.  The serving subsystem routes everything
through the batch entry points, so any divergence here would surface as
answers that silently change when a query happens to share a batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
)


def subset_workload(collection, rng, num_queries=120, max_size=3):
    """In-vocabulary queries: subsets of stored sets, with duplicates mixed
    in so the dedup-and-scatter path is exercised."""
    queries = []
    for _ in range(num_queries):
        base = collection[int(rng.integers(len(collection)))]
        size = int(rng.integers(1, min(max_size, len(base)) + 1))
        queries.append(tuple(sorted(rng.choice(base, size=size, replace=False))))
    # Repeat a slice verbatim: duplicates must share one model prediction.
    queries.extend(queries[:20])
    rng.shuffle(queries)
    return [tuple(int(e) for e in q) for q in queries]


def hostile_workload(collection, rng):
    """The full mix for guarded facades: valid, OOV, empty, malformed."""
    oov = collection.max_element_id() + 10_000
    hostile = [
        (),  # empty
        (oov,),  # pure OOV
        (0, oov),  # mixed OOV
        ("not", "ints"),  # malformed
        None,  # malformed
    ]
    queries = subset_workload(collection, rng, num_queries=60)
    for position, query in zip(rng.integers(0, len(queries), len(hostile) * 4),
                               hostile * 4):
        queries.insert(int(position), query)
    return queries


class TestRawParity:
    def test_estimate_many_matches_single(self, trained_estimator, small_collection, rng):
        queries = subset_workload(small_collection, rng)
        batched = trained_estimator.estimate_many(queries)
        singles = np.array([trained_estimator.estimate(q) for q in queries])
        np.testing.assert_allclose(batched, singles, rtol=1e-7)

    def test_lookup_many_matches_single(self, trained_index, small_collection, rng):
        queries = subset_workload(small_collection, rng)
        batched = trained_index.lookup_many(queries)
        singles = [trained_index.lookup(q) for q in queries]
        assert batched == singles

    def test_predict_positions_matches_predict_position(
        self, trained_index, small_collection, rng
    ):
        queries = subset_workload(small_collection, rng, num_queries=40)
        batched = trained_index.predict_positions(queries)
        singles = np.array([trained_index.predict_position(q) for q in queries])
        np.testing.assert_allclose(batched, singles, rtol=1e-7)

    def test_contains_many_matches_single(self, trained_filter, small_collection, rng):
        queries = subset_workload(small_collection, rng)
        batched = trained_filter.contains_many(queries)
        singles = [trained_filter.contains(q) for q in queries]
        assert list(batched) == singles

    def test_score_many_matches_score(self, trained_filter, small_collection, rng):
        queries = subset_workload(small_collection, rng, num_queries=40)
        batched = trained_filter.score_many(queries)
        singles = np.array([trained_filter.score(q) for q in queries])
        np.testing.assert_allclose(batched, singles, rtol=1e-7)

    @pytest.mark.parametrize("bad", [(), (999_999,)])
    def test_batch_and_single_raise_alike_on_invalid_input(
        self, trained_estimator, bad
    ):
        with pytest.raises(Exception) as single_error:
            trained_estimator.estimate(bad)
        with pytest.raises(Exception) as batch_error:
            trained_estimator.estimate_many([bad])
        assert single_error.type is batch_error.type


class TestGuardedParity:
    """Each test runs the same hostile workload through two fresh facades
    over one shared structure — a single-query loop versus one batch call —
    and demands identical answers *and* identical health accounting."""

    def test_guarded_estimate_parity(
        self, trained_estimator, ground_truth, small_collection, rng
    ):
        queries = hostile_workload(small_collection, rng)
        one = GuardedCardinalityEstimator(trained_estimator, ground_truth)
        many = GuardedCardinalityEstimator(trained_estimator, ground_truth)
        singles = np.array([one.estimate(q) for q in queries])
        batched = many.estimate_many(queries)
        np.testing.assert_allclose(batched, singles, rtol=1e-7)
        assert one.health.as_dict() == many.health.as_dict()

    def test_guarded_lookup_parity(
        self, trained_index, ground_truth, small_collection, rng
    ):
        queries = hostile_workload(small_collection, rng)
        one = GuardedSetIndex(trained_index, ground_truth)
        many = GuardedSetIndex(trained_index, ground_truth)
        singles = [one.lookup(q) for q in queries]
        batched = many.lookup_many(queries)
        assert batched == singles
        assert one.health.as_dict() == many.health.as_dict()

    def test_guarded_contains_parity(
        self, trained_filter, ground_truth, small_collection, rng
    ):
        queries = hostile_workload(small_collection, rng)
        one = GuardedBloomFilter(trained_filter, ground_truth)
        many = GuardedBloomFilter(trained_filter, ground_truth)
        singles = [one.contains(q) for q in queries]
        batched = many.contains_many(queries)
        assert list(batched) == singles
        assert one.health.as_dict() == many.health.as_dict()

    def test_guarded_parity_on_pure_duplicate_batch(
        self, trained_estimator, ground_truth, small_collection
    ):
        """A batch of one hot query repeated: one model row, same answers."""
        guarded = GuardedCardinalityEstimator(trained_estimator, ground_truth)
        query = small_collection[0][:2]
        batched = guarded.estimate_many([query] * 64)
        assert np.all(batched == batched[0])
        assert guarded.estimate(query) == pytest.approx(float(batched[0]), rel=1e-7)
