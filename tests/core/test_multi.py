"""Tests for multi-collection membership (the paper's §9 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LearnedBloomFilter,
    ModelConfig,
    MultiSetMembership,
    TrainConfig,
)
from repro.sets import SetCollection


def make_filter(sets, seed=0) -> LearnedBloomFilter:
    collection = SetCollection(sets)
    return LearnedBloomFilter.build(
        collection,
        model_config=ModelConfig(kind="lsm", embedding_dim=4, seed=seed),
        train_config=TrainConfig(epochs=150, lr=0.03, loss="bce", seed=seed),
        num_negative_samples=10,
    )


@pytest.fixture(scope="module")
def router() -> MultiSetMembership:
    router = MultiSetMembership()
    router.add_filter("food", make_filter([[1, 2, 3], [2, 4]], seed=0))
    router.add_filter("travel", make_filter([[10, 11], [11, 12, 13]], seed=1))
    return router


class TestRegistration:
    def test_names_sorted(self, router):
        assert router.names() == ["food", "travel"]
        assert len(router) == 2
        assert "food" in router

    def test_duplicate_name_rejected(self, router):
        with pytest.raises(KeyError):
            router.add_filter("food", make_filter([[1]], seed=2))

    def test_add_collection_trains_and_registers(self):
        router = MultiSetMembership()
        filter_ = router.add_collection(
            "logs",
            SetCollection([[1, 2], [3]]),
            model_config=ModelConfig(kind="lsm", embedding_dim=2, seed=3),
            train_config=TrainConfig(epochs=50, lr=0.05, loss="bce", seed=3),
            num_negative_samples=5,
        )
        assert "logs" in router
        assert isinstance(filter_, LearnedBloomFilter)


class TestQuerying:
    def test_membership_per_collection(self, router):
        answers = router.membership((1, 2))
        assert answers["food"] is True
        # travel may report a false positive (allowed, Bloom semantics),
        # but ids beyond its embedding universe are definitely absent.
        assert router.membership((99, 100))["travel"] is False
        answers_travel = router.membership((11,))
        assert answers_travel["travel"] is True

    def test_collections_containing(self, router):
        assert "food" in router.collections_containing((2,))

    def test_contains_any_all(self, router):
        assert router.contains_any((2, 4))
        assert not router.contains_all((2, 4)) or router.membership((2, 4))["travel"]

    def test_membership_many_shapes(self, router):
        answers = router.membership_many([(1, 2), (2, 3)])
        assert set(answers) == {"food", "travel"}
        assert all(len(v) == 2 for v in answers.values())

    def test_empty_router_raises(self):
        with pytest.raises(RuntimeError):
            MultiSetMembership().membership((1,))

    def test_total_bytes(self, router):
        assert router.total_bytes() > 0
