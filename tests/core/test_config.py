"""Tests for the shared model configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressedDeepSetsModel, DeepSetsModel, ModelConfig


class TestModelConfig:
    def test_lsm_build(self):
        model = ModelConfig(kind="lsm", embedding_dim=4, seed=0).build(99)
        assert isinstance(model, DeepSetsModel)
        assert model.vocab_size == 100

    def test_clsm_build(self):
        model = ModelConfig(kind="clsm", ns=2, seed=0).build(99)
        assert isinstance(model, CompressedDeepSetsModel)
        assert model.compressor.ns == 2
        assert model.compressor.max_value == 99

    def test_custom_divisor_forwarded(self):
        model = ModelConfig(kind="clsm", ns=2, divisor=50, seed=0).build(99)
        assert model.compressor.divisor == 50

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ModelConfig(kind="transformer")

    def test_seed_reproducibility(self):
        a = ModelConfig(kind="lsm", seed=42).build(10)
        b = ModelConfig(kind="lsm", seed=42).build(10)
        np.testing.assert_array_equal(
            a.embedding.weight.data, b.embedding.weight.data
        )

    def test_sigmoid_head_everywhere(self):
        from repro.nn.data import SetBatch

        for kind in ("lsm", "clsm"):
            model = ModelConfig(kind=kind, seed=0).build(50)
            out = model(SetBatch.from_sets([[1, 2], [50]])).data
            assert np.all((out > 0) & (out < 1))
