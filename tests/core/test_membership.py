"""Tests for the learned Bloom filter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LearnedBloomFilter, ModelConfig, TrainConfig
from repro.sets import positive_membership_samples


class TestGuarantees:
    def test_zero_false_negatives_on_trained_positives(
        self, trained_filter, small_collection
    ):
        """The defining guarantee: every indexed subset is reported present."""
        positives = positive_membership_samples(small_collection, max_subset_size=3)
        answers = trained_filter.contains_many(positives)
        assert answers.all()

    def test_contains_single_matches_many(self, trained_filter, small_collection):
        positives = positive_membership_samples(small_collection, max_subset_size=2)[
            :30
        ]
        many = trained_filter.contains_many(positives)
        singles = [trained_filter.contains(p) for p in positives]
        assert list(many) == singles

    def test_query_order_invariance(self, trained_filter):
        assert trained_filter.contains((1, 5)) == trained_filter.contains((5, 1))

    def test_dunder_contains(self, trained_filter, small_collection):
        # The guarantee holds up to the trained subset-size cap (3), as the
        # paper restricts the filter to subsets of a predefined size.
        stored = small_collection[0][:3]
        assert stored in trained_filter


class TestBuildValidation:
    def test_empty_positives_rejected(self):
        with pytest.raises(ValueError):
            LearnedBloomFilter.from_training_data([], [(1, 2)], max_element_id=5)

    def test_wrong_loss_rejected(self):
        with pytest.raises(ValueError, match="bce"):
            LearnedBloomFilter.from_training_data(
                [(1,)],
                [],
                max_element_id=5,
                train_config=TrainConfig(loss="mse"),
            )

    def test_invalid_threshold(self):
        from repro.core.config import ModelConfig as MC

        model = MC(kind="lsm", embedding_dim=2).build(5)
        with pytest.raises(ValueError):
            LearnedBloomFilter(model, threshold=1.0)

    def test_report_populated(self, trained_filter):
        report = trained_filter.report
        assert report.num_positives > 0
        assert report.num_negatives > 0
        assert 0.0 <= report.train_accuracy <= 1.0
        assert report.num_backup_entries >= 0


class TestBackup:
    def test_backup_holds_exactly_the_missed_positives(self):
        """Build a deliberately under-trained model: the backup must cover
        whatever it misses."""
        rng = np.random.default_rng(0)
        positives = [tuple(sorted(set(rng.integers(0, 50, size=3)))) for _ in range(80)]
        positives = sorted(set(positives))
        negatives = [(100, 101)]
        filter_ = LearnedBloomFilter.from_training_data(
            positives,
            negatives,
            max_element_id=101,
            model_config=ModelConfig(kind="lsm", embedding_dim=2, seed=0),
            train_config=TrainConfig(epochs=1, loss="bce", seed=0),
        )
        for positive in positives:
            assert filter_.contains(positive)

    def test_perfect_model_needs_no_backup(self):
        """If every positive scores above threshold, no backup is built."""
        positives = [(1,), (2,)]
        negatives = [(3,)]
        filter_ = LearnedBloomFilter.from_training_data(
            positives,
            negatives,
            max_element_id=3,
            model_config=ModelConfig(kind="lsm", embedding_dim=4, seed=0),
            train_config=TrainConfig(epochs=300, lr=0.05, loss="bce", seed=0),
        )
        if filter_.report.num_backup_entries == 0:
            assert filter_.backup is None
            assert filter_.backup_bytes() == 0
        for positive in positives:
            assert filter_.contains(positive)


class TestMemoryAccounting:
    def test_totals_add_up(self, trained_filter):
        assert trained_filter.total_bytes() == (
            trained_filter.model_bytes() + trained_filter.backup_bytes()
        )

    def test_clsm_filter_far_smaller_than_lsm(self):
        """Table 10's story, at toy scale: CLSM shrinks the model."""
        rng = np.random.default_rng(1)
        positives = sorted(
            {tuple(sorted(set(rng.integers(0, 5000, size=3)))) for _ in range(60)}
        )
        negatives = [(0, 4999)]
        common = dict(
            max_element_id=4999,
            train_config=TrainConfig(epochs=1, loss="bce", seed=0),
        )
        lsm = LearnedBloomFilter.from_training_data(
            positives,
            negatives,
            model_config=ModelConfig(kind="lsm", embedding_dim=2, seed=0),
            **common,
        )
        clsm = LearnedBloomFilter.from_training_data(
            positives,
            negatives,
            model_config=ModelConfig(kind="clsm", embedding_dim=2, seed=0),
            **common,
        )
        assert clsm.model_bytes() < lsm.model_bytes() / 5
