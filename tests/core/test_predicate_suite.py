"""Tests for :class:`PredicateCardinalitySuite` and its guarded facade.

One tiny suite (module-scoped — training dominates the cost) backs all of:
routing by predicate spec, mixed keyed batches, exact post-training
overrides, and the per-predicate failure semantics documented on
:class:`GuardedPredicateSuite`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ModelConfig, TrainConfig
from repro.core.predicate_suite import PredicateCardinalitySuite
from repro.reliability import GuardedPredicateSuite
from repro.sets import InvertedIndex, SetCollection
from repro.sets.predicates import DEFAULT_PREDICATES, Predicate

from .conftest import _make_collection


@pytest.fixture(scope="module")
def collection() -> SetCollection:
    return _make_collection(seed=13, n=120, vocab=40)


@pytest.fixture(scope="module")
def exact(collection) -> InvertedIndex:
    return InvertedIndex(collection)


@pytest.fixture(scope="module")
def suite(collection) -> PredicateCardinalitySuite:
    return PredicateCardinalitySuite.build(
        collection,
        model_config=ModelConfig(kind="clsm", embedding_dim=4, seed=3),
        train_config=TrainConfig(epochs=8, batch_size=256, lr=3e-3, seed=3),
        num_samples=400,
        max_subset_size=3,
        rng=np.random.default_rng(3),
    )


@pytest.fixture(scope="module")
def guarded(suite, collection) -> GuardedPredicateSuite:
    return GuardedPredicateSuite.for_collection(suite, collection)


class TestSuite:
    def test_trains_one_estimator_per_default_predicate(self, suite):
        assert suite.supports_predicates is True
        assert suite.predicates == DEFAULT_PREDICATES
        for predicate in DEFAULT_PREDICATES:
            assert suite.estimator_for(predicate) is suite.estimator_for(
                predicate.spec
            )

    def test_unknown_predicate_is_a_keyerror(self, suite):
        with pytest.raises(KeyError, match="overlap>=9"):
            suite.estimator_for("overlap>=9")

    def test_estimate_routes_to_the_member(self, suite, collection):
        query = collection[0][:2]
        for predicate in DEFAULT_PREDICATES:
            routed = suite.estimate(query, predicate=predicate)
            member = suite.estimator_for(predicate).estimate(query)
            assert routed == member

    def test_keyed_batch_matches_per_predicate_batches(self, suite, collection):
        queries = [collection[i][:2] for i in range(8)]
        items = [
            (predicate.spec, tuple(query))
            for query in queries
            for predicate in DEFAULT_PREDICATES
        ]
        keyed = suite.estimate_many_keyed(items)
        for row, (spec, query) in enumerate(items):
            expected = float(suite.estimate_many([query], predicate=spec)[0])
            assert keyed[row] == pytest.approx(expected), (spec, query)

    def test_record_update_overrides_one_member_only(self, suite, collection):
        query = tuple(collection[1][:2])
        suite.record_update(query, 17, predicate="superset")
        assert suite.estimate(query, predicate="superset") == 17.0
        # The subset member keeps its own answer surface.
        assert suite.estimate(query, predicate="subset") != 17.0

    def test_record_update_fires_suite_level_hooks(self, suite, collection):
        fired = []
        suite.add_update_listener(fired.append)
        try:
            query = tuple(collection[2][:2])
            suite.record_update(query, 3, predicate="overlap>=2")
            assert fired == [query]
        finally:
            suite.remove_update_listener(fired.append)

    def test_accounting_and_universe(self, suite, collection):
        assert suite.total_bytes() > 0
        assert suite.max_known_id() >= collection.max_element_id()

    def test_constructor_rejects_empty_and_bad_specs(self, suite):
        with pytest.raises(ValueError):
            PredicateCardinalitySuite({})
        with pytest.raises(ValueError):
            PredicateCardinalitySuite(
                {"contains": suite.estimator_for("subset")}
            )


class TestGuardedSemantics:
    def test_empty_query_is_exact_per_predicate(self, guarded, collection):
        n = len(collection)
        assert guarded.estimate((), predicate="subset") == float(n)
        for spec in ("superset", "overlap>=2", "jaccard>=0.5"):
            assert guarded.estimate((), predicate=spec) == 0.0

    def test_oov_is_a_subset_miss_but_exact_elsewhere(
        self, guarded, exact, collection
    ):
        oov = tuple(collection[0]) + (10_000,)
        assert guarded.estimate(oov, predicate="subset") == 0.0
        for spec in ("superset", "overlap>=2", "jaccard>=0.5"):
            expected = float(exact.count_predicate(spec, oov))
            assert guarded.estimate(oov, predicate=spec) == expected, spec

    def test_oversized_query_is_answered_exactly_for_non_subset(
        self, guarded, exact
    ):
        huge = tuple(range(guarded.max_query_size + 5))
        assert guarded.estimate(huge, predicate="subset") == 0.0
        expected = float(exact.count_predicate("superset", huge))
        assert guarded.estimate(huge, predicate="superset") == expected

    def test_malformed_query_and_spec_are_zero(self, guarded):
        before = guarded.health.total_short_circuits
        assert guarded.estimate(("x",), predicate="superset") == 0.0
        # A malformed wire spec is per-row data, not a programming error:
        # the keyed path answers 0.0 instead of poisoning its batchmates.
        assert guarded.estimate_many_keyed([("between", (1, 2))])[0] == 0.0
        assert guarded.health.total_short_circuits == before + 2
        # The keyword argument, by contrast, is caller code — it raises.
        with pytest.raises(ValueError):
            guarded.estimate((1, 2), predicate="between")

    def test_model_failure_falls_back_to_exact_predicate_count(
        self, suite, collection, exact, monkeypatch
    ):
        guarded = GuardedPredicateSuite.for_collection(suite, collection)
        monkeypatch.setattr(
            suite,
            "estimate_many_keyed",
            lambda items: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        query = tuple(collection[3][:2])
        for predicate in DEFAULT_PREDICATES:
            expected = float(exact.count_predicate(predicate, query))
            assert guarded.estimate(query, predicate=predicate) == expected
        assert guarded.health.total_fallbacks == len(DEFAULT_PREDICATES)

    def test_invalid_prediction_falls_back_per_row(
        self, suite, collection, exact, monkeypatch
    ):
        guarded = GuardedPredicateSuite.for_collection(suite, collection)
        query = tuple(collection[4][:2])

        def poisoned(items):
            values = np.ones(len(items))
            values[0] = np.nan
            return values

        monkeypatch.setattr(suite, "estimate_many_keyed", poisoned)
        out = guarded.estimate_many_keyed(
            [("superset", query), ("overlap>=2", query)]
        )
        assert out[0] == float(exact.count_predicate("superset", query))
        assert out[1] == 1.0  # the healthy batchmate kept its model answer

    def test_mixed_keyed_batch_equals_singles(self, guarded, collection):
        queries = [tuple(collection[i][:3]) for i in range(6)]
        items = [
            (predicate.spec, query)
            for query in queries
            for predicate in DEFAULT_PREDICATES
        ]
        batched = guarded.estimate_many_keyed(items)
        singles = [
            guarded.estimate(query, predicate=spec) for spec, query in items
        ]
        assert list(batched) == pytest.approx(singles)
