"""Tests for the log min-max target scaler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LogMinMaxScaler


class TestFit:
    def test_transform_range(self):
        scaler = LogMinMaxScaler().fit([1, 10, 100])
        scaled = scaler.transform([1, 10, 100])
        assert scaled[0] == pytest.approx(0.0)
        assert scaled[-1] == pytest.approx(1.0)
        assert 0.0 < scaled[1] < 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LogMinMaxScaler().fit([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LogMinMaxScaler().fit([-1.0])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogMinMaxScaler().transform([1.0])

    def test_constant_targets_map_to_zero(self):
        scaler = LogMinMaxScaler().fit([7, 7, 7])
        np.testing.assert_allclose(scaler.transform([7]), [0.0])


class TestBounds:
    def test_from_bounds_matches_fit(self):
        fitted = LogMinMaxScaler().fit([0, 99])
        bounded = LogMinMaxScaler.from_bounds(0, 99)
        np.testing.assert_allclose(
            fitted.transform([5, 50]), bounded.transform([5, 50])
        )

    def test_for_cardinality_lower_bound_is_one(self):
        scaler = LogMinMaxScaler.for_cardinality(1000)
        assert scaler.transform([1])[0] == pytest.approx(0.0)
        assert scaler.transform([1000])[0] == pytest.approx(1.0)

    def test_for_positions(self):
        scaler = LogMinMaxScaler.for_positions(100)
        assert scaler.transform([0])[0] == pytest.approx(0.0)
        assert scaler.transform([99])[0] == pytest.approx(1.0)

    def test_for_positions_invalid(self):
        with pytest.raises(ValueError):
            LogMinMaxScaler.for_positions(0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LogMinMaxScaler.from_bounds(10, 5)

    def test_span(self):
        scaler = LogMinMaxScaler.from_bounds(0, 99)
        assert scaler.span == pytest.approx(np.log1p(99))


class TestInverse:
    def test_roundtrip(self):
        scaler = LogMinMaxScaler().fit([1, 500])
        values = np.array([1.0, 17.0, 250.0, 500.0])
        np.testing.assert_allclose(
            scaler.inverse(scaler.transform(values)), values, rtol=1e-10
        )

    def test_inverse_clamps_out_of_range(self):
        scaler = LogMinMaxScaler().fit([1, 100])
        assert scaler.inverse([-0.5])[0] == pytest.approx(1.0)
        assert scaler.inverse([1.5])[0] == pytest.approx(100.0)

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.integers(0, 10**6), min_size=2, max_size=50).filter(
            lambda v: min(v) != max(v)
        )
    )
    def test_property_roundtrip(self, values):
        scaler = LogMinMaxScaler().fit(values)
        array = np.asarray(values, dtype=float)
        np.testing.assert_allclose(
            scaler.inverse(scaler.transform(array)), array, rtol=1e-8, atol=1e-8
        )

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.integers(0, 10**6),
        b=st.integers(0, 10**6),
    )
    def test_property_monotone(self, a, b):
        scaler = LogMinMaxScaler.from_bounds(0, 10**6)
        ta, tb = scaler.transform([a])[0], scaler.transform([b])[0]
        if a < b:
            assert ta < tb
        elif a == b:
            assert ta == tb
