"""Tests for the q-error and companion metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    absolute_error,
    binary_accuracy,
    group_q_error_by_result_size,
    mean_absolute_error,
    mean_q_error,
    q_error,
    q_error_percentile,
)


class TestQError:
    def test_perfect_estimate_is_one(self):
        np.testing.assert_allclose(q_error([5.0, 10.0], [5.0, 10.0]), 1.0)

    def test_symmetric_in_ratio(self):
        assert q_error([10.0], [5.0])[0] == pytest.approx(2.0)
        assert q_error([5.0], [10.0])[0] == pytest.approx(2.0)

    def test_floors_at_one(self):
        # Estimate 0.2 vs truth 0 -> both floored to 1 -> q = 1.
        assert q_error([0.2], [0.0])[0] == pytest.approx(1.0)
        # Estimate 0 vs truth 10 -> est floored to 1 -> q = 10.
        assert q_error([0.0], [10.0])[0] == pytest.approx(10.0)

    def test_mean_and_percentile(self):
        est = np.array([1.0, 2.0, 4.0])
        true = np.array([1.0, 1.0, 1.0])
        assert mean_q_error(est, true) == pytest.approx((1 + 2 + 4) / 3)
        assert q_error_percentile(est, true, 50) == pytest.approx(2.0)

    @settings(max_examples=50, deadline=None)
    @given(
        est=st.floats(0.0, 1e6, allow_nan=False),
        true=st.floats(0.0, 1e6, allow_nan=False),
    )
    def test_property_q_error_at_least_one(self, est, true):
        assert q_error([est], [true])[0] >= 1.0


class TestAbsoluteError:
    def test_values(self):
        np.testing.assert_allclose(absolute_error([3.0, 1.0], [1.0, 4.0]), [2.0, 3.0])

    def test_mean(self):
        assert mean_absolute_error([3.0, 1.0], [1.0, 4.0]) == pytest.approx(2.5)


class TestBinaryAccuracy:
    def test_perfect(self):
        assert binary_accuracy([0.9, 0.1], [1, 0]) == 1.0

    def test_threshold_inclusive(self):
        assert binary_accuracy([0.5], [1], threshold=0.5) == 1.0

    def test_half_right(self):
        assert binary_accuracy([0.9, 0.9], [1, 0]) == 0.5


class TestGrouping:
    def test_buckets_cover_sizes(self):
        true = np.array([1, 1, 3, 7, 60, 2000])
        est = true * 2.0
        grouped = group_q_error_by_result_size(est, true)
        assert grouped["[1,2)"] == pytest.approx(2.0)
        assert grouped[">=1000"] == pytest.approx(2.0)

    def test_empty_buckets_omitted(self):
        grouped = group_q_error_by_result_size([1.0], [1.0])
        assert "[1,2)" in grouped
        assert ">=1000" not in grouped

    def test_custom_edges(self):
        grouped = group_q_error_by_result_size(
            [10.0, 100.0], [10.0, 100.0], bin_edges=[1, 50]
        )
        assert set(grouped) == {"[1,50)", ">=50"}
