"""Tests for the §7.2 incremental-update paths of the learned structures."""

from __future__ import annotations

import numpy as np
import pytest


class TestCardinalityUpdates:
    def test_record_update_overrides_model(self, trained_estimator):
        query = (0, 1)
        trained_estimator.record_update(query, 777)
        assert trained_estimator.estimate(query) == 777.0
        del trained_estimator.auxiliary[query]  # restore shared fixture

    def test_record_update_canonicalizes(self, trained_estimator):
        trained_estimator.record_update((5, 1, 5), 3)
        assert trained_estimator.estimate((1, 5)) == 3.0
        del trained_estimator.auxiliary[(1, 5)]

    def test_negative_cardinality_rejected(self, trained_estimator):
        with pytest.raises(ValueError):
            trained_estimator.record_update((1,), -1)

    def test_should_retrain_false_on_trained_data(
        self, trained_estimator, small_collection, ground_truth
    ):
        from repro.sets import cardinality_training_pairs

        subsets, cards = cardinality_training_pairs(
            small_collection, max_subset_size=3
        )
        rng = np.random.default_rng(0)
        chosen = rng.choice(len(subsets), 100, replace=False)
        queries = [subsets[i] for i in chosen]
        truths = cards[chosen]
        assert not trained_estimator.should_retrain(
            queries, truths, max_mean_q_error=10.0
        )

    def test_should_retrain_true_under_drift(self, trained_estimator):
        # Fabricate a drifted world: the same queries now have huge counts.
        queries = [(0,), (1,), (2,)]
        drifted = np.array([1e6, 1e6, 1e6])
        assert trained_estimator.should_retrain(queries, drifted)


class TestBloomInserts:
    def test_insert_makes_subset_present(self, trained_filter):
        new_subset = (7001, 7002)  # ids beyond anything trained
        # predict_one would fail for out-of-range ids on LSM, so insert
        # routes through the backup filter only; use in-range ids instead.
        new_subset = (0, 2, 4)
        had_before = trained_filter.contains(new_subset)
        trained_filter.insert(new_subset)
        assert trained_filter.contains(new_subset)
        assert had_before in (True, False)  # insert never breaks anything

    def test_insert_creates_backup_lazily(self):
        from repro.core import LearnedBloomFilter, ModelConfig, TrainConfig

        filter_ = LearnedBloomFilter.from_training_data(
            [(1,)],
            [(2, 3)],
            max_element_id=3,
            model_config=ModelConfig(kind="lsm", embedding_dim=2, seed=0),
            train_config=TrainConfig(epochs=200, lr=0.05, loss="bce", seed=0),
        )
        filter_.backup = None  # simulate the perfect-model case
        filter_.insert((2, 3))
        assert filter_.backup is not None
        assert filter_.contains((2, 3))
