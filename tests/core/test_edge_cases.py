"""Edge-case and failure-injection tests across the core package."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DeepSetsModel,
    LogMinMaxScaler,
    LookupStats,
    ModelConfig,
    TrainConfig,
    guided_fit,
)
from repro.nn.data import RaggedArray, SetBatch


class TestPredictPaths:
    def test_predict_accepts_ragged_array(self, rng):
        model = DeepSetsModel(10, 2, (4,), (4,), rng=rng)
        sets = [[1, 2], [3], [4, 5, 6]]
        ragged = RaggedArray(sets)
        np.testing.assert_allclose(model.predict(ragged), model.predict(sets))

    def test_predict_empty_batch_size_edge(self, rng):
        model = DeepSetsModel(10, 2, (4,), (4,), rng=rng)
        sets = [[1]] * 5
        np.testing.assert_allclose(
            model.predict(sets, batch_size=1), model.predict(sets, batch_size=5)
        )

    def test_forward_rejects_out_of_vocab(self, rng):
        model = DeepSetsModel(10, 2, (4,), (4,), rng=rng)
        with pytest.raises(IndexError):
            model(SetBatch.from_sets([[10]]))


class TestLookupStats:
    def test_mean_scan_length_no_lookups(self):
        assert LookupStats().mean_scan_length == 0.0

    def test_mean_scan_length_only_aux_hits(self):
        stats = LookupStats(lookups=5, auxiliary_hits=5, sets_scanned=0)
        assert stats.mean_scan_length == 0.0

    def test_mean_scan_length_mixed(self):
        stats = LookupStats(lookups=10, auxiliary_hits=4, sets_scanned=60)
        assert stats.mean_scan_length == 10.0


class TestScalerEdges:
    def test_span_requires_fit(self):
        with pytest.raises(RuntimeError):
            LogMinMaxScaler().span

    def test_inverse_requires_fit(self):
        with pytest.raises(RuntimeError):
            LogMinMaxScaler().inverse([0.5])

    def test_zero_values_allowed(self):
        scaler = LogMinMaxScaler().fit([0, 10])
        assert scaler.transform([0])[0] == pytest.approx(0.0)
        assert scaler.inverse([0.0])[0] == pytest.approx(0.0)


class TestGuidedFitEdges:
    def test_single_sample_corpus(self, rng):
        model = DeepSetsModel(5, 2, (4,), (4,), rng=rng)
        scaler = LogMinMaxScaler.from_bounds(0, 10)
        result = guided_fit(
            model,
            [[1, 2]],
            np.array([3.0]),
            scaler,
            TrainConfig(epochs=2, seed=0),
            rng=np.random.default_rng(0),
        )
        assert result.num_outliers == 0
        assert len(result.final_predictions) == 1

    def test_targets_all_equal(self, rng):
        """A constant target distribution must not crash the scaler path."""
        model = DeepSetsModel(5, 2, (4,), (4,), rng=rng)
        scaler = LogMinMaxScaler().fit([7.0, 7.0])
        result = guided_fit(
            model,
            [[1], [2]],
            np.array([7.0, 7.0]),
            scaler,
            TrainConfig(epochs=2, seed=0),
            rng=np.random.default_rng(0),
        )
        assert np.all(np.isfinite(result.final_predictions))


class TestModelConfigEdges:
    def test_max_element_id_zero(self):
        """A single-element universe still builds (vocab of one)."""
        model = ModelConfig(kind="lsm", embedding_dim=2, seed=0).build(0)
        out = model(SetBatch.from_sets([[0]]))
        assert out.shape == (1, 1)

    def test_clsm_tiny_universe(self):
        model = ModelConfig(kind="clsm", embedding_dim=2, seed=0).build(1)
        out = model(SetBatch.from_sets([[0, 1]]))
        assert out.shape == (1, 1)
