"""Edge-case and failure-injection tests across the core package."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DeepSetsModel,
    LogMinMaxScaler,
    LookupStats,
    ModelConfig,
    TrainConfig,
    guided_fit,
)
from repro.nn.data import RaggedArray, SetBatch
from repro.reliability import (
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
)


class TestPredictPaths:
    def test_predict_accepts_ragged_array(self, rng):
        model = DeepSetsModel(10, 2, (4,), (4,), rng=rng)
        sets = [[1, 2], [3], [4, 5, 6]]
        ragged = RaggedArray(sets)
        np.testing.assert_allclose(model.predict(ragged), model.predict(sets))

    def test_predict_empty_batch_size_edge(self, rng):
        model = DeepSetsModel(10, 2, (4,), (4,), rng=rng)
        sets = [[1]] * 5
        np.testing.assert_allclose(
            model.predict(sets, batch_size=1), model.predict(sets, batch_size=5)
        )

    def test_forward_rejects_out_of_vocab(self, rng):
        model = DeepSetsModel(10, 2, (4,), (4,), rng=rng)
        with pytest.raises(IndexError):
            model(SetBatch.from_sets([[10]]))


class TestLookupStats:
    def test_mean_scan_length_no_lookups(self):
        assert LookupStats().mean_scan_length == 0.0

    def test_mean_scan_length_only_aux_hits(self):
        stats = LookupStats(lookups=5, auxiliary_hits=5, sets_scanned=0)
        assert stats.mean_scan_length == 0.0

    def test_mean_scan_length_mixed(self):
        stats = LookupStats(lookups=10, auxiliary_hits=4, sets_scanned=60)
        assert stats.mean_scan_length == 10.0


class TestScalerEdges:
    def test_span_requires_fit(self):
        with pytest.raises(RuntimeError):
            LogMinMaxScaler().span

    def test_inverse_requires_fit(self):
        with pytest.raises(RuntimeError):
            LogMinMaxScaler().inverse([0.5])

    def test_zero_values_allowed(self):
        scaler = LogMinMaxScaler().fit([0, 10])
        assert scaler.transform([0])[0] == pytest.approx(0.0)
        assert scaler.inverse([0.0])[0] == pytest.approx(0.0)


class TestGuidedFitEdges:
    def test_single_sample_corpus(self, rng):
        model = DeepSetsModel(5, 2, (4,), (4,), rng=rng)
        scaler = LogMinMaxScaler.from_bounds(0, 10)
        result = guided_fit(
            model,
            [[1, 2]],
            np.array([3.0]),
            scaler,
            TrainConfig(epochs=2, seed=0),
            rng=np.random.default_rng(0),
        )
        assert result.num_outliers == 0
        assert len(result.final_predictions) == 1

    def test_targets_all_equal(self, rng):
        """A constant target distribution must not crash the scaler path."""
        model = DeepSetsModel(5, 2, (4,), (4,), rng=rng)
        scaler = LogMinMaxScaler().fit([7.0, 7.0])
        result = guided_fit(
            model,
            [[1], [2]],
            np.array([7.0, 7.0]),
            scaler,
            TrainConfig(epochs=2, seed=0),
            rng=np.random.default_rng(0),
        )
        assert np.all(np.isfinite(result.final_predictions))


class TestEdgeQueries:
    """Empty / oversized / all-OOV / duplicated queries across structures.

    Raw structures surface exceptions (documented here); the guarded
    facades convert every one of them into a defined miss.
    """

    OOV = (10_000, 10_001)

    def test_raw_estimator_raises_on_oov_and_empty(self, trained_estimator):
        with pytest.raises(IndexError):
            trained_estimator.estimate(self.OOV)
        with pytest.raises(ValueError):
            trained_estimator.estimate(())

    def test_guarded_estimator_defined_miss(self, trained_estimator, small_collection):
        guarded = GuardedCardinalityEstimator.for_collection(
            trained_estimator, small_collection
        )
        assert guarded.estimate(()) == float(len(small_collection))
        assert guarded.estimate(self.OOV) == 0.0
        oversized = tuple(range(len(max(small_collection, key=len)) + 1))
        assert guarded.estimate(oversized) == 0.0

    def test_guarded_estimator_duplicates_match_raw(
        self, trained_estimator, small_collection
    ):
        guarded = GuardedCardinalityEstimator.for_collection(
            trained_estimator, small_collection
        )
        assert guarded.estimate([1, 1, 2]) == trained_estimator.estimate([1, 2])

    def test_guarded_index_defined_miss(self, trained_index):
        guarded = GuardedSetIndex(trained_index)
        assert guarded.lookup(()) == 0
        assert guarded.lookup(self.OOV) is None
        assert guarded.lookup([0, 0, 0]) == guarded.lookup([0])

    def test_guarded_filter_defined_miss(self, trained_filter, small_collection):
        guarded = GuardedBloomFilter.for_collection(trained_filter, small_collection)
        assert guarded.contains(()) is True  # empty set ⊆ every stored set
        assert guarded.contains(self.OOV) is False
        assert guarded.contains(["not-an-id"]) is False

    def test_guarded_lookup_is_sound_on_stored_sets(
        self, trained_index, small_collection
    ):
        """Stored sets (even beyond the trained subset size) always resolve
        to a position that really contains them — exactness of *first*
        position is only guaranteed for trained query sizes."""
        guarded = GuardedSetIndex(trained_index)
        for stored in list(small_collection)[:20]:
            position = guarded.lookup(stored)
            assert position is not None
            assert set(stored).issubset(small_collection[position])


class TestModelConfigEdges:
    def test_max_element_id_zero(self):
        """A single-element universe still builds (vocab of one)."""
        model = ModelConfig(kind="lsm", embedding_dim=2, seed=0).build(0)
        out = model(SetBatch.from_sets([[0]]))
        assert out.shape == (1, 1)

    def test_clsm_tiny_universe(self):
        model = ModelConfig(kind="clsm", embedding_dim=2, seed=0).build(1)
        out = model(SetBatch.from_sets([[0, 1]]))
        assert out.shape == (1, 1)
