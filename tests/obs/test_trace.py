"""Tracer: nesting, bounded buffer, record(), enable/disable."""

from __future__ import annotations

import threading

import pytest

from repro.obs import Tracer, get_tracer, set_tracer, trace


class TestSpans:
    def test_span_records_name_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("encode", kind="cardinality"):
            pass
        (span,) = tracer.snapshot()
        assert span["name"] == "encode"
        assert span["attrs"] == {"kind": "cardinality"}
        assert span["duration_ms"] >= 0.0
        assert span["parent_id"] is None

    def test_attrs_can_be_attached_mid_span(self):
        tracer = Tracer()
        with tracer.span("cache_lookup") as span:
            span["attrs"]["hit"] = True
        assert tracer.snapshot()[0]["attrs"]["hit"] is True

    def test_nested_spans_record_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.snapshot()  # inner closes first
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_span_closed_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert len(tracer) == 1
        with tracer.span("after"):
            pass
        assert tracer.snapshot()[-1]["parent_id"] is None  # stack unwound

    def test_threads_do_not_share_span_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def run(name: str) -> None:
            with tracer.span(name):
                barrier.wait(timeout=5)

        workers = [
            threading.Thread(target=run, args=(f"t{i}",)) for i in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(span["parent_id"] is None for span in tracer.snapshot())


class TestBuffer:
    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            tracer.record("s", float(i))
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [span["duration_ms"] for span in tracer.snapshot()] == [2, 3, 4]

    def test_snapshot_limit_keeps_newest(self):
        tracer = Tracer()
        for i in range(4):
            tracer.record("s", float(i))
        assert [s["duration_ms"] for s in tracer.snapshot(limit=2)] == [2, 3]

    def test_snapshot_is_a_copy(self):
        tracer = Tracer()
        tracer.record("s", 1.0, k="v")
        tracer.snapshot()[0]["attrs"]["k"] = "mutated"
        assert tracer.snapshot()[0]["attrs"]["k"] == "v"

    def test_clear_resets_spans_and_dropped(self):
        tracer = Tracer(max_spans=1)
        tracer.record("a", 1.0)
        tracer.record("b", 2.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("s") as span:
            span["attrs"]["x"] = 1  # still assignable — stays a no-op
        tracer.record("r", 1.0)
        assert len(tracer) == 0


class TestDefaultTracer:
    def test_trace_uses_the_process_default(self):
        previous = get_tracer()
        try:
            tracer = set_tracer(Tracer())
            with trace("via_module", n=1):
                pass
            assert tracer.snapshot()[0]["name"] == "via_module"
        finally:
            set_tracer(previous)
