"""TrainingProfiler: Trainer.fit and guided_fit report into the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DeepSetsModel,
    LogMinMaxScaler,
    OutlierRemovalConfig,
    TrainConfig,
    Trainer,
    guided_fit,
)
from repro.nn.data import SetDataLoader
from repro.obs import MetricsRegistry, TrainingProfiler, get_profiler


def _make_profiler() -> TrainingProfiler:
    return TrainingProfiler(registry=MetricsRegistry())


def _value(profiler: TrainingProfiler, name: str) -> float:
    return profiler.registry.get(name).value


def _classification_task(rng, n=60, vocab=20):
    sets, labels = [], []
    for _ in range(n):
        size = int(rng.integers(1, 5))
        subset = sorted(set(rng.choice(vocab, size=size, replace=False).tolist()))
        sets.append(subset)
        labels.append(1.0 if 0 in subset else 0.0)
    return sets, np.array(labels)


class TestTrainerHooks:
    def test_fit_reports_epochs_and_run_summary(self, rng):
        sets, labels = _classification_task(rng)
        model = DeepSetsModel(20, 2, (4,), (4,), rng=rng)
        loader = SetDataLoader(sets, labels, batch_size=32, rng=rng)
        profiler = _make_profiler()
        history = Trainer(
            model, TrainConfig(epochs=3, loss="bce"), profiler=profiler
        ).fit(loader)

        assert _value(profiler, "repro_training_epoch") == 3
        assert _value(profiler, "repro_training_loss") == pytest.approx(
            history.losses[-1]
        )
        assert _value(profiler, "repro_training_active_samples") == len(sets)
        assert _value(profiler, "repro_training_runs_total") == 1
        assert _value(profiler, "repro_training_epochs_completed") == 3
        assert _value(profiler, "repro_training_final_loss") == pytest.approx(
            history.final_loss
        )
        assert _value(profiler, "repro_training_total_seconds") > 0
        assert _value(profiler, "repro_training_divergences_total") == 0

    def test_trainer_defaults_to_the_global_profiler(self, rng):
        sets, labels = _classification_task(rng, n=20)
        model = DeepSetsModel(20, 2, (4,), (4,), rng=rng)
        trainer = Trainer(model, TrainConfig(epochs=1, loss="bce"))
        assert trainer.profiler is get_profiler()

    def test_divergence_hook_counts_rollbacks(self, rng):
        pytest.importorskip("repro.reliability")
        from repro.reliability import FaultInjector

        sets, labels = _classification_task(rng)
        model = DeepSetsModel(20, 2, (4,), (4,), rng=rng)
        loader = SetDataLoader(sets, labels, batch_size=32, rng=rng)
        profiler = _make_profiler()
        config = TrainConfig(
            epochs=4, loss="bce", lr=5e-3,
            max_divergence_retries=3, lr_backoff=0.5,
        )
        with FaultInjector(nan_losses=1):
            Trainer(model, config, profiler=profiler).fit(loader)
        assert _value(profiler, "repro_training_divergences_total") == 1
        assert _value(profiler, "repro_training_lr_backoffs_total") == 1
        assert _value(profiler, "repro_training_lr") == pytest.approx(5e-3 * 0.5)


class TestGuidedFitHooks:
    def _run(self, rng, profiler, removal, epochs=6):
        sets = [[i % 5] for i in range(20)]
        targets = np.arange(20, dtype=np.float64) % 10
        model = DeepSetsModel(6, 2, (4,), (4,), rng=rng)
        scaler = LogMinMaxScaler.from_bounds(0, 10)
        return guided_fit(
            model,
            sets,
            targets,
            scaler,
            TrainConfig(epochs=epochs, seed=0),
            removal=removal,
            rng=np.random.default_rng(0),
            profiler=profiler,
        )

    def test_evictions_counted(self, rng):
        profiler = _make_profiler()
        result = self._run(
            rng, profiler,
            OutlierRemovalConfig(percentile=80.0, at_epochs=(2,)),
        )
        assert result.num_outliers > 0
        assert (
            _value(profiler, "repro_training_evictions_total")
            == result.num_outliers
        )
        assert (
            _value(profiler, "repro_training_active_samples")
            == 20 - result.num_outliers
        )

    def test_budget_hits_counted(self, rng):
        profiler = _make_profiler()
        result = self._run(
            rng, profiler,
            OutlierRemovalConfig(
                percentile=1.0, at_epochs=(1, 2, 3, 4), max_fraction_removed=0.1
            ),
        )
        assert result.budget_hits >= 1
        assert (
            _value(profiler, "repro_training_eviction_budget_hits_total")
            == result.budget_hits
        )
