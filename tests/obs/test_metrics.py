"""MetricsRegistry: kinds, labels, exposition, thread safety, pickling."""

from __future__ import annotations

import math
import pickle
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    global_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_reset(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0

    def test_callback_backed_gauge_reads_live_state(self):
        state = {"n": 1}
        gauge = MetricsRegistry().gauge_function("g", "", lambda: state["n"])
        assert gauge.value == 1
        state["n"] = 7
        assert gauge.value == 7

    def test_callback_exception_renders_nan_not_crash(self):
        registry = MetricsRegistry()
        registry.gauge_function("g", "", lambda: 1 / 0)
        assert math.isnan(registry.get("g").value)
        assert "NaN" in registry.render_text() or "nan" in registry.render_text()


class TestHistogram:
    def test_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        samples = dict()
        for suffix, labels, value in registry.get("h")._default().samples():
            samples[(suffix, labels.get("le"))] = value
        assert samples[("_bucket", "0.1")] == 1
        assert samples[("_bucket", "1")] == 3
        assert samples[("_bucket", "10")] == 4
        assert samples[("_bucket", "+Inf")] == 5
        assert samples[("_count", None)] == 5
        assert samples[("_sum", None)] == pytest.approx(56.05)

    def test_buckets_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h_empty", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h_dup", buckets=(1.0, 1.0))

    def test_default_buckets_cover_serving_latencies(self):
        assert DEFAULT_LATENCY_BUCKETS == tuple(sorted(DEFAULT_LATENCY_BUCKETS))
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-4
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 1.0


class TestLabels:
    def test_per_labelset_children_are_distinct(self):
        family = MetricsRegistry().counter("c_total", labelnames=("kind",))
        family.labels(kind="a").inc()
        family.labels(kind="a").inc()
        family.labels(kind="b").inc(5)
        assert family.labels(kind="a").value == 2
        assert family.per_label_values() == {("a",): 2, ("b",): 5}

    def test_wrong_labelset_rejected(self):
        family = MetricsRegistry().counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            family.labels(other="x")

    def test_labelled_family_rejects_default_child_proxy(self):
        family = MetricsRegistry().counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            family.inc()

    def test_label_values_escaped_in_exposition(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("q",)).labels(q='a"b\\c\nd').inc()
        text = registry.render_text()
        assert 'q="a\\"b\\\\c\\nd"' in text


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x", labelnames=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok", labelnames=("bad-label",))

    def test_render_text_structure(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests").inc(3)
        registry.gauge("temp", "Temperature").set(21.5)
        text = registry.render_text()
        assert "# HELP req_total Requests" in text
        assert "# TYPE req_total counter" in text
        assert "req_total 3" in text
        assert "# TYPE temp gauge" in text
        assert "temp 21.5" in text
        assert text.endswith("\n")

    def test_no_duplicate_type_lines(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.counter("a_total").inc()
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        type_names = [
            line.split()[2]
            for line in registry.render_text().splitlines()
            if line.startswith("# TYPE ")
        ]
        assert len(type_names) == len(set(type_names))

    def test_as_dict_flattens_labels(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("k",)).labels(k="x").inc(2)
        assert registry.as_dict() == {'c_total{k="x"}': 2}

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()


class TestThreadSafety:
    def test_concurrent_increments_conserve_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        histogram = registry.histogram("h", buckets=(0.5,))
        threads = 8
        per_thread = 10_000

        def hammer() -> None:
            for i in range(per_thread):
                counter.inc()
                histogram.observe(i % 2)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value == threads * per_thread
        assert registry.get("h")._default().count == threads * per_thread

    def test_concurrent_registration_returns_one_family(self):
        registry = MetricsRegistry()
        seen = []

        def register() -> None:
            seen.append(registry.counter("same_total"))

        workers = [threading.Thread(target=register) for _ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(family is seen[0] for family in seen)


class TestPickling:
    def test_registry_round_trips_without_locks(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.gauge("g").set(2.5)
        restored = pickle.loads(pickle.dumps(registry))
        assert restored.get("c_total").value == 3
        assert restored.get("g").value == 2.5
        restored.counter("c_total").inc()  # lock was recreated
        assert restored.get("c_total").value == 4

    def test_callback_gauge_drops_its_function(self):
        registry = MetricsRegistry()
        registry.gauge_function("g", "", lambda: 42.0)
        registry.get("g").set(1.0)
        restored = pickle.loads(pickle.dumps(registry))
        assert restored.get("g").value == 1.0  # value-backed after restore
