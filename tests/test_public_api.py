"""Public-API surface tests: exports exist, are documented, and cohere."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = (
    "repro.nn",
    "repro.sets",
    "repro.baselines",
    "repro.core",
    "repro.datasets",
    "repro.engine",
    "repro.obs",
    "repro.serve",
    "repro.infer",
    "repro.scenario",
    "repro.bench",
)


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_version(self):
        assert repro.__version__


class TestDocumentation:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_every_public_item_documented(self, module_name):
        """Every exported class/function carries a docstring."""
        module = importlib.import_module(module_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_classes_have_documented_methods(self):
        """Spot-check the main user-facing classes."""
        from repro import (
            LearnedBloomFilter,
            LearnedCardinalityEstimator,
            LearnedSetIndex,
            SetCollection,
        )

        for cls in (
            SetCollection,
            LearnedCardinalityEstimator,
            LearnedSetIndex,
            LearnedBloomFilter,
        ):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"


class TestCrossModuleCoherence:
    def test_quickstart_from_readme(self):
        """The README quickstart snippet runs as written."""
        from repro import InvertedIndex, SetCollection

        collection = SetCollection.from_token_sets(
            [
                ["#pizza", "#dinner", "#foodie"],
                ["#date", "#dinner"],
                ["#pizza", "#dinner", "#date"],
                ["#pizza", "#dinner", "#italian"],
            ]
        )
        query = collection.vocab.encode(["#pizza", "#dinner"])
        assert InvertedIndex(collection).cardinality(query) == 3

    def test_model_config_builds_both_model_classes(self):
        from repro import CompressedDeepSetsModel, DeepSetsModel, ModelConfig

        assert isinstance(ModelConfig(kind="lsm").build(10), DeepSetsModel)
        assert isinstance(ModelConfig(kind="clsm").build(10), CompressedDeepSetsModel)
