"""Tests for the dataset registry and scaling."""

from __future__ import annotations

import pytest

from repro.datasets import DATASETS, dataset_names, load_dataset, repro_scale


class TestRegistry:
    def test_all_five_paper_datasets_present(self):
        assert set(dataset_names()) == {
            "rw-small",
            "rw-mid",
            "rw-large",
            "tweets",
            "sd",
        }
        paper_names = {spec.paper_name for spec in DATASETS.values()}
        assert paper_names == {"RW-200k", "RW-1.5M", "RW-3M", "Tweets", "SD"}

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_scale_parameter(self):
        small = load_dataset("sd", scale=0.1)
        smaller = load_dataset("sd", scale=0.05)
        assert len(small) > len(smaller) >= 100

    def test_rw_sizes_ordered(self):
        specs = DATASETS
        assert (
            specs["rw-small"].base_num_sets
            < specs["rw-mid"].base_num_sets
            < specs["rw-large"].base_num_sets
        )

    def test_generation_deterministic(self):
        a = load_dataset("tweets", scale=0.05)
        b = load_dataset("tweets", scale=0.05)
        assert list(a) == list(b)


class TestReproScale:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert repro_scale() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert repro_scale() == 0.5

    def test_invalid_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError):
            repro_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            repro_scale()

    def test_spec_generate_uses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        collection = DATASETS["sd"].generate()
        assert len(collection) == max(int(3000 * 0.05), 100)
