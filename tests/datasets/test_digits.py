"""Tests for the sum-of-digits task data (Figure 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import digit_sum_eval_data, digit_sum_training_data


class TestTrainingData:
    def test_labels_are_sums(self):
        sets, sums = digit_sum_training_data(100, seed=0)
        for s, total in zip(sets, sums):
            assert sum(s) == total

    def test_sizes_within_cap(self):
        sets, _ = digit_sum_training_data(200, max_set_size=10, seed=0)
        assert all(1 <= len(s) <= 10 for s in sets)

    def test_digit_range(self):
        sets, _ = digit_sum_training_data(200, max_digit=10, seed=0)
        values = {d for s in sets for d in s}
        assert min(values) >= 1
        assert max(values) <= 10

    def test_multisets_allowed(self):
        sets, _ = digit_sum_training_data(500, max_set_size=10, max_digit=3, seed=0)
        assert any(len(set(s)) < len(s) for s in sets)

    def test_larger_digit_universe(self):
        sets, _ = digit_sum_training_data(100, max_digit=100, seed=0)
        assert max(d for s in sets for d in s) > 10


class TestEvalData:
    def test_fixed_size(self):
        sets, sums = digit_sum_eval_data(set_size=25, num_samples=50, seed=0)
        assert all(len(s) == 25 for s in sets)
        assert len(sums) == 50

    def test_labels_are_sums(self):
        sets, sums = digit_sum_eval_data(set_size=7, num_samples=30, seed=0)
        np.testing.assert_array_equal([sum(s) for s in sets], sums)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            digit_sum_eval_data(set_size=0, num_samples=5)
