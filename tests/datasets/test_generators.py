"""Tests for the dataset generators and their Table 2-style properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    generate_rw_like,
    generate_sd,
    generate_tweets_like,
    sample_zipf_sets,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized(self):
        assert zipf_weights(100, 1.1).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.3)
        assert np.all(np.diff(weights) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, 0.0)


class TestSampleZipfSets:
    def test_respects_sizes(self):
        rng = np.random.default_rng(0)
        sizes = np.array([2, 3, 4, 5])
        sets = sample_zipf_sets(4, 100, sizes, 1.1, rng)
        assert [len(s) for s in sets] == [2, 3, 4, 5]

    def test_elements_distinct_within_set(self):
        rng = np.random.default_rng(1)
        sizes = np.full(50, 5)
        for s in sample_zipf_sets(50, 30, sizes, 1.5, rng):
            assert len(set(s)) == len(s)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sample_zipf_sets(3, 10, np.array([2, 2]), 1.0, np.random.default_rng(0))

    def test_head_elements_more_frequent(self):
        rng = np.random.default_rng(2)
        sets = sample_zipf_sets(500, 200, np.full(500, 4), 1.3, rng)
        counts = np.zeros(200)
        for s in sets:
            counts[list(s)] += 1
        assert counts[0] > counts[100:].max()


class TestRWLike:
    def test_set_size_range(self):
        collection = generate_rw_like(500, seed=0)
        stats = collection.stats()
        assert stats.min_set_size >= 2
        assert stats.max_set_size <= 8

    def test_sparse_vocabulary(self):
        """Most elements appear in only a few sets — the RW signature."""
        collection = generate_rw_like(2000, seed=0)
        frequencies = collection.element_frequencies()
        present = frequencies[frequencies > 0]
        assert np.median(present) <= 5

    def test_deterministic(self):
        a = generate_rw_like(200, seed=3)
        b = generate_rw_like(200, seed=3)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = generate_rw_like(200, seed=3)
        b = generate_rw_like(200, seed=4)
        assert list(a) != list(b)


class TestTweetsLike:
    def test_small_sets_dominate(self):
        collection = generate_tweets_like(2000, seed=0)
        sizes = np.array([len(s) for s in collection])
        assert np.median(sizes) <= 3
        assert sizes.max() <= 12

    def test_skewed_cardinalities(self):
        collection = generate_tweets_like(2000, seed=0)
        frequencies = collection.element_frequencies()
        present = frequencies[frequencies > 0]
        # Head vs tail ratio is large under Zipf.
        assert present.max() > 20 * np.median(present)


class TestSD:
    def test_set_sizes_six_or_seven(self):
        collection = generate_sd(500, seed=0)
        sizes = {len(s) for s in collection}
        assert sizes <= {6, 7}

    def test_small_vocabulary_high_reuse(self):
        collection = generate_sd(1000, vocab_size=200, seed=0)
        stats = collection.stats()
        assert stats.num_unique_elements <= 200
        # Elements recur across many sets (the high-cardinality regime).
        assert stats.max_cardinality > 50

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_sd(10, min_size=5, max_size=4)
        with pytest.raises(ValueError):
            generate_sd(10, vocab_size=2, base_subset_size=3)
