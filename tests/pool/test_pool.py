"""WorkerPool lifecycle: routing, telemetry, mutations, and swaps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import PoolError, WorkerPool
from repro.serve.pool import _HashRing

from .conftest import QUERIES, future_outcome, seed_note, wait_until


def test_pool_answers_match_direct_estimates(estimator):
    with WorkerPool(estimator, workers=2) as pool:
        assert pool.kind == "cardinality"
        assert pool.workers_alive == 2, seed_note("not all workers came up")
        for query in QUERIES[:12]:
            assert pool.query(query) == pytest.approx(
                estimator.estimate(query), rel=1e-6
            ), seed_note(f"pool diverged from direct estimate on {query}")


def test_pool_requires_at_least_one_worker(estimator):
    with pytest.raises(ValueError):
        WorkerPool(estimator, workers=0)


def test_submit_many_preserves_order(estimator):
    queries = QUERIES[:20]
    with WorkerPool(estimator, workers=2) as pool:
        answers = pool.query_many(queries)
    expected = [estimator.estimate(query) for query in queries]
    assert answers == pytest.approx(expected, rel=1e-6), seed_note(
        "batched pool answers lost their order"
    )


def test_hash_ring_is_stable_and_covers_all_workers():
    ring = _HashRing(4)
    keys = [repr((i, i + 1)).encode() for i in range(200)]
    routed = [ring.route(key) for key in keys]
    # Stable: the same key always lands on the same worker.
    assert routed == [ring.route(key) for key in keys]
    # Covering: every worker owns a slice of a 200-key space.
    assert set(routed) == {0, 1, 2, 3}
    # Independent instances agree (the front-end can rebuild the ring).
    assert routed == [_HashRing(4).route(key) for key in keys]


def test_mutations_reach_master_and_every_replica(collection):
    from tests.serve.conftest import train_estimator

    estimator = train_estimator(collection)
    with WorkerPool(estimator, workers=2) as pool:
        before = pool.query((0, 1))
        pool.record_update((0, 1), 2)
        # The master (mutation source of truth) sees the delta...
        assert estimator.estimate((0, 1)) != before
        # ...and so does whichever replica serves the routed query.
        assert pool.query((0, 1)) == pytest.approx(
            estimator.estimate((0, 1)), rel=1e-6
        ), seed_note("replica missed a broadcast mutation")


def test_wrong_kind_mutation_is_rejected(estimator):
    with WorkerPool(estimator, workers=1) as pool:
        with pytest.raises(TypeError):
            pool.insert((0, 1))


def test_swap_rolls_every_worker_to_the_new_generation(collection):
    from tests.serve.conftest import train_estimator

    old = train_estimator(collection, seed=1)
    new = train_estimator(collection, seed=2)
    with WorkerPool(old, workers=2) as pool:
        first_generation = pool.plan_registry.generation
        snapshot = pool.swap(new)
        assert snapshot.structure is new
        assert pool.plan_registry.generation == first_generation + 1
        for info in pool.workers_info():
            assert info["generation"] == pool.plan_registry.generation, (
                seed_note(f"worker {info['worker']} stuck on an old generation")
            )
        assert pool.query((1, 2)) == pytest.approx(
            new.estimate((1, 2)), rel=1e-6
        ), seed_note("post-swap answers still come from the old structure")


def test_swap_rejects_kind_mismatch(estimator, bloom):
    with WorkerPool(estimator, workers=1) as pool:
        with pytest.raises(TypeError):
            pool.swap(bloom)


def test_stats_and_metrics_aggregate_workers(estimator):
    with WorkerPool(estimator, workers=2) as pool:
        pool.query_many(QUERIES[:10])
        stats = pool.stats_dict()
        assert stats["kind"] == "cardinality"
        assert stats["workers_alive"] == 2
        assert set(stats["per_worker"]) == {"0", "1"}, seed_note(
            "a live worker is missing from stats_dict"
        )
        assert stats["pool"]["repro_pool_requests_total"] >= 10
        text = pool.metrics_text()
        assert "repro_pool_workers_alive" in text
        assert 'worker="0"' in text and 'worker="1"' in text, seed_note(
            "worker labels missing from the merged exposition"
        )
        # Comment lines are deduped across worker sections: both workers
        # expose repro_serve_* families, but each HELP appears once.
        help_lines = [
            line for line in text.splitlines()
            if line.startswith("# HELP repro_serve_requests_served_total")
        ]
        assert len(help_lines) == 1, seed_note(
            "worker expositions were not merged/deduped"
        )


def test_trace_spans_carry_worker_attribution(estimator):
    with WorkerPool(estimator, workers=2) as pool:
        pool.query_many(QUERIES[:8])
        spans = pool.trace_spans(50)
        worker_spans = [span for span in spans if "worker" in span]
        assert worker_spans, seed_note("no worker-attributed spans surfaced")
        assert {span["worker"] for span in worker_spans} <= {0, 1}


def test_closed_pool_sheds_to_exact(estimator, truth):
    pool = WorkerPool(estimator, workers=1, exact=truth)
    pool.start()
    baseline = pool.query((1, 2))
    pool.close()
    # After close, routed queries shed to the exact path: a defined
    # answer, not a hang and not an exception.
    answer = pool.query((1, 2))
    assert answer == float(truth.cardinality((1, 2))), seed_note(
        "post-close shed path did not answer exactly"
    )
    assert isinstance(baseline, float)


def test_pool_without_exact_fails_loudly_when_down(estimator):
    # A bare estimator carries no collection, so no exact index can be
    # derived: down-worker queries must fail with a defined error.
    pool = WorkerPool(estimator, workers=1)
    assert pool._exact is None
    pool.start()
    pool.close()
    with pytest.raises(PoolError):
        pool.query((1, 2))


def test_context_manager_restarts_are_independent(estimator):
    for _ in range(2):
        with WorkerPool(estimator, workers=1) as pool:
            assert isinstance(pool.query((0, 1)), float)


def test_empty_query_has_defined_semantics(estimator, index, bloom):
    for structure in (estimator, index, bloom):
        with WorkerPool(structure, workers=1) as pool:
            result = future_outcome(pool.submit(()))
            direct = None
            try:
                if pool.kind == "cardinality":
                    direct = ("ok", structure.estimate(()))
                elif pool.kind == "index":
                    direct = ("ok", structure.lookup(()))
                else:
                    direct = ("ok", structure.contains(()))
            except Exception as exc:
                direct = ("err", type(exc).__name__, str(exc))
            assert result == direct, seed_note(
                f"empty-query contract diverged for kind={pool.kind}"
            )
