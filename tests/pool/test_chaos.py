"""Worker-crash chaos: SIGKILL mid-batch, respawn, no silent drops."""

from __future__ import annotations

import os
import signal

import pytest

from repro.serve import PoolError, WorkerPool

from .conftest import QUERIES, future_outcome, seed_note, wait_until


def _kill_worker(pool, index: int = 0) -> int:
    pid = pool._slots[index].process.pid
    os.kill(pid, signal.SIGKILL)
    return pid


def test_sigkill_mid_batch_drops_nothing(estimator, truth):
    """Every query admitted before the kill resolves: answered by a
    replica, shed to exact, or a defined error — never a hung future."""
    queries = QUERIES[:40]
    with WorkerPool(estimator, workers=2, exact=truth) as pool:
        futures = pool.submit_many(queries)
        _kill_worker(pool, 0)
        outcomes = [future_outcome(future, timeout=30.0) for future in futures]
        for query, result in zip(queries, outcomes):
            assert result[0] in ("ok", "err"), seed_note(
                f"query {query!r} resolved to neither answer nor error"
            )
            if result[0] == "ok":
                assert isinstance(result[1], float), seed_note(
                    f"query {query!r} returned a non-answer {result[1]!r}"
                )
        # At least the kill itself must not have failed anything silently:
        # the pool counters account for every admitted query.
        stats = pool.stats_dict()["pool"]
        accounted = (
            stats["repro_pool_served_total"]
            + stats["repro_pool_failed_total"]
            + stats["repro_pool_shed_total"]
        )
        assert accounted >= len(queries), seed_note(
            f"pool counters account for {accounted} < {len(queries)} queries"
        )


def test_killed_worker_respawns_and_serves(estimator, truth):
    with WorkerPool(estimator, workers=2, exact=truth) as pool:
        old_pid = _kill_worker(pool, 0)
        assert wait_until(
            lambda: pool._slots[0].alive
            and pool._slots[0].process.pid != old_pid,
            timeout=30.0,
        ), seed_note("worker 0 did not respawn after SIGKILL")
        info = pool.workers_info()[0]
        assert info["respawns"] == 1
        assert info["generation"] == pool.plan_registry.generation, seed_note(
            "respawned worker attached a stale generation"
        )
        # The respawned worker serves its keyspace slice again.
        for query in QUERIES[:12]:
            assert pool.query(query) == pytest.approx(
                estimator.estimate(query), rel=1e-6
            ), seed_note(f"post-respawn answer diverged on {query!r}")


def test_respawned_replica_remembers_mutations(collection, truth):
    """A replica that died after a mutation must come back with it — the
    respawn re-pickles the master, the mutation source of truth."""
    from tests.serve.conftest import train_estimator

    estimator = train_estimator(collection)
    with WorkerPool(estimator, workers=2, exact=truth) as pool:
        pool.record_update((0, 1), 9)
        expected = estimator.estimate((0, 1))
        old_pid = _kill_worker(pool, 0)
        assert wait_until(
            lambda: pool._slots[0].alive
            and pool._slots[0].process.pid != old_pid,
            timeout=30.0,
        ), seed_note("worker did not respawn")
        assert pool.query((0, 1)) == pytest.approx(expected, rel=1e-6), (
            seed_note("respawned replica forgot a pre-crash mutation")
        )


def test_exhausted_respawn_budget_sheds_to_exact(estimator, truth):
    with WorkerPool(
        estimator, workers=2, exact=truth, max_respawns=0
    ) as pool:
        victim = None
        # Find the worker that owns this query's slice and kill it.
        probe = (1, 2)
        from repro.serve.pool import canonical_query

        key = repr(canonical_query(probe)).encode()
        victim = pool._ring.route(key)
        _kill_worker(pool, victim)
        assert wait_until(
            lambda: not pool._slots[victim].alive, timeout=30.0
        ), seed_note("kill was not detected")
        # Budget exhausted: the slot stays down, its slice sheds to exact.
        answer = pool.query(probe)
        assert answer == float(truth.cardinality(probe)), seed_note(
            "shed path did not produce the exact answer"
        )
        assert pool.workers_info()[victim]["alive"] is False


def test_bloom_no_false_negatives_through_crashes(bloom, collection, truth):
    """The Bloom contract (no false negatives on stored sets) must hold
    through a worker crash: shed answers come from the exact index."""
    stored = [tuple(s) for s in collection]
    with WorkerPool(bloom, workers=2, exact=truth) as pool:
        before = [pool.query(query) for query in stored]
        assert all(before), seed_note(
            "false negative on a stored set before any crash"
        )
        old_pid = _kill_worker(pool, 0)
        # Immediately after the kill (respawn may or may not have landed),
        # stored sets must still answer True.
        during = [pool.query(query) for query in stored]
        assert all(during), seed_note(
            "false negative on a stored set while a worker was down"
        )
        assert wait_until(
            lambda: pool._slots[0].alive
            and pool._slots[0].process.pid != old_pid,
            timeout=30.0,
        ), seed_note("worker did not respawn")
        after = [pool.query(query) for query in stored]
        assert all(after), seed_note(
            "false negative on a stored set after respawn"
        )


def test_ctl_waiters_get_defined_errors_on_crash(estimator, truth):
    """A control request in flight when the worker dies resolves to a
    PoolError naming the worker — never a hang."""
    with WorkerPool(estimator, workers=1, exact=truth) as pool:
        slot = pool._slots[0]
        # Stall the worker with a big batch, then race a ctl against the
        # kill; whichever way the race lands, the future must resolve.
        pool.submit_many(QUERIES)
        future = pool._ctl(slot, "stats", None)
        _kill_worker(pool, 0)
        try:
            result = future.result(timeout=30.0)
            assert isinstance(result, dict)
        except PoolError:
            pass  # defined error is equally acceptable
        except Exception as exc:  # pragma: no cover - diagnostic clarity
            pytest.fail(
                seed_note(f"ctl future resolved to unexpected {exc!r}")
            )
