"""Shared-memory hygiene: no segment outlives its generation or the pool.

These tests enumerate ``/dev/shm`` by the registry's name prefix — the
strongest possible oracle: if a name is linked there, it leaks kernel
memory until reboot, whatever our bookkeeping claims.
"""

from __future__ import annotations

import pytest

from repro.infer import shm_dir_names
from repro.serve import WorkerPool

from .conftest import QUERIES, seed_note, wait_until


pytestmark = pytest.mark.skipif(
    shm_dir_names() is None, reason="no /dev/shm on this platform"
)


def _linked(prefix: str) -> list[str]:
    return [name for name in (shm_dir_names() or []) if name.startswith(prefix)]


def test_shutdown_unlinks_every_segment(frozen_estimator):
    pool = WorkerPool(frozen_estimator, workers=2)
    prefix = pool.plan_registry.prefix
    pool.start()
    assert _linked(prefix), seed_note(
        "pool started without publishing any plan segment"
    )
    pool.query_many(QUERIES[:8])
    pool.close()
    assert _linked(prefix) == [], seed_note(
        f"segments leaked in /dev/shm after close: {_linked(prefix)}"
    )


def test_each_swap_retires_the_previous_generation(collection):
    import numpy as np

    from repro.core import LearnedCardinalityEstimator, TrainConfig
    from repro.infer import freeze_structure

    from .conftest import SEED, small_model_config

    def frozen(seed: int):
        structure = LearnedCardinalityEstimator.build(
            collection,
            model_config=small_model_config(),
            train_config=TrainConfig(
                epochs=2, batch_size=64, lr=5e-3, loss="mse", seed=seed
            ),
            max_subset_size=3,
            rng=np.random.default_rng(seed),
        )
        freeze_structure(
            structure, dtypes=("float64", "float32"), active="float32"
        )
        return structure

    with WorkerPool(frozen(SEED), workers=2) as pool:
        prefix = pool.plan_registry.prefix
        seen_after_swap = []
        for round_index in range(3):
            pool.swap(frozen(SEED + round_index + 1))
            current = set(pool.plan_registry.current.segment_names)
            linked = set(_linked(prefix))
            assert linked == current, seed_note(
                f"swap {round_index}: /dev/shm holds {sorted(linked)} but "
                f"the live generation is {sorted(current)}"
            )
            seen_after_swap.append(sorted(linked))
            # Traffic keeps flowing on the fresh generation.
            assert isinstance(pool.query((1, 2)), float)
        # Each generation used fresh names (no silent reuse).
        flattened = [name for names in seen_after_swap for name in names]
        assert len(set(flattened)) == len(flattened)
    assert _linked(prefix) == [], seed_note("segments survived pool close")


def test_old_generation_reader_finishes_before_unlink(frozen_estimator, collection):
    """A batch in flight during a swap still answers correctly: the worker
    closes its old mapping only after the dispatcher drains, and POSIX
    keeps unlinked pages valid until that close."""
    import numpy as np

    from repro.core import LearnedCardinalityEstimator, TrainConfig
    from repro.infer import freeze_structure

    from .conftest import SEED, small_model_config

    new = LearnedCardinalityEstimator.build(
        collection,
        model_config=small_model_config(),
        train_config=TrainConfig(
            epochs=2, batch_size=64, lr=5e-3, loss="mse", seed=SEED + 77
        ),
        max_subset_size=3,
        rng=np.random.default_rng(SEED + 77),
    )
    freeze_structure(new, dtypes=("float64", "float32"), active="float32")

    with WorkerPool(frozen_estimator, workers=2) as pool:
        # Pile a large batch onto the old generation, then swap while the
        # workers are (very likely) still chewing on it.
        futures = pool.submit_many(QUERIES * 4)
        pool.swap(new)
        answers = [future.result(timeout=60.0) for future in futures]
        assert all(isinstance(answer, float) for answer in answers), (
            seed_note("a mid-swap batch lost answers")
        )
        # After the swap settles, only the new generation remains linked.
        prefix = pool.plan_registry.prefix
        assert wait_until(
            lambda: set(_linked(prefix))
            == set(pool.plan_registry.current.segment_names),
            timeout=30.0,
        ), seed_note("old generation was not retired after the swap drained")


def test_worker_crash_does_not_unlink_live_generation(frozen_estimator):
    import os
    import signal

    with WorkerPool(frozen_estimator, workers=2) as pool:
        prefix = pool.plan_registry.prefix
        live_before = set(_linked(prefix))
        pid = pool._slots[0].process.pid
        os.kill(pid, signal.SIGKILL)
        assert wait_until(
            lambda: pool._slots[0].alive
            and pool._slots[0].process.pid != pid,
            timeout=30.0,
        ), seed_note("worker did not respawn")
        assert set(_linked(prefix)) == live_before, seed_note(
            "a worker crash changed the set of linked segments"
        )
        # The survivor and the respawn both still answer.
        assert isinstance(pool.query((0, 1)), float)
