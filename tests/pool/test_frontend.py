"""AsyncTcpFrontend: protocol parity with the threaded TCP frontend."""

from __future__ import annotations

import json
import socket

import pytest

from repro.serve import AsyncTcpFrontend, SetServer, WorkerPool

from .conftest import seed_note


@pytest.fixture()
def pool_frontend(estimator, truth):
    with WorkerPool(estimator, workers=2, exact=truth) as pool:
        frontend = AsyncTcpFrontend(pool, port=0).start_background()
        try:
            yield frontend, pool
        finally:
            frontend.shutdown()


def _client(frontend):
    sock = socket.create_connection(frontend.address, timeout=10.0)
    return sock, sock.makefile("rw", encoding="utf-8", newline="\n")


def _ask(stream, line: str) -> str:
    stream.write(line + "\n")
    stream.flush()
    return stream.readline().strip()


def test_queries_and_errors_over_tcp(pool_frontend, estimator):
    frontend, _pool = pool_frontend
    sock, stream = _client(frontend)
    try:
        answer = _ask(stream, "1 2")
        assert answer == f"{estimator.estimate((1, 2)):.2f}", seed_note(
            "TCP answer diverged from the direct estimate"
        )
        assert _ask(stream, "bogus") == "error malformed query"
        assert _ask(stream, "9 9") == "error IndexError", seed_note(
            "OOV error contract not preserved over TCP"
        )
    finally:
        sock.close()


def test_stats_and_workers_verbs(pool_frontend):
    frontend, pool = pool_frontend
    sock, stream = _client(frontend)
    try:
        stats = json.loads(_ask(stream, "STATS"))
        assert stats["kind"] == "cardinality"
        assert stats["workers_alive"] == 2
        workers = json.loads(_ask(stream, "WORKERS"))
        assert [entry["worker"] for entry in workers] == [0, 1]
        assert all(entry["alive"] for entry in workers), seed_note(
            "WORKERS verb reported a dead worker in a healthy pool"
        )
    finally:
        sock.close()


def test_metrics_verb_is_terminated_and_worker_labeled(pool_frontend):
    frontend, _pool = pool_frontend
    sock, stream = _client(frontend)
    try:
        stream.write("METRICS\n")
        stream.flush()
        lines = []
        for line in stream:
            if line.strip() == "# EOF":
                break
            lines.append(line.rstrip("\n"))
        body = "\n".join(lines)
        assert "repro_pool_workers_alive" in body
        assert 'worker="0"' in body, seed_note(
            "merged exposition lost its worker labels over TCP"
        )
    finally:
        sock.close()


def test_trace_verb_returns_span_json(pool_frontend):
    frontend, pool = pool_frontend
    sock, stream = _client(frontend)
    try:
        _ask(stream, "0 1")
        spans = json.loads(_ask(stream, "TRACE 20"))
        assert isinstance(spans, list)
    finally:
        sock.close()


def test_refresh_without_maintainer_reports_disabled(pool_frontend):
    frontend, _pool = pool_frontend
    sock, stream = _client(frontend)
    try:
        status = json.loads(_ask(stream, "REFRESH"))
        assert status == {"auto_refresh": False}
    finally:
        sock.close()


def test_workers_verb_on_threaded_server_is_an_error(estimator):
    with SetServer(estimator) as server:
        frontend = AsyncTcpFrontend(server, port=0).start_background()
        try:
            sock, stream = _client(frontend)
            try:
                assert _ask(stream, "WORKERS") == "error not a worker pool"
                # Ordinary queries work against the threaded backend too:
                # the frontend is backend-agnostic.
                answer = _ask(stream, "1 2")
                assert answer == f"{server.query((1, 2)):.2f}"
            finally:
                sock.close()
        finally:
            frontend.shutdown()


def test_oversized_line_is_rejected_with_hangup(pool_frontend):
    frontend, _pool = pool_frontend
    sock, stream = _client(frontend)
    try:
        stream.write("1 " * 40000 + "\n")
        stream.flush()
        assert stream.readline().strip() == "error line too long"
        assert stream.readline() == "", seed_note(
            "frontend kept the connection open after an oversized line"
        )
    finally:
        sock.close()


def test_quit_closes_the_connection(pool_frontend):
    frontend, _pool = pool_frontend
    sock, stream = _client(frontend)
    try:
        stream.write("QUIT\n")
        stream.flush()
        assert stream.readline() == ""
    finally:
        sock.close()


def test_concurrent_connections_multiplex(pool_frontend, estimator):
    frontend, _pool = pool_frontend
    clients = [_client(frontend) for _ in range(8)]
    try:
        for i, (_sock, stream) in enumerate(clients):
            stream.write(f"{i % 5}\n")
            stream.flush()
        for i, (_sock, stream) in enumerate(clients):
            expected = f"{estimator.estimate((i % 5,)):.2f}"
            assert stream.readline().strip() == expected, seed_note(
                f"connection {i} got the wrong multiplexed answer"
            )
    finally:
        for sock, _stream in clients:
            sock.close()


def test_bind_failure_raises_in_start_background(estimator):
    with SetServer(estimator) as server:
        first = AsyncTcpFrontend(server, port=0).start_background()
        try:
            busy_port = first.address[1]
            second = AsyncTcpFrontend(server, port=busy_port)
            with pytest.raises(RuntimeError):
                second.start_background()
        finally:
            first.shutdown()
