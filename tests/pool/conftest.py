"""Shared fixtures for the multi-process serving-tier suite.

Structures are trained once per session (training dominates test time)
with the rotating ``REPRO_TEST_SEED`` so CI's seed rotation actually
exercises different weights; every multiprocess assertion echoes the seed
through :func:`seed_note` so a red run is reproducible from its message
alone.  Mutating tests must train their own structures — the session
fixtures are shared and read-only.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import (
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    TrainConfig,
)
from repro.infer import freeze_structure
from repro.reliability import (
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
)
from repro.sets import InvertedIndex, SetCollection
from repro.shard import ShardPlan, ShardedBuilder

from tests.serve.conftest import (  # noqa: F401  (re-exported for the suite)
    QUERIES,
    SETS,
    small_model_config,
    wait_until,
)

#: The rotating CI seed; every multiprocess assertion message echoes it.
SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))

#: Queries that exercise the error contracts alongside the happy path:
#: out-of-vocabulary ids, the empty set, and an oversized subset.
EDGE_QUERIES = [
    (9, 9),              # OOV: universe is 0..5
    (),                  # empty set
    (0, 1, 2, 3, 4, 5),  # oversized vs max_subset_size=3 training
    (7,),                # single OOV element
    (-1, 2),             # negative id
]


def seed_note(context: str = "") -> str:
    """Assertion-message suffix making any failure reproducible."""
    note = f"REPRO_TEST_SEED={SEED}"
    return f"{note} ({context})" if context else note


def outcome(call, *args):
    """Answer or error contract of one call: ``("ok", value)`` or
    ``("err", type_name, message)`` — the unit of cross-process parity."""
    try:
        return ("ok", call(*args))
    except Exception as exc:
        return ("err", type(exc).__name__, str(exc))


def future_outcome(future, timeout: float = 30.0):
    try:
        return ("ok", future.result(timeout=timeout))
    except Exception as exc:
        return ("err", type(exc).__name__, str(exc))


def _train_config(loss: str) -> TrainConfig:
    return TrainConfig(epochs=4, batch_size=64, lr=5e-3, loss=loss, seed=SEED)


@pytest.fixture(scope="session")
def collection() -> SetCollection:
    return SetCollection(SETS)


@pytest.fixture(scope="session")
def truth(collection) -> InvertedIndex:
    return InvertedIndex(collection)


@pytest.fixture(scope="session")
def estimator(collection) -> LearnedCardinalityEstimator:
    return LearnedCardinalityEstimator.build(
        collection,
        model_config=small_model_config(),
        train_config=_train_config("mse"),
        max_subset_size=3,
        rng=np.random.default_rng(SEED),
    )


@pytest.fixture(scope="session")
def index(collection) -> LearnedSetIndex:
    return LearnedSetIndex.build(
        collection,
        model_config=small_model_config(),
        train_config=_train_config("mse"),
        max_subset_size=3,
        rng=np.random.default_rng(SEED),
    )


@pytest.fixture(scope="session")
def bloom(collection) -> LearnedBloomFilter:
    return LearnedBloomFilter.build(
        collection,
        train_config=_train_config("bce"),
        max_subset_size=2,
        rng=np.random.default_rng(SEED),
    )


@pytest.fixture(scope="session")
def frozen_estimator(collection) -> LearnedCardinalityEstimator:
    """An estimator with attached float32 plans (the shm publication path)."""
    structure = LearnedCardinalityEstimator.build(
        collection,
        model_config=small_model_config(),
        train_config=_train_config("mse"),
        max_subset_size=3,
        rng=np.random.default_rng(SEED),
    )
    freeze_structure(structure, dtypes=("float64", "float32"), active="float32")
    return structure


@pytest.fixture(scope="session")
def guarded_estimator(estimator, collection) -> GuardedCardinalityEstimator:
    return GuardedCardinalityEstimator.for_collection(estimator, collection)


@pytest.fixture(scope="session")
def guarded_index(index) -> GuardedSetIndex:
    return GuardedSetIndex(index)


@pytest.fixture(scope="session")
def guarded_bloom(bloom, collection) -> GuardedBloomFilter:
    return GuardedBloomFilter.for_collection(bloom, collection)


def _sharded(collection, task: str):
    builder = ShardedBuilder(
        ShardPlan.contiguous(collection, 3),
        workers=1,
        base_seed=SEED,
        model_config=small_model_config(),
        train_config=TrainConfig(
            epochs=2, batch_size=64, lr=5e-3,
            loss="bce" if task == "bloom" else "mse", seed=SEED,
        ),
        max_subset_size=2 if task == "bloom" else 3,
    )
    return builder.build(task)


@pytest.fixture(scope="session")
def sharded_estimator(collection):
    return _sharded(collection, "cardinality")


@pytest.fixture(scope="session")
def sharded_index(collection):
    return _sharded(collection, "index")


@pytest.fixture(scope="session")
def sharded_bloom(collection):
    return _sharded(collection, "bloom")
