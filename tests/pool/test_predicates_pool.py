"""Predicate plumbing across the process boundary (ISSUE 9, pool layer).

The worker pool must (a) ship ``(rid, predicate_spec, query)`` batches to
its replicas and route every predicate to the same worker a plain subset
query of the same canonical would reach, (b) answer each predicate
identically to a direct in-process server over the same structure, and
(c) reject non-subset predicates on subset-only structures *before*
anything crosses a pipe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainConfig
from repro.core.predicate_suite import PredicateCardinalitySuite
from repro.reliability import GuardedPredicateSuite
from repro.serve import SetServer, WorkerPool
from repro.sets.predicates import DEFAULT_PREDICATES

from .conftest import EDGE_QUERIES, SEED, seed_note, small_model_config

SPECS = tuple(predicate.spec for predicate in DEFAULT_PREDICATES)

QUERIES = [(0, 1), (1, 2), (2, 3), (0,), (4, 5), (1, 2, 3), (5,)]


@pytest.fixture(scope="module")
def guarded_suite(collection) -> GuardedPredicateSuite:
    suite = PredicateCardinalitySuite.build(
        collection,
        model_config=small_model_config(),
        train_config=TrainConfig(
            epochs=3, batch_size=64, lr=5e-3, loss="mse", seed=SEED
        ),
        num_samples=200,
        max_subset_size=3,
        rng=np.random.default_rng(SEED),
    )
    return GuardedPredicateSuite.for_collection(suite, collection)


def test_pool_matches_direct_server_under_every_predicate(guarded_suite):
    with SetServer(guarded_suite, cache_size=0) as direct:
        direct_answers = {
            (spec, query): direct.query(query, predicate=spec)
            for spec in SPECS
            for query in QUERIES + EDGE_QUERIES
        }
    with WorkerPool(guarded_suite, workers=2) as pool:
        assert pool.supports_predicates()
        for (spec, query), expected in direct_answers.items():
            got = pool.query(query, predicate=spec)
            assert got == pytest.approx(expected), seed_note(
                f"predicate={spec} query={query}"
            )


def test_pool_batch_interleaves_predicates(guarded_suite):
    items = [(spec, query) for query in QUERIES for spec in SPECS]
    with WorkerPool(guarded_suite, workers=2) as pool:
        singles = [
            pool.query(query, predicate=spec) for spec, query in items
        ]
        for spec in SPECS:
            batch = pool.query_many(list(QUERIES), predicate=spec)
            expected = [
                value
                for (s, _), value in zip(items, singles)
                if s == spec
            ]
            assert list(batch) == pytest.approx(expected), seed_note(spec)


def test_subset_only_pool_rejects_other_predicates_up_front(estimator, truth):
    with WorkerPool(estimator, workers=1, exact=truth) as pool:
        assert not pool.supports_predicates()
        assert pool.query((0, 1)) >= 0.0  # subset unaffected
        for spec in SPECS[1:]:
            with pytest.raises(ValueError, match="cannot answer predicate"):
                pool.query((0, 1), predicate=spec)
            with pytest.raises(ValueError, match="cannot answer predicate"):
                pool.query_many([(0, 1)], predicate=spec)
