"""Cross-process differential parity: WorkerPool vs threaded SetServer.

The same query/mutation trace runs through the threaded tier and through
the multi-process tier, and every outcome — answers *and* error-string
contracts (OOV / empty / oversized inputs) — must be identical.  The
matrix covers all three structures in plain, guarded, and K=3 sharded
variants, so the pickle + pipe + shm path is proven equivalent to the
in-process path on every serving surface the repo has.
"""

from __future__ import annotations

import pytest

from repro.serve import SetServer, WorkerPool

from .conftest import EDGE_QUERIES, QUERIES, future_outcome, seed_note


def _trace_outcomes(backend, queries) -> list[tuple]:
    futures = [backend.submit(query) for query in queries]
    return [future_outcome(future) for future in futures]


def _assert_parity(threaded_trace, pool_trace, queries, label: str) -> None:
    for query, threaded, pooled in zip(queries, threaded_trace, pool_trace):
        assert pooled == threaded, seed_note(
            f"{label}: pool diverged from threaded server on {query!r}: "
            f"threaded={threaded!r} pool={pooled!r}"
        )


def _parity_case(structure, queries, workers: int = 2) -> None:
    with SetServer(structure) as server:
        threaded_trace = _trace_outcomes(server, queries)
    with WorkerPool(structure, workers=workers) as pool:
        pool_trace = _trace_outcomes(pool, queries)
    _assert_parity(
        threaded_trace, pool_trace, queries, type(structure).__name__
    )


WORKLOAD = QUERIES[:24] + EDGE_QUERIES + QUERIES[24:36]


@pytest.mark.parametrize(
    "fixture_name",
    [
        "estimator",
        "index",
        "bloom",
        "guarded_estimator",
        "guarded_index",
        "guarded_bloom",
        "sharded_estimator",
        "sharded_index",
        "sharded_bloom",
        "frozen_estimator",
    ],
)
def test_query_trace_parity(fixture_name, request):
    structure = request.getfixturevalue(fixture_name)
    _parity_case(structure, WORKLOAD)


def test_error_contracts_cross_the_process_boundary(estimator):
    """OOV errors must arrive with the same type AND message."""
    with SetServer(estimator) as server:
        threaded = _trace_outcomes(server, EDGE_QUERIES)
    with WorkerPool(estimator, workers=2) as pool:
        pooled = _trace_outcomes(pool, EDGE_QUERIES)
    _assert_parity(threaded, pooled, EDGE_QUERIES, "error contracts")
    # And the trace must actually contain errors (else this test proves
    # nothing about the error path).
    kinds = {outcome[0] for outcome in threaded}
    assert "err" in kinds, seed_note(
        "edge queries produced no errors on the unguarded estimator"
    )


def test_guarded_edges_answer_without_errors(guarded_estimator):
    """The guarded facade turns every edge into a defined answer — and the
    pool must preserve exactly that contract."""
    with SetServer(guarded_estimator) as server:
        threaded = _trace_outcomes(server, EDGE_QUERIES)
    with WorkerPool(guarded_estimator, workers=2) as pool:
        pooled = _trace_outcomes(pool, EDGE_QUERIES)
    assert all(outcome[0] == "ok" for outcome in threaded), seed_note(
        "guarded facade leaked an error on an edge query"
    )
    _assert_parity(threaded, pooled, EDGE_QUERIES, "guarded edges")


@pytest.mark.parametrize("task", ["cardinality", "index", "bloom"])
def test_mutation_trace_parity(task, collection):
    """Interleaved mutations and queries: pool replicas must agree with a
    threaded server applying the identical trace."""
    from tests.serve.conftest import train_estimator

    from repro.core import LearnedBloomFilter, LearnedSetIndex, TrainConfig
    from repro.sets import SetCollection

    import numpy as np

    from .conftest import SEED, small_model_config

    def build():
        if task == "cardinality":
            return train_estimator(collection, seed=SEED)
        if task == "index":
            return LearnedSetIndex.build(
                collection,
                model_config=small_model_config(),
                train_config=TrainConfig(
                    epochs=2, batch_size=64, lr=5e-3, loss="mse", seed=SEED
                ),
                max_subset_size=3,
                rng=np.random.default_rng(SEED),
            )
        return LearnedBloomFilter.build(
            collection,
            train_config=TrainConfig(
                epochs=2, batch_size=64, lr=5e-3, loss="bce", seed=SEED
            ),
            max_subset_size=2,
            rng=np.random.default_rng(SEED),
        )

    queries = QUERIES[:16]
    mutations = {
        "cardinality": [(("record_update"), ((0, 3), 5))],
        "index": [(("insert_update"), ((0, 3), 2))],
        "bloom": [(("insert"), ((3, 4, 5),))],
    }[task]

    threaded_structure = build()
    pool_structure = build()

    with SetServer(threaded_structure) as server:
        threaded_rounds = [_trace_outcomes(server, queries)]
        for op, args in mutations:
            getattr(server.structure, op)(*args)
        threaded_rounds.append(_trace_outcomes(server, queries))

    with WorkerPool(pool_structure, workers=2) as pool:
        pool_rounds = [_trace_outcomes(pool, queries)]
        for op, args in mutations:
            getattr(pool, op)(*args)
        pool_rounds.append(_trace_outcomes(pool, queries))

    for round_label, threaded, pooled in zip(
        ("before-mutation", "after-mutation"), threaded_rounds, pool_rounds
    ):
        _assert_parity(threaded, pooled, queries, f"{task} {round_label}")
