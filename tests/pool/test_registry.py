"""PlanRegistry: atomic generation swap and refcounted unlink."""

from __future__ import annotations

import numpy as np
import pytest

from repro.infer import PlanError, shm_dir_names
from repro.serve import PlanRegistry, RegistryError

from .conftest import seed_note


def _arrays(fill: float = 1.0) -> dict[str, np.ndarray]:
    return {"w": np.full((4, 2), fill), "v": np.arange(3.0)}


def _linked(prefix: str) -> list[str]:
    names = shm_dir_names() or []
    return [name for name in names if name.startswith(prefix)]


def test_publish_flips_current_atomically():
    with PlanRegistry() as registry:
        assert registry.current is None and registry.generation == 0
        first = registry.publish([_arrays(1.0)])
        assert registry.generation == first.generation == 1
        second = registry.publish([_arrays(2.0), None])
        assert registry.generation == second.generation == 2
        assert second.names[1] is None
        # The retired generation had no readers: unlinked immediately.
        assert first.unlinked
        assert registry.live_segment_names() == second.segment_names


def test_reader_refcount_defers_unlink():
    with PlanRegistry() as registry:
        first = registry.publish([_arrays(1.0)])
        acquired = registry.acquire()
        assert acquired is first and first.readers == 1
        registry.publish([_arrays(2.0)])
        assert first.retired and not first.unlinked, seed_note(
            "retired generation unlinked while a reader still held it"
        )
        assert first.segment_names[0] in _linked(registry.prefix)
        registry.release(first.generation)
        assert first.unlinked
        assert first.segment_names[0] not in _linked(registry.prefix)


def test_release_without_acquire_is_an_error():
    with PlanRegistry() as registry:
        record = registry.publish([_arrays()])
        with pytest.raises(RegistryError):
            registry.release(record.generation)


def test_acquire_unknown_generation_is_an_error():
    with PlanRegistry() as registry:
        registry.publish([_arrays()])
        with pytest.raises(RegistryError):
            registry.acquire(99)


def test_half_built_publication_leaks_nothing():
    registry = PlanRegistry()
    try:
        before = _linked(registry.prefix)
        with pytest.raises(PlanError):
            # The second part is unpackable: publish raises after the
            # first part's segment already exists.
            registry.publish([_arrays(), {"bad": object()}])
        assert _linked(registry.prefix) == before, seed_note(
            "a half-built generation leaked segments"
        )
        assert registry.current is None
    finally:
        registry.close()


def test_close_unlinks_everything_even_with_readers():
    registry = PlanRegistry()
    record = registry.publish([_arrays()])
    registry.acquire()
    registry.close()
    assert _linked(registry.prefix) == [], seed_note(
        "registry.close() left segments linked"
    )
    with pytest.raises(RegistryError):
        registry.publish([_arrays()])
    # Releasing after close is a harmless no-op (the record is gone).
    registry.release(record.generation)


def test_status_reports_generations_and_bytes():
    with PlanRegistry() as registry:
        registry.publish([_arrays()])
        registry.acquire()
        registry.publish([_arrays(2.0)])
        status = registry.status()
        assert status["generation"] == 2
        assert status["publishes"] == 2
        assert status["live_segments"] == 2
        generations = {g["generation"]: g for g in status["generations"]}
        assert generations[1]["retired"] and generations[1]["readers"] == 1
        assert all(g["bytes"] > 0 for g in status["generations"])
