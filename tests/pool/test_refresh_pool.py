"""Background refresh drives the pool: duck-typed swap, new generations.

The maintain tier was written against the threaded ``SetServer`` surface;
the pool exposes the same one (``structure`` / ``swap`` / ``kind`` /
``registry`` / ``tracer`` / ``snapshot`` / ``maintainer``), so a
:class:`BackgroundRefresher` must drive N worker processes exactly as it
drives one server — publishing a fresh shm generation per refresh.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LearnedCardinalityEstimator, TrainConfig
from repro.infer import freeze_structure
from repro.maintain import BackgroundRefresher, StalenessPolicy, default_rebuilder
from repro.serve import WorkerPool

from .conftest import SEED, seed_note, small_model_config, wait_until


@pytest.fixture()
def fresh_estimator(collection):
    structure = LearnedCardinalityEstimator.build(
        collection,
        model_config=small_model_config(),
        train_config=TrainConfig(
            epochs=2, batch_size=64, lr=5e-3, loss="mse", seed=SEED
        ),
        max_subset_size=3,
        rng=np.random.default_rng(SEED),
    )
    freeze_structure(structure, dtypes=("float64", "float32"), active="float32")
    return structure


def _rebuilder(structure, collection):
    return default_rebuilder(
        structure,
        collection=collection,
        model_config=small_model_config(),
        train_config=TrainConfig(
            epochs=2, batch_size=64, lr=5e-3, loss="mse", seed=SEED
        ),
        base_seed=SEED + 1,
    )


def test_manual_refresh_publishes_a_new_generation(fresh_estimator, collection, truth):
    with WorkerPool(fresh_estimator, workers=2, exact=truth) as pool:
        refresher = BackgroundRefresher(
            pool,
            _rebuilder(fresh_estimator, collection),
            policy=StalenessPolicy(max_deltas=None, max_aux_fraction=None),
            interval_s=30.0,
        )
        assert pool.maintainer is refresher
        generation_before = pool.plan_registry.generation
        version_before = pool.snapshot.version
        snapshot = refresher.refresh_now(("test",))
        assert snapshot.version == version_before + 1
        assert pool.plan_registry.generation == generation_before + 1, (
            seed_note("refresh did not publish a new shm generation")
        )
        for info in pool.workers_info():
            assert info["generation"] == pool.plan_registry.generation, (
                seed_note(f"worker {info['worker']} missed the refresh swap")
            )
        # Traffic still flows, against the refreshed structure.
        assert pool.query((1, 2)) == pytest.approx(
            pool.structure.estimate((1, 2)), rel=1e-6
        )
        status = refresher.status()
        assert status["refreshes"] == 1


def test_delta_pressure_trips_a_background_refresh(fresh_estimator, collection, truth):
    with WorkerPool(fresh_estimator, workers=2, exact=truth) as pool:
        with BackgroundRefresher(
            pool,
            _rebuilder(fresh_estimator, collection),
            policy=StalenessPolicy(
                max_deltas=3, max_aux_fraction=None, min_interval_s=0.0
            ),
            interval_s=0.05,
        ) as refresher:
            generation_before = pool.plan_registry.generation
            for _ in range(4):
                pool.record_update((0, 1), 4)
            assert wait_until(
                lambda: refresher.refreshes >= 1, timeout=30.0
            ), seed_note("delta pressure never tripped a refresh")
            assert wait_until(
                lambda: pool.plan_registry.generation > generation_before,
                timeout=30.0,
            ), seed_note("background refresh published no new generation")
            # The replayed mutation survives the rebuild-and-swap.
            assert isinstance(pool.query((0, 1)), float)


def test_refresh_status_flows_through_the_async_frontend(
    fresh_estimator, collection, truth
):
    import json
    import socket

    from repro.serve import AsyncTcpFrontend

    with WorkerPool(fresh_estimator, workers=2, exact=truth) as pool:
        with BackgroundRefresher(
            pool,
            _rebuilder(fresh_estimator, collection),
            policy=StalenessPolicy(max_deltas=None, max_aux_fraction=None),
            interval_s=30.0,
        ).start() as refresher:
            frontend = AsyncTcpFrontend(pool, port=0).start_background()
            try:
                sock = socket.create_connection(frontend.address, timeout=10.0)
                stream = sock.makefile("rw", encoding="utf-8", newline="\n")
                stream.write("REFRESH NOW\n")
                stream.flush()
                status = json.loads(stream.readline())
                assert status["auto_refresh"] is True
                assert status["refreshes"] == 1, seed_note(
                    "REFRESH NOW over the async frontend did not refresh"
                )
                assert status["snapshot_version"] == pool.snapshot.version
                sock.close()
            finally:
                frontend.shutdown()
            assert refresher.running
