"""Shared-memory plan packing: segment layout, attach, and ownership."""

from __future__ import annotations

import secrets

import numpy as np
import pytest

from repro.infer import (
    PlanError,
    attach_plan,
    attach_segment,
    create_segment,
    publish_plan,
    shm_dir_names,
)
from repro.infer.freeze import _raw_parts
from repro.infer.shm import pack_arrays_size

from .conftest import seed_note


def _name() -> str:
    return f"rptest{secrets.token_hex(4)}"


def _arrays() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    return {
        "weights": rng.normal(size=(5, 3)).astype(np.float32),
        "bias": rng.normal(size=(3,)),
        "ids": np.arange(11, dtype=np.int64),
        "empty": np.zeros((0, 2), dtype=np.float64),
    }


def test_segment_roundtrip_is_exact():
    arrays = _arrays()
    name = _name()
    with create_segment(name, arrays) as owner:
        reader = attach_segment(name)
        try:
            assert sorted(reader.arrays) == sorted(arrays)
            for key, expected in arrays.items():
                got = reader.arrays[key]
                assert got.dtype == expected.dtype
                assert got.shape == expected.shape
                np.testing.assert_array_equal(got, expected)
                assert not got.flags.writeable
        finally:
            reader.close()
        owner.unlink()


def test_reader_views_are_zero_copy():
    arrays = _arrays()
    name = _name()
    with create_segment(name, arrays) as owner:
        reader = attach_segment(name)
        try:
            view = reader.arrays["weights"]
            # A zero-copy view has no own data: its base chain reaches the
            # shared buffer rather than a private allocation.
            assert view.base is not None
        finally:
            reader.close()
        owner.unlink()


def test_only_the_owner_may_unlink():
    name = _name()
    with create_segment(name, _arrays()) as owner:
        reader = attach_segment(name)
        with pytest.raises(PlanError):
            reader.unlink()
        reader.close()
        owner.unlink()


def test_attach_rejects_foreign_segments():
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(create=True, size=64, name=_name())
    try:
        with pytest.raises(PlanError):
            attach_segment(shm.name)
    finally:
        shm.close()
        shm.unlink()


def test_pack_size_bounds_segment_size():
    arrays = _arrays()
    name = _name()
    with create_segment(name, arrays) as owner:
        assert owner.size <= pack_arrays_size(arrays)
        owner.unlink()


def test_close_is_idempotent_and_drops_views():
    name = _name()
    owner = create_segment(name, _arrays())
    reader = attach_segment(name)
    reader.close()
    reader.close()
    assert reader.arrays == {}
    owner.close()
    owner.unlink()


def test_plan_publication_roundtrip(frozen_estimator):
    (raw,) = _raw_parts(frozen_estimator)
    plan = raw.infer_plan
    assert plan is not None, seed_note("freeze_structure attached no plan")
    name = _name()
    segment = publish_plan(name, plan)
    try:
        reader_segment, rebuilt = attach_plan(name)
        try:
            queries = [(0, 1), (2,), (1, 2, 3)]
            expected = plan(queries)
            got = rebuilt(queries)
            assert np.array_equal(got, expected), seed_note(
                "shm plan answers diverged from the source plan"
            )
            assert rebuilt.weights_version == plan.weights_version
        finally:
            reader_segment.close()
    finally:
        segment.close()
        segment.unlink()


def test_unlink_removes_the_name_from_dev_shm():
    names = shm_dir_names()
    if names is None:
        pytest.skip("no /dev/shm on this platform")
    name = _name()
    segment = create_segment(name, _arrays())
    assert name in (shm_dir_names() or [])
    segment.close()
    segment.unlink()
    assert name not in (shm_dir_names() or []), seed_note(
        f"segment {name} leaked in /dev/shm after unlink"
    )
