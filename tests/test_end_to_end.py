"""End-to-end integration: datasets -> learned structures -> engine.

One scaled-down pass over the full pipeline the benchmarks run, checking
the cross-module contracts rather than individual behaviours.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    InvertedIndex,
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    ModelConfig,
    OutlierRemovalConfig,
    TrainConfig,
    mean_q_error,
)
from repro.datasets import generate_rw_like
from repro.engine import SetQueryEngine, SetTable
from repro.nn.serialize import load_state, save_state
from repro.sets import cardinality_training_pairs, sample_query_workload


@pytest.fixture(scope="module")
def world():
    collection = generate_rw_like(800, seed=99)
    truth = InvertedIndex(collection)
    return collection, truth


@pytest.fixture(scope="module")
def estimator(world):
    collection, _ = world
    return LearnedCardinalityEstimator.build(
        collection,
        model_config=ModelConfig(kind="clsm", embedding_dim=8, seed=0),
        train_config=TrainConfig(epochs=20, batch_size=512, lr=5e-3,
                                 loss="mse", seed=0),
        removal=OutlierRemovalConfig(percentile=90.0, at_epochs=(14,)),
        max_subset_size=3,
    )


class TestFullPipeline:
    def test_cardinality_accuracy_on_trained_corpus(self, world, estimator):
        collection, truth = world
        subsets, cards = cardinality_training_pairs(collection, max_subset_size=3)
        rng = np.random.default_rng(0)
        chosen = rng.choice(len(subsets), 200, replace=False)
        queries = [subsets[i] for i in chosen]
        exact = cards[chosen].astype(float)
        assert mean_q_error(estimator.estimate_many(queries), exact) < 2.5

    def test_index_round_trip(self, world):
        collection, truth = world
        index = LearnedSetIndex.build(
            collection,
            model_config=ModelConfig(kind="clsm", embedding_dim=8, seed=1),
            train_config=TrainConfig(epochs=20, batch_size=512, lr=5e-3,
                                     loss="mse", seed=1),
            removal=OutlierRemovalConfig(percentile=90.0, at_epochs=(14,)),
            max_subset_size=3,
            error_range_length=50,
        )
        queries = sample_query_workload(
            collection, 80, rng=np.random.default_rng(1), max_subset_size=3
        )
        for query in queries:
            assert index.lookup(query) == truth.first_position(query)

    def test_bloom_no_false_negatives(self, world):
        collection, _ = world
        bloom = LearnedBloomFilter.build(
            collection,
            model_config=ModelConfig(kind="clsm", embedding_dim=4,
                                     phi_hidden=(16,), rho_hidden=(16,), seed=2),
            train_config=TrainConfig(epochs=15, batch_size=512, lr=5e-3,
                                     loss="bce", seed=2),
            max_subset_size=2,
        )
        from repro.sets import positive_membership_samples

        for positive in positive_membership_samples(collection, max_subset_size=2):
            assert bloom.contains(positive)

    def test_estimator_as_engine_udf(self, world, estimator):
        collection, truth = world
        engine = SetQueryEngine(SetTable.from_collection(collection))
        engine.create_gin_index()
        engine.register_udf("clsm", estimator.estimate)
        queries = sample_query_workload(
            collection, 30, rng=np.random.default_rng(2), max_subset_size=2
        )
        for query in queries:
            exact = engine.count(query, plan="gin")
            approx = engine.count(query, plan="udf:clsm")
            assert exact.count == truth.cardinality(query)
            assert approx.count >= 1.0

    def test_model_weights_roundtrip_through_disk(self, estimator, tmp_path):
        path = tmp_path / "estimator.npz"
        save_state(estimator.model, path)
        clone_model = ModelConfig(kind="clsm", embedding_dim=8, seed=123).build(
            estimator.model.compressor.max_value
        )
        load_state(clone_model, path)
        query = [(1, 2)]
        np.testing.assert_allclose(
            clone_model.predict(query), estimator.model.predict(query), atol=1e-6
        )
