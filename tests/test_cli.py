"""Tests for the command-line interface."""

from __future__ import annotations

import pickle

import pytest

from repro.cli import build_parser, main
from repro.sets import SetCollection


@pytest.fixture
def collection_file(tmp_path):
    path = tmp_path / "sets.txt"
    SetCollection(
        [[1, 2, 3], [2, 3], [1, 4], [2, 3, 4], [5, 6], [1, 5, 6]]
    ).save(path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "imagenet", "out.txt"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "cardinality", "a", "b"])
        assert args.kind == "clsm"
        assert args.epochs == 30

    def test_serve_auto_refresh_defaults(self):
        args = build_parser().parse_args(["serve", "model.pkl"])
        assert args.auto_refresh is False
        assert args.refresh_interval == 1.0
        assert args.refresh_max_deltas == 1000
        assert args.refresh_max_aux_fraction == 0.25
        assert args.refresh_min_interval == 30.0
        assert args.refresh_collection is None

    def test_refresh_status_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["refresh-status"])


class TestDatasetsAndStats:
    def test_datasets_lists_presets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("rw-small", "tweets", "sd"):
            assert name in out

    def test_generate_and_stats(self, tmp_path, capsys, monkeypatch):
        out_file = tmp_path / "sd.txt"
        assert main(["generate", "sd", str(out_file), "--scale", "0.05"]) == 0
        assert out_file.exists()
        assert main(["stats", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "uniq_elem" in out

    def test_stats_without_collection_or_connect_errors(self, capsys):
        assert main(["stats"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_stats_metrics_requires_connect(self, capsys):
        assert main(["stats", "--metrics"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_trace_dump_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace-dump"])

    def test_bad_connect_address_rejected(self):
        with pytest.raises(SystemExit):
            main(["stats", "--connect", "nota-port"])


class TestLiveTelemetryCommands:
    @pytest.fixture
    def live_server(self, collection_file, tmp_path, capsys):
        from repro.serve import SetServer, TcpServeFrontend

        model_file = tmp_path / "est.pkl"
        assert main([
            "train", "cardinality", str(collection_file), str(model_file),
            "--kind", "lsm", "--epochs", "2", "--no-hybrid",
        ]) == 0
        capsys.readouterr()
        with open(model_file, "rb") as handle:
            structure = pickle.load(handle)
        with SetServer(structure, cache_size=16) as server:
            frontend = TcpServeFrontend(server, port=0).start_background()
            server.query((1, 2))
            server.query((1, 2))
            host, port = frontend.address
            yield f"{host}:{port}"
            frontend.shutdown()

    def test_stats_connect_prints_json(self, live_server, capsys):
        import json

        assert main(["stats", "--connect", live_server]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["requests_served"] == 2
        assert report["cache"]["hits"] == 1

    def test_stats_connect_metrics_prints_exposition(self, live_server, capsys):
        assert main(["stats", "--connect", live_server, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serve_requests_served_total counter" in out
        assert "repro_serve_latency_seconds_bucket" in out

    def test_trace_dump_prints_spans(self, live_server, capsys):
        assert main(["trace-dump", "--connect", live_server]) == 0
        out = capsys.readouterr().out
        assert "cache_lookup" in out
        assert "ms" in out

    def test_trace_dump_json(self, live_server, capsys):
        import json

        assert main([
            "trace-dump", "--connect", live_server, "--json", "--limit", "5"
        ]) == 0
        spans = json.loads(capsys.readouterr().out)
        assert isinstance(spans, list)
        assert 0 < len(spans) <= 5

    def test_refresh_status_without_maintainer_reports_disabled(
        self, live_server, capsys
    ):
        assert main(["refresh-status", "--connect", live_server]) == 1
        assert "not enabled" in capsys.readouterr().err


class TestRefreshStatusCommand:
    @pytest.fixture
    def maintained_server(self, collection_file, tmp_path, capsys):
        from repro.core import ModelConfig, TrainConfig
        from repro.maintain import BackgroundRefresher, default_rebuilder
        from repro.serve import SetServer, TcpServeFrontend

        model_file = tmp_path / "est.pkl"
        assert main([
            "train", "cardinality", str(collection_file), str(model_file),
            "--kind", "lsm", "--epochs", "2", "--no-hybrid",
        ]) == 0
        capsys.readouterr()
        with open(model_file, "rb") as handle:
            structure = pickle.load(handle)
        with SetServer(structure, cache_size=16) as server:
            frontend = TcpServeFrontend(server, port=0).start_background()
            refresher = BackgroundRefresher(
                server,
                default_rebuilder(
                    structure,
                    collection=SetCollection.load(collection_file),
                    model_config=ModelConfig(
                        kind="lsm", embedding_dim=2, phi_hidden=(4,),
                        rho_hidden=(4,),
                    ),
                    train_config=TrainConfig(epochs=1, batch_size=64),
                ),
            )
            host, port = frontend.address
            try:
                yield f"{host}:{port}"
            finally:
                refresher.close()
                refresher.delta.detach_all()
                server.maintainer = None
                frontend.shutdown()

    def test_json_status(self, maintained_server, capsys):
        import json

        assert main([
            "refresh-status", "--connect", maintained_server, "--json"
        ]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["auto_refresh"] is True
        assert status["kind"] == "cardinality"
        assert status["refreshes"] == 0

    def test_now_forces_a_refresh(self, maintained_server, capsys):
        assert main(["refresh-status", "--connect", maintained_server, "--now"]) == 0
        out = capsys.readouterr().out
        assert "refreshes 1" in out
        assert "snapshot v1" in out


class TestTrainAndQuery:
    def test_cardinality_roundtrip(self, collection_file, tmp_path, capsys):
        model_file = tmp_path / "est.pkl"
        assert main(
            [
                "train", "cardinality", str(collection_file), str(model_file),
                "--kind", "lsm", "--epochs", "5", "--no-hybrid",
            ]
        ) == 0
        assert model_file.exists()
        assert main(["estimate", str(model_file), "2", "3"]) == 0
        value = float(capsys.readouterr().out.strip().splitlines()[-1])
        assert value >= 1.0

    def test_index_roundtrip(self, collection_file, tmp_path, capsys):
        model_file = tmp_path / "idx.pkl"
        assert main(
            [
                "train", "index", str(collection_file), str(model_file),
                "--kind", "lsm", "--epochs", "5", "--no-hybrid",
            ]
        ) == 0
        assert main(["lookup", str(model_file), "2", "3"]) == 0
        answer = capsys.readouterr().out.strip().splitlines()[-1]
        assert answer == "0"  # first set containing {2, 3}

    def test_bloom_roundtrip(self, collection_file, tmp_path, capsys):
        model_file = tmp_path / "bf.pkl"
        assert main(
            [
                "train", "bloom", str(collection_file), str(model_file),
                "--kind", "lsm", "--epochs", "30",
            ]
        ) == 0
        assert main(["contains", str(model_file), "2", "3"]) == 0
        answer = capsys.readouterr().out.strip().splitlines()[-1]
        assert answer == "present"  # trained positive: guaranteed

    def test_wrong_structure_type_errors(self, collection_file, tmp_path, capsys):
        model_file = tmp_path / "est.pkl"
        main(
            [
                "train", "cardinality", str(collection_file), str(model_file),
                "--kind", "lsm", "--epochs", "2", "--no-hybrid",
            ]
        )
        assert main(["lookup", str(model_file), "1"]) == 2
        assert "not a set index" in capsys.readouterr().err

    def test_guarded_roundtrip_with_health_report(
        self, collection_file, tmp_path, capsys
    ):
        model_file = tmp_path / "guarded.pkl"
        assert main(
            [
                "train", "cardinality", str(collection_file), str(model_file),
                "--kind", "lsm", "--epochs", "3", "--no-hybrid", "--guarded",
            ]
        ) == 0
        assert "guarded" in capsys.readouterr().out
        assert main(["estimate", str(model_file), "2", "3"]) == 0
        captured = capsys.readouterr()
        assert float(captured.out.strip().splitlines()[-1]) >= 1.0
        assert "[health] cardinality" in captured.err

        with open(model_file, "rb") as handle:
            guarded = pickle.load(handle)
        assert guarded.estimate((900, 901)) == 0.0  # OOV: defined miss

    def test_guarded_index_and_bloom(self, collection_file, tmp_path, capsys):
        index_file = tmp_path / "idx.pkl"
        assert main(
            [
                "train", "index", str(collection_file), str(index_file),
                "--kind", "lsm", "--epochs", "3", "--no-hybrid", "--guarded",
            ]
        ) == 0
        assert main(["lookup", str(index_file), "2", "3"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip().splitlines()[-1] == "0"
        assert "[health] index" in captured.err

        bloom_file = tmp_path / "bf.pkl"
        assert main(
            [
                "train", "bloom", str(collection_file), str(bloom_file),
                "--kind", "lsm", "--epochs", "10", "--guarded",
            ]
        ) == 0
        assert main(["contains", str(bloom_file), "2", "3"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip().splitlines()[-1] == "present"
        assert "[health] bloom" in captured.err

    def test_unguarded_has_no_health_line(self, collection_file, tmp_path, capsys):
        model_file = tmp_path / "est.pkl"
        main(
            [
                "train", "cardinality", str(collection_file), str(model_file),
                "--kind", "lsm", "--epochs", "2", "--no-hybrid",
            ]
        )
        capsys.readouterr()
        assert main(["estimate", str(model_file), "2", "3"]) == 0
        assert "[health]" not in capsys.readouterr().err

    def test_pickled_structure_is_loadable(self, collection_file, tmp_path):
        model_file = tmp_path / "est.pkl"
        main(
            [
                "train", "cardinality", str(collection_file), str(model_file),
                "--kind", "clsm", "--epochs", "2", "--no-hybrid",
            ]
        )
        with open(model_file, "rb") as handle:
            structure = pickle.load(handle)
        assert structure.estimate((2, 3)) >= 1.0


class TestShardCli:
    def test_build_parser_defaults(self):
        args = build_parser().parse_args(["build", "cardinality", "a.txt", "b.pkl"])
        assert args.shards == 4
        assert args.workers == 1
        assert args.kind == "clsm"

    def test_bench_shard_parser_defaults(self):
        args = build_parser().parse_args(["bench-shard"])
        assert args.shards == 4
        assert args.workers == [1, 2, 4]
        assert args.task == "cardinality"

    def test_sharded_cardinality_roundtrip(self, collection_file, tmp_path, capsys):
        model_file = tmp_path / "sharded.pkl"
        assert main(
            [
                "build", "cardinality", str(collection_file), str(model_file),
                "--shards", "2", "--kind", "lsm", "--epochs", "5",
                "--max-subset-size", "3",
            ]
        ) == 0
        assert "sharded cardinality" in capsys.readouterr().out
        assert main(["estimate", str(model_file), "2", "3"]) == 0
        value = float(capsys.readouterr().out.strip().splitlines()[-1])
        assert value >= 1.0
        with open(model_file, "rb") as handle:
            router = pickle.load(handle)
        assert router.num_shards == 2
        assert router.estimate((2, 3)) >= 1.0

    def test_sharded_index_roundtrip(self, collection_file, tmp_path, capsys):
        model_file = tmp_path / "idx.pkl"
        assert main(
            [
                "build", "index", str(collection_file), str(model_file),
                "--shards", "3", "--kind", "lsm", "--epochs", "5",
                "--max-subset-size", "3",
            ]
        ) == 0
        assert main(["lookup", str(model_file), "2", "3"]) == 0
        answer = capsys.readouterr().out.strip().splitlines()[-1]
        assert answer == "0"  # first set containing {2, 3}

    def test_guarded_sharded_bloom_roundtrip(self, collection_file, tmp_path, capsys):
        model_file = tmp_path / "bf.pkl"
        assert main(
            [
                "build", "bloom", str(collection_file), str(model_file),
                "--shards", "2", "--kind", "lsm", "--epochs", "5", "--guarded",
            ]
        ) == 0
        assert "guarded sharded bloom" in capsys.readouterr().out
        assert main(["contains", str(model_file), "2", "3"]) == 0
        answer = capsys.readouterr().out.strip().splitlines()[-1]
        assert answer == "present"  # stored subset: no false negatives

    def test_bench_shard_smoke(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        out_file = tmp_path / "shard.json"
        assert main(
            [
                "bench-shard", "--dataset", "sd", "--scale", "0.02",
                "--shards", "2", "--workers", "1", "--num-queries", "40",
                "--epochs", "2", "--max-training-samples", "2000",
                "--out", str(out_file),
            ]
        ) == 0
        report = json.loads(out_file.read_text())
        assert report["violations"] == {"1": 0}
        assert report["cpu_count"] >= 1
        assert report["num_shards"] == 2
        printed = capsys.readouterr().out
        assert "speedup" in printed
        assert "wrote" in printed


class TestServeCli:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "model.pkl"])
        assert args.port == 7007
        assert args.max_batch_size == 64
        assert args.overflow == "block"
        assert args.cache_size == 4096

    def test_bench_serve_parser_defaults(self):
        args = build_parser().parse_args(["bench-serve"])
        assert args.dataset == "rw-small"
        assert args.task == "cardinality"
        assert args.threads == 8
        assert args.out is None

    def test_bad_overflow_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "model.pkl", "--overflow", "panic"])

    def test_bench_serve_smoke(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        out_file = tmp_path / "serve.json"
        assert main(
            [
                "bench-serve", "--dataset", "sd", "--scale", "0.02",
                "--num-queries", "80", "--threads", "2", "--epochs", "2",
                "--max-training-samples", "2000", "--out", str(out_file),
            ]
        ) == 0
        report = json.loads(out_file.read_text())
        assert report["mismatches"] == 0
        assert report["dataset"] == "sd"
        printed = capsys.readouterr().out
        assert "qps" in printed
        assert "wrote" in printed

    def test_bench_serve_default_report_location(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(
            [
                "bench-serve", "--dataset", "sd", "--scale", "0.02",
                "--num-queries", "40", "--threads", "2", "--epochs", "2",
                "--max-training-samples", "2000", "--guarded",
            ]
        ) == 0
        assert (tmp_path / "BENCH_serve.json").exists()
