"""Tests for optimizers and LR schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.module import Parameter


def quadratic_step(optimizer, parameter):
    """One optimization step on f(w) = ||w||^2 / 2 (gradient = w)."""
    optimizer.zero_grad()
    (parameter * parameter * 0.5).sum().backward()
    optimizer.step()


class TestSGD:
    def test_plain_sgd_matches_formula(self):
        p = Parameter(np.array([1.0, -2.0]))
        opt = nn.SGD([p], lr=0.1)
        quadratic_step(opt, p)
        np.testing.assert_allclose(p.data, [0.9, -1.8])

    def test_momentum_accelerates(self):
        p_plain = Parameter(np.array([10.0]))
        p_momentum = Parameter(np.array([10.0]))
        opt_plain = nn.SGD([p_plain], lr=0.01)
        opt_momentum = nn.SGD([p_momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            quadratic_step(opt_plain, p_plain)
            quadratic_step(opt_momentum, p_momentum)
        assert abs(p_momentum.data[0]) < abs(p_plain.data[0])

    def test_weight_decay_shrinks_faster(self):
        p = Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        quadratic_step(opt, p)
        # grad = w + 0.5 w = 1.5 -> w = 1 - 0.15
        np.testing.assert_allclose(p.data, [0.85])

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1)
        opt.step()  # no backward happened
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the very first Adam update is ~lr * sign(g).
        p = Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.1)
        quadratic_step(opt, p)
        np.testing.assert_allclose(p.data, [0.9], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = nn.Adam([p], lr=0.1)
        for _ in range(300):
            quadratic_step(opt, p)
        np.testing.assert_allclose(p.data, [0.0, 0.0], atol=1e-3)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)


class TestRMSprop:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = nn.RMSprop([p], lr=0.05)
        for _ in range(500):
            quadratic_step(opt, p)
        np.testing.assert_allclose(p.data, [0.0], atol=1e-2)


class TestTrainingIntegration:
    def test_mlp_learns_linear_function(self, rng):
        x = rng.normal(size=(256, 3))
        w_true = rng.normal(size=(3, 1))
        y = x @ w_true
        model = nn.MLP(3, [16], 1, rng=rng)
        opt = nn.Adam(model.parameters(), lr=0.01)
        first_loss = None
        for _ in range(200):
            loss = nn.mse_loss(model(Tensor(x)), y)
            if first_loss is None:
                first_loss = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first_loss * 0.01

    def test_classifier_learns_separable_data(self, rng):
        x = rng.normal(size=(200, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(float)[:, None]
        model = nn.MLP(2, [8], 1, out_activation="sigmoid", rng=rng)
        opt = nn.Adam(model.parameters(), lr=0.05)
        for _ in range(150):
            loss = nn.binary_cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        accuracy = ((model(Tensor(x)).data > 0.5) == y).mean()
        assert accuracy > 0.95


class TestSchedulers:
    def test_step_lr(self):
        p = Parameter(np.zeros(1))
        opt = nn.SGD([p], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        p = Parameter(np.zeros(1))
        opt = nn.SGD([p], lr=2.0)
        sched = nn.ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_cosine_reaches_eta_min(self):
        p = Parameter(np.zeros(1))
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        p = Parameter(np.zeros(1))
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=20)
        previous = opt.lr
        for _ in range(20):
            sched.step()
            assert opt.lr <= previous + 1e-12
            previous = opt.lr
