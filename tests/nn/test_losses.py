"""Tests for loss functions, including the q-error/MAE equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from tests.conftest import numeric_gradient


class TestRegressionLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        loss = nn.mse_loss(pred, np.array([0.0, 4.0]))
        assert loss.item() == pytest.approx((1.0 + 4.0) / 2)

    def test_mae_value(self):
        pred = Tensor(np.array([1.0, -2.0]))
        loss = nn.mae_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(1.5)

    def test_mse_gradient(self, rng):
        data = rng.normal(size=(5,))
        target = rng.normal(size=(5,))
        x = Tensor(data.copy(), requires_grad=True)
        nn.mse_loss(x, target).backward()
        holder = Tensor(data, requires_grad=True)
        expected = numeric_gradient(
            lambda: nn.mse_loss(holder, target).item(), holder.data
        )
        np.testing.assert_allclose(x.grad, expected, atol=1e-6)

    def test_huber_quadratic_then_linear(self):
        pred = Tensor(np.array([0.5, 3.0]))
        loss = nn.huber_loss(pred, np.array([0.0, 0.0]), delta=1.0)
        expected = (0.5 * 0.25 + (1.0**2 * 0.5 + (3.0 - 1.0) * 1.0)) / 2
        assert loss.item() == pytest.approx(expected)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.mse_loss(Tensor(np.ones(3)), np.ones(4))

    def test_q_error_is_mae(self, rng):
        pred = Tensor(rng.random(6))
        target = rng.random(6)
        assert nn.q_error_loss(pred, target).item() == pytest.approx(
            nn.mae_loss(pred, target).item()
        )

    def test_q_error_equivalence_with_log_scale(self, rng):
        """MAE on log-minmax-scaled targets == mean log q-error / (hi - lo)."""
        y_true = rng.integers(1, 1000, size=20).astype(float)
        y_pred = y_true * rng.uniform(0.5, 2.0, size=20)
        lo, hi = 0.0, np.log(1000.0)
        scaled_true = (np.log(y_true) - lo) / (hi - lo)
        scaled_pred = (np.log(y_pred) - lo) / (hi - lo)
        mae = nn.q_error_loss(Tensor(scaled_pred), scaled_true).item()
        q_errors = np.maximum(y_pred / y_true, y_true / y_pred)
        assert mae * (hi - lo) == pytest.approx(np.log(q_errors).mean())


class TestClassificationLosses:
    def test_bce_perfect_prediction_near_zero(self):
        pred = Tensor(np.array([0.999999, 0.000001]))
        loss = nn.binary_cross_entropy(pred, np.array([1.0, 0.0]))
        assert loss.item() < 1e-5

    def test_bce_symmetric(self):
        a = nn.binary_cross_entropy(Tensor(np.array([0.3])), np.array([1.0]))
        b = nn.binary_cross_entropy(Tensor(np.array([0.7])), np.array([0.0]))
        assert a.item() == pytest.approx(b.item())

    def test_bce_saturated_inputs_finite(self):
        loss = nn.binary_cross_entropy(
            Tensor(np.array([0.0, 1.0])), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss.item())

    def test_bce_with_logits_matches_probability_version(self, rng):
        logits = rng.normal(size=(8,))
        targets = rng.integers(0, 2, size=8).astype(float)
        probs = 1.0 / (1.0 + np.exp(-logits))
        a = nn.bce_with_logits(Tensor(logits), targets).item()
        b = nn.binary_cross_entropy(Tensor(probs), targets).item()
        assert a == pytest.approx(b, rel=1e-6)

    def test_bce_with_logits_extreme_stable(self):
        loss = nn.bce_with_logits(
            Tensor(np.array([1000.0, -1000.0])), np.array([1.0, 0.0])
        )
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_bce_gradient(self, rng):
        data = rng.uniform(0.1, 0.9, size=6)
        target = rng.integers(0, 2, size=6).astype(float)
        x = Tensor(data.copy(), requires_grad=True)
        nn.binary_cross_entropy(x, target).backward()
        holder = Tensor(data, requires_grad=True)
        expected = numeric_gradient(
            lambda: nn.binary_cross_entropy(holder, target).item(), holder.data
        )
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)


class TestResolveLoss:
    def test_resolve_all_names(self):
        for name in ("mse", "mae", "q_error", "huber", "bce"):
            assert callable(nn.resolve_loss(name))

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown loss"):
            nn.resolve_loss("nll")
