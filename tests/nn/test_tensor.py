"""Tests for the autograd core: every primitive op is gradient-checked."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad
from tests.conftest import numeric_gradient


def check_unary(op, data, tol=1e-6):
    x = Tensor(data.copy(), requires_grad=True)
    out = op(x)
    seed = np.random.default_rng(0).normal(size=out.shape)
    out.backward(seed)

    holder = Tensor(data, requires_grad=True)

    def value():
        return float((op(holder).data * seed).sum())

    expected = numeric_gradient(value, holder.data)
    np.testing.assert_allclose(x.grad, expected, atol=tol)


def check_binary(op, a_data, b_data, tol=1e-6):
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    out = op(a, b)
    seed = np.random.default_rng(1).normal(size=out.shape)
    out.backward(seed)

    a_holder = Tensor(a_data, requires_grad=True)
    b_holder = Tensor(b_data, requires_grad=True)

    def value():
        return float((op(a_holder, b_holder).data * seed).sum())

    np.testing.assert_allclose(a.grad, numeric_gradient(value, a_holder.data), atol=tol)
    np.testing.assert_allclose(b.grad, numeric_gradient(value, b_holder.data), atol=tol)


class TestConstruction:
    def test_scalar_becomes_float64(self):
        t = Tensor(3)
        assert t.dtype == np.float64
        assert t.item() == 3.0

    def test_ndarray_kept_by_reference(self):
        data = np.ones(3)
        t = Tensor(data)
        data[0] = 7.0
        assert t.data[0] == 7.0

    def test_integer_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.arange(3), requires_grad=True)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))


class TestArithmeticGradients:
    def test_add(self, rng):
        check_binary(lambda a, b: a + b, rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))

    def test_add_broadcast(self, rng):
        check_binary(lambda a, b: a + b, rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_sub(self, rng):
        check_binary(lambda a, b: a - b, rng.normal(size=(2, 3)), rng.normal(size=(2, 3)))

    def test_rsub_scalar(self, rng):
        check_unary(lambda x: 2.0 - x, rng.normal(size=(4,)))

    def test_mul(self, rng):
        check_binary(lambda a, b: a * b, rng.normal(size=(3, 2)), rng.normal(size=(3, 2)))

    def test_mul_broadcast_column(self, rng):
        check_binary(lambda a, b: a * b, rng.normal(size=(3, 2)), rng.normal(size=(3, 1)))

    def test_div(self, rng):
        denom = rng.normal(size=(3,)) + 3.0
        check_binary(lambda a, b: a / b, rng.normal(size=(3,)), denom)

    def test_rdiv_scalar(self, rng):
        check_unary(lambda x: 1.0 / x, rng.normal(size=(3,)) + 2.0)

    def test_neg(self, rng):
        check_unary(lambda x: -x, rng.normal(size=(5,)))

    def test_pow(self, rng):
        check_unary(lambda x: x**3, rng.normal(size=(4,)))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul(self, rng):
        check_binary(lambda a, b: a @ b, rng.normal(size=(3, 4)), rng.normal(size=(4, 2)))

    def test_matmul_batched(self, rng):
        check_binary(
            lambda a, b: a @ b,
            rng.normal(size=(2, 3, 4)),
            rng.normal(size=(2, 4, 5)),
            tol=1e-5,
        )


class TestReductions:
    def test_sum_all(self, rng):
        check_unary(lambda x: x.sum(), rng.normal(size=(3, 4)))

    def test_sum_axis(self, rng):
        check_unary(lambda x: x.sum(axis=1), rng.normal(size=(3, 4)))

    def test_sum_keepdims(self, rng):
        check_unary(lambda x: x.sum(axis=0, keepdims=True), rng.normal(size=(3, 4)))

    def test_mean(self, rng):
        check_unary(lambda x: x.mean(), rng.normal(size=(6,)))

    def test_mean_axis_matches_numpy(self, rng):
        data = rng.normal(size=(3, 5))
        np.testing.assert_allclose(Tensor(data).mean(axis=0).data, data.mean(axis=0))

    def test_max_axis(self, rng):
        # Distinct values avoid tie plateaus in the numeric check.
        data = rng.permutation(12).astype(float).reshape(3, 4)
        check_unary(lambda x: x.max(axis=1), data)

    def test_max_tie_splits_gradient(self):
        x = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5, 0.0])


class TestShapes:
    def test_reshape_roundtrip_gradient(self, rng):
        check_unary(lambda x: x.reshape(6), rng.normal(size=(2, 3)))

    def test_ravel(self, rng):
        data = rng.normal(size=(2, 2))
        assert Tensor(data).ravel().shape == (4,)

    def test_transpose(self, rng):
        check_unary(lambda x: x.T, rng.normal(size=(2, 3)))

    def test_transpose_axes(self, rng):
        check_unary(lambda x: x.transpose(1, 0, 2), rng.normal(size=(2, 3, 4)))

    def test_getitem_slice(self, rng):
        check_unary(lambda x: x[1:3], rng.normal(size=(5, 2)))

    def test_getitem_fancy_with_duplicates(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        out = x[np.array([0, 0, 2])]
        out.backward(np.ones(3))
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0, 0.0])


class TestBackwardMechanics:
    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(3))

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 2).backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * 2
        z = y + y  # two paths through y
        z.backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_reused_leaf_in_two_ops(self):
        x = Tensor([2.0], requires_grad=True)
        out = x * x + x
        out.backward()
        np.testing.assert_allclose(x.grad, [5.0])  # 2x + 1

    def test_long_chain_does_not_recurse(self):
        # Deep graphs (RNN over long sequences) must not hit Python's
        # recursion limit: the topological sort is iterative.
        x = Tensor([1.0], requires_grad=True)
        out = x
        for _ in range(5000):
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 3).backward()
        x.zero_grad()
        assert x.grad is None


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert not y._parents

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_no_grad_is_thread_local(self):
        """An inference thread's no_grad window must not disable graph
        recording for a concurrent training thread (the background-refresh
        deployment: serving infers while the refresher retrains)."""
        import threading

        inside = threading.Event()
        release = threading.Event()
        results: dict[str, object] = {}

        def inference() -> None:
            with no_grad():
                inside.set()
                release.wait(10.0)
                results["inference_enabled"] = is_grad_enabled()

        def training() -> None:
            inside.wait(10.0)
            x = Tensor([3.0], requires_grad=True)
            (x * x).sum().backward()
            results["grad"] = None if x.grad is None else float(x.grad[0])
            release.set()

        threads = [
            threading.Thread(target=inference),
            threading.Thread(target=training),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(15.0)
        assert results["inference_enabled"] is False
        assert results["grad"] == 6.0


@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_add_mul_gradients_match_manual(shape, seed):
    """d/da (a*b + a) = b + 1 and d/db = a, for random shapes/values."""
    generator = np.random.default_rng(seed)
    a_data = generator.normal(size=shape)
    b_data = generator.normal(size=shape)
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    (a * b + a).sum().backward()
    np.testing.assert_allclose(a.grad, b_data + 1.0)
    np.testing.assert_allclose(b.grad, a_data)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 20))
def test_property_sum_gradient_is_ones(seed, n):
    data = np.random.default_rng(seed).normal(size=n)
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones(n))
