"""Numerical gradcheck harness: autograd vs central differences.

Every gradient the DeepSets training path relies on is compared against a
central-difference approximation on random ragged batches:

* the segment poolings (``segment_sum`` / ``segment_mean`` /
  ``segment_max``) including empty segments and single-element segments —
  the shapes real ragged batches produce for empty sets and singletons;
* ``gather`` (the embedding primitive) with repeated indices, whose
  backward must scatter-*add*;
* the :class:`Embedding` and :class:`MLP` modules end to end, checking
  every trainable parameter.

Seeds are embedded in the failure messages (``REPRO_TEST_SEED`` rotates
them in CI) so any drift in the autograd core is reproducible.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.nn import MLP, Embedding, Tensor
from repro.nn import functional as F
from tests.conftest import numeric_gradient

SEED = int(os.environ.get("REPRO_TEST_SEED", "20260805"))

ATOL = 1e-6
RTOL = 1e-4


def _check_input_gradient(op, data: np.ndarray, seed_rng, context: str):
    """Compare autograd input gradients of ``op`` against central diffs.

    ``op`` maps a Tensor to a Tensor; the scalar objective is a fixed
    random projection of the output, which exercises every output entry.
    """
    x = Tensor(data.copy(), requires_grad=True)
    out = op(x)
    projection = seed_rng.normal(size=out.shape)
    out.backward(projection)

    holder = Tensor(data.copy(), requires_grad=True)

    def value() -> float:
        return float((op(holder).data * projection).sum())

    numeric = numeric_gradient(value, holder.data)
    np.testing.assert_allclose(
        x.grad, numeric, atol=ATOL, rtol=RTOL, err_msg=context
    )


# -- ragged segment layouts ----------------------------------------------------

# (segment_ids, num_segments) layouts; ids must be sorted non-decreasing.
SEGMENT_LAYOUTS = {
    "dense": (np.array([0, 0, 1, 1, 1, 2, 3, 3]), 4),
    "empty_first": (np.array([1, 1, 2, 2, 2]), 3),
    "empty_middle": (np.array([0, 0, 2, 2]), 4),
    "empty_trailing": (np.array([0, 1, 1]), 4),
    "all_singletons": (np.array([0, 1, 2, 3]), 4),
    "single_element_total": (np.array([0]), 1),
    "one_fat_segment": (np.array([0, 0, 0, 0, 0, 0]), 2),
}


@pytest.mark.parametrize("layout", sorted(SEGMENT_LAYOUTS))
@pytest.mark.parametrize("pooling", ["sum", "mean", "max"])
def test_segment_pooling_gradients(pooling: str, layout: str):
    segment_ids, num_segments = SEGMENT_LAYOUTS[layout]
    rng = np.random.default_rng(SEED + len(layout) * 31 + len(pooling))
    op_fn = {
        "sum": F.segment_sum,
        "mean": F.segment_mean,
        "max": F.segment_max,
    }[pooling]
    data = rng.normal(size=(len(segment_ids), 3))
    if pooling == "max":
        # Break exact ties: the max gradient at a tie is subgradient
        # territory where finite differences are not comparable.
        data += np.arange(data.size).reshape(data.shape) * 1e-3
    _check_input_gradient(
        lambda x: op_fn(x, segment_ids, num_segments),
        data,
        np.random.default_rng(SEED),
        context=f"seed={SEED} pooling={pooling} layout={layout}",
    )


def test_segment_max_tied_rows_split_gradient():
    """Exact ties split the max gradient evenly (documented behaviour)."""
    x = Tensor(np.array([[2.0], [2.0], [1.0]]), requires_grad=True)
    F.segment_max(x, np.array([0, 0, 0]), 1).sum().backward()
    np.testing.assert_allclose(x.grad, [[0.5], [0.5], [0.0]])


def test_empty_segments_produce_zero_and_zero_gradient():
    """Empty segments output zero rows and route no gradient anywhere."""
    segment_ids = np.array([1, 1])
    for op_fn in (F.segment_sum, F.segment_mean, F.segment_max):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        out = op_fn(x, segment_ids, 3)
        np.testing.assert_allclose(out.data[0], 0.0)
        np.testing.assert_allclose(out.data[2], 0.0)
        # A projection touching only the empty segments back-propagates zero.
        projection = np.zeros(out.shape)
        projection[0] = 1.0
        projection[2] = 1.0
        out.backward(projection)
        np.testing.assert_allclose(x.grad, 0.0)


# -- gather --------------------------------------------------------------------

@pytest.mark.parametrize(
    "indices",
    [
        np.array([0, 2, 4]),
        np.array([1, 1, 1, 1]),  # repeats: backward must scatter-ADD
        np.array([4, 0, 4, 2, 0]),
        np.array([], dtype=np.int64),  # empty lookup (empty-set encoding)
    ],
    ids=["distinct", "all_repeat", "mixed_repeat", "empty"],
)
def test_gather_gradients(indices: np.ndarray):
    rng = np.random.default_rng(SEED + len(indices))
    table = rng.normal(size=(5, 3))
    _check_input_gradient(
        lambda t: F.gather(t, indices),
        table,
        np.random.default_rng(SEED + 1),
        context=f"seed={SEED} indices={indices.tolist()}",
    )


# -- modules -------------------------------------------------------------------

def _check_module_parameters(model, run, context: str):
    """Gradcheck every trainable parameter of ``model`` under ``run``.

    ``run()`` performs the forward pass and returns the output Tensor;
    the scalar objective is a fixed random projection of that output.
    """
    projection_rng = np.random.default_rng(SEED + 97)
    out = run()
    projection = projection_rng.normal(size=out.shape)
    model.zero_grad()
    out.backward(projection)

    def value() -> float:
        return float((run().data * projection).sum())

    for name, parameter in model.named_parameters():
        numeric = numeric_gradient(value, parameter.data)
        np.testing.assert_allclose(
            parameter.grad,
            numeric,
            atol=ATOL,
            rtol=RTOL,
            err_msg=f"{context} parameter={name}",
        )


def test_embedding_parameter_gradients():
    rng = np.random.default_rng(SEED)
    model = Embedding(7, 4, rng=rng)
    indices = np.array([3, 0, 3, 6, 1])  # includes a repeated id
    _check_module_parameters(
        model,
        lambda: model(indices),
        context=f"seed={SEED} module=Embedding",
    )


def test_mlp_parameter_gradients():
    rng = np.random.default_rng(SEED + 5)
    model = MLP(4, (6, 5), 2, activation="tanh", out_activation="sigmoid",
                rng=rng)
    x = Tensor(rng.normal(size=(3, 4)))
    _check_module_parameters(
        model,
        lambda: model(x),
        context=f"seed={SEED} module=MLP(tanh->sigmoid)",
    )


def test_mlp_relu_parameter_gradients():
    """ReLU MLP: inputs scaled away from the kink so central differences
    stay valid."""
    rng = np.random.default_rng(SEED + 9)
    model = MLP(3, (4,), 1, activation="relu", rng=rng)
    x = Tensor(rng.normal(size=(5, 3)) + 3.0)  # keep pre-activations positive
    _check_module_parameters(
        model,
        lambda: model(x),
        context=f"seed={SEED} module=MLP(relu)",
    )


def test_embedding_pool_mlp_end_to_end():
    """The full DeepSets path: embed -> segment pool -> MLP, single chain."""
    rng = np.random.default_rng(SEED + 13)
    embedding = Embedding(6, 3, rng=rng)
    head = MLP(3, (4,), 1, activation="tanh", rng=rng)
    indices = np.array([0, 2, 2, 5, 1])
    segment_ids = np.array([0, 0, 1, 1, 3])  # segment 2 is empty
    num_segments = 4

    class _Pipeline:
        def named_parameters(self):
            yield from embedding.named_parameters("embedding.")
            yield from head.named_parameters("head.")

        def zero_grad(self):
            embedding.zero_grad()
            head.zero_grad()

    def run():
        pooled = F.segment_sum(embedding(indices), segment_ids, num_segments)
        return head(pooled)

    _check_module_parameters(
        _Pipeline(), run, context=f"seed={SEED} module=embed+pool+mlp"
    )
