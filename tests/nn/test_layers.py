"""Tests for layers, module traversal, and state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = nn.Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_glorot_bounds(self, rng):
        layer = nn.Linear(100, 50, rng=rng)
        limit = np.sqrt(6.0 / 150)
        assert np.abs(layer.weight.data).max() <= limit

    def test_deterministic_given_rng(self):
        a = nn.Linear(3, 2, rng=np.random.default_rng(7))
        b = nn.Linear(3, 2, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestEmbedding:
    def test_lookup(self, rng):
        emb = nn.Embedding(10, 4, rng=rng)
        out = emb(np.array([3, 3, 9]))
        np.testing.assert_allclose(out.data[0], out.data[1])
        assert out.shape == (3, 4)

    def test_out_of_range_raises(self, rng):
        emb = nn.Embedding(5, 2, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_sparsity(self, rng):
        emb = nn.Embedding(6, 2, rng=rng)
        emb(np.array([1, 2])).sum().backward()
        assert np.all(emb.weight.grad[0] == 0)
        assert np.all(emb.weight.grad[1] == 1)


class TestActivationsAndResolve:
    def test_resolve_known(self):
        assert isinstance(nn.resolve_activation("relu"), nn.ReLU)
        assert isinstance(nn.resolve_activation("sigmoid"), nn.Sigmoid)
        assert isinstance(nn.resolve_activation("identity"), nn.Identity)
        assert isinstance(nn.resolve_activation("linear"), nn.Identity)

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            nn.resolve_activation("swishy")


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        drop.eval()
        x = Tensor(rng.normal(size=(10,)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_train_mode_scales_survivors(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        x = Tensor(np.ones(10000))
        out = drop(x).data
        survivors = out[out != 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert 0.4 < (out != 0).mean() < 0.6

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestSequentialAndMLP:
    def test_sequential_applies_in_order(self, rng):
        model = nn.Sequential(nn.Linear(2, 3, rng=rng), nn.ReLU())
        out = model(Tensor(rng.normal(size=(5, 2))))
        assert out.shape == (5, 3)
        assert np.all(out.data >= 0)

    def test_mlp_layer_count(self, rng):
        model = nn.MLP(4, [8, 8], 1, rng=rng)
        linears = [m for m in model if isinstance(m, nn.Linear)]
        assert [(m.in_features, m.out_features) for m in linears] == [
            (4, 8),
            (8, 8),
            (8, 1),
        ]

    def test_mlp_sigmoid_output_in_unit_interval(self, rng):
        model = nn.MLP(4, [8], 1, out_activation="sigmoid", rng=rng)
        out = model(Tensor(rng.normal(size=(10, 4)) * 10))
        assert np.all((out.data > 0) & (out.data < 1))

    def test_parameters_found_through_module_list(self, rng):
        model = nn.MLP(4, [8, 8], 1, rng=rng)
        # 3 linears x (weight + bias)
        assert len(model.parameters()) == 6


class TestModuleStateDict:
    def test_roundtrip(self, rng):
        model = nn.MLP(3, [5], 2, rng=rng)
        state = model.state_dict()
        clone = nn.MLP(3, [5], 2, rng=np.random.default_rng(99))
        clone.load_state_dict(state)
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(model(Tensor(x)).data, clone(Tensor(x)).data)

    def test_state_dict_is_a_copy(self, rng):
        model = nn.Linear(2, 2, rng=rng)
        state = model.state_dict()
        state["weight"][0, 0] = 1e9
        assert model.weight.data[0, 0] != 1e9

    def test_load_rejects_missing_keys(self, rng):
        model = nn.Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_rejects_wrong_shape(self, rng):
        model = nn.Linear(2, 2, rng=rng)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_num_parameters_and_bytes(self, rng):
        model = nn.Linear(10, 5, rng=rng)
        assert model.num_parameters() == 55
        assert model.parameter_bytes(np.float32) == 55 * 4
        assert model.parameter_bytes(np.float64) == 55 * 8

    def test_train_eval_propagates(self, rng):
        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2, rng=rng))
        model.eval()
        assert not model.layers[0].training
        model.train()
        assert model.layers[0].training

    def test_zero_grad_clears_all(self, rng):
        model = nn.MLP(2, [3], 1, rng=rng)
        model(Tensor(rng.normal(size=(2, 2)))).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())
