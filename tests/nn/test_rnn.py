"""Tests for the LSTM/GRU layers used as Figure 7 competitors."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from tests.conftest import numeric_gradient


@pytest.fixture(params=["lstm", "gru"])
def recurrent(request, rng):
    if request.param == "lstm":
        return nn.LSTM(3, 4, rng=rng)
    return nn.GRU(3, 4, rng=rng)


class TestShapesAndState:
    def test_output_shape(self, recurrent, rng):
        x = Tensor(rng.normal(size=(5, 7, 3)))
        assert recurrent(x).shape == (5, 4)

    def test_single_step(self, recurrent, rng):
        x = Tensor(rng.normal(size=(2, 1, 3)))
        assert recurrent(x).shape == (2, 4)

    def test_deterministic(self, rng):
        x = rng.normal(size=(2, 5, 3))
        model = nn.LSTM(3, 4, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(
            model(Tensor(x)).data, model(Tensor(x)).data
        )


class TestMasking:
    def test_tail_padding_equals_shorter_sequence(self, recurrent, rng):
        """Masked trailing steps must not change the final state."""
        x_short = rng.normal(size=(1, 3, 3))
        x_padded = np.concatenate([x_short, rng.normal(size=(1, 2, 3))], axis=1)
        mask = np.array([[1.0, 1.0, 1.0, 0.0, 0.0]])
        out_short = recurrent(Tensor(x_short))
        out_padded = recurrent(Tensor(x_padded), mask)
        np.testing.assert_allclose(out_short.data, out_padded.data, atol=1e-12)

    def test_mixed_lengths_in_batch(self, recurrent, rng):
        seq_a = rng.normal(size=(1, 2, 3))
        seq_b = rng.normal(size=(1, 4, 3))
        padded_a = np.concatenate([seq_a, np.zeros((1, 2, 3))], axis=1)
        batch = np.concatenate([padded_a, seq_b], axis=0)
        mask = np.array([[1, 1, 0, 0], [1, 1, 1, 1]], dtype=float)
        out = recurrent(Tensor(batch), mask)
        out_a = recurrent(Tensor(seq_a))
        out_b = recurrent(Tensor(seq_b))
        np.testing.assert_allclose(out.data[0], out_a.data[0], atol=1e-12)
        np.testing.assert_allclose(out.data[1], out_b.data[0], atol=1e-12)


class TestGradients:
    def test_lstm_gradcheck(self, rng):
        model = nn.LSTM(2, 3, rng=rng)
        x = rng.normal(size=(2, 3, 2))
        seed = rng.normal(size=(2, 3))

        def value():
            return float((model(Tensor(x)).data * seed).sum())

        model(Tensor(x)).backward(seed)
        for name, parameter in model.named_parameters():
            grad = parameter.grad.copy()
            parameter.zero_grad()
            expected = numeric_gradient(value, parameter.data)
            np.testing.assert_allclose(grad, expected, atol=1e-5, err_msg=name)

    def test_gru_gradcheck(self, rng):
        model = nn.GRU(2, 3, rng=rng)
        x = rng.normal(size=(2, 3, 2))
        seed = rng.normal(size=(2, 3))

        def value():
            return float((model(Tensor(x)).data * seed).sum())

        model(Tensor(x)).backward(seed)
        for name, parameter in model.named_parameters():
            grad = parameter.grad.copy()
            parameter.zero_grad()
            expected = numeric_gradient(value, parameter.data)
            np.testing.assert_allclose(grad, expected, atol=1e-5, err_msg=name)

    def test_long_sequence_backward_completes(self, rng):
        """BPTT over 200 steps must not blow the recursion limit."""
        model = nn.GRU(2, 3, rng=rng)
        x = Tensor(rng.normal(size=(1, 200, 2)))
        model(x).sum().backward()
        assert model.cell.w_input.grad is not None


class TestLSTMInternals:
    def test_forget_bias_initialized_to_one(self, rng):
        cell = nn.LSTMCell(2, 4, rng=rng)
        np.testing.assert_allclose(cell.bias.data[4:8], 1.0)
        np.testing.assert_allclose(cell.bias.data[:4], 0.0)

    def test_learns_to_count(self, rng):
        """An LSTM can learn to sum a short sequence of scalars."""
        x = rng.uniform(0, 1, size=(128, 5, 1))
        y = x.sum(axis=1)
        model = nn.Sequential()
        lstm = nn.LSTM(1, 8, rng=rng)
        head = nn.Linear(8, 1, rng=rng)
        opt = nn.Adam(list(lstm.parameters()) + list(head.parameters()), lr=0.02)
        for _ in range(150):
            pred = head(lstm(Tensor(x)))
            loss = nn.mse_loss(pred, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.05
