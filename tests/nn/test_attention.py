"""Tests for the attention blocks (Set Transformer building blocks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.attention import ISAB, MAB, PMA, SAB, LayerNorm, MultiheadAttention
from tests.conftest import numeric_gradient


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.normal(size=(3, 5, 8)) * 10 + 4)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gain_and_bias_applied(self, rng):
        layer = LayerNorm(4)
        layer.gain.data[:] = 2.0
        layer.bias.data[:] = 3.0
        out = layer(Tensor(rng.normal(size=(2, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 3.0, atol=1e-9)

    def test_gradcheck(self, rng):
        layer = LayerNorm(3)
        data = rng.normal(size=(2, 3))
        seed = rng.normal(size=(2, 3))

        def value():
            return float((layer(Tensor(data)).data * seed).sum())

        x = Tensor(data.copy(), requires_grad=True)
        layer(x).backward(seed)
        for parameter in layer.parameters():
            grad = parameter.grad.copy()
            parameter.zero_grad()
            expected = numeric_gradient(value, parameter.data)
            np.testing.assert_allclose(grad, expected, atol=1e-5)


class TestMultiheadAttention:
    def test_output_shape(self, rng):
        attention = MultiheadAttention(16, num_heads=4, rng=rng)
        q = Tensor(rng.normal(size=(2, 3, 16)))
        kv = Tensor(rng.normal(size=(2, 5, 16)))
        assert attention(q, kv).shape == (2, 3, 16)

    def test_dim_head_divisibility(self, rng):
        with pytest.raises(ValueError):
            MultiheadAttention(10, num_heads=4, rng=rng)

    def test_masked_keys_ignored(self, rng):
        """Replacing a masked key's content must not change the output."""
        attention = MultiheadAttention(8, num_heads=2, rng=rng)
        q = Tensor(rng.normal(size=(1, 2, 8)))
        kv_data = rng.normal(size=(1, 4, 8))
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        out_a = attention(q, Tensor(kv_data.copy()), key_mask=mask).data
        kv_data[0, 2:] = 999.0  # corrupt masked positions
        out_b = attention(q, Tensor(kv_data), key_mask=mask).data
        np.testing.assert_allclose(out_a, out_b, atol=1e-9)

    def test_gradients_flow_through_all_projections(self, rng):
        attention = MultiheadAttention(8, num_heads=2, rng=rng)
        q = Tensor(rng.normal(size=(1, 2, 8)))
        attention(q, q).sum().backward()
        for name, parameter in attention.named_parameters():
            assert parameter.grad is not None, name

    def test_attention_weights_average_values(self, rng):
        """With identical keys, attention is a plain average of values."""
        attention = MultiheadAttention(4, num_heads=1, rng=rng)
        kv = Tensor(np.tile(rng.normal(size=(1, 1, 4)), (1, 6, 1)))
        q = Tensor(rng.normal(size=(1, 1, 4)))
        out_full = attention(q, kv).data
        out_single = attention(q, Tensor(kv.data[:, :1, :])).data
        np.testing.assert_allclose(out_full, out_single, atol=1e-9)


class TestBlocks:
    @pytest.mark.parametrize("block_cls", [SAB, lambda d, rng: ISAB(d, 4, rng=rng)])
    def test_shape_preserved(self, rng, block_cls):
        block = (
            block_cls(16, rng=rng)
            if block_cls is SAB
            else block_cls(16, rng)
        )
        x = Tensor(rng.normal(size=(2, 5, 16)))
        assert block(x).shape == (2, 5, 16)

    def test_mab_residual_structure(self, rng):
        block = MAB(8, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(1, 3, 8)))
        y = Tensor(rng.normal(size=(1, 4, 8)))
        assert block(x, y).shape == (1, 3, 8)

    def test_pma_pools_to_seeds(self, rng):
        pool = PMA(8, num_seeds=2, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(3, 7, 8)))
        assert pool(x).shape == (3, 2, 8)

    def test_pma_permutation_invariant(self, rng):
        pool = PMA(8, num_seeds=1, num_heads=2, rng=rng)
        data = rng.normal(size=(1, 5, 8))
        perm = rng.permutation(5)
        out_a = pool(Tensor(data)).data
        out_b = pool(Tensor(data[:, perm, :])).data
        np.testing.assert_allclose(out_a, out_b, atol=1e-9)

    def test_isab_parameters_receive_gradients(self, rng):
        block = ISAB(8, num_inducing=3, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 8)))
        block(x).sum().backward()
        assert block.inducing.grad is not None
        assert np.abs(block.inducing.grad).sum() > 0
