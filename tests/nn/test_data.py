"""Tests for ragged batching and the set data loader."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.data import RaggedArray, SetBatch, SetDataLoader


class TestSetBatch:
    def test_from_sets_layout(self):
        batch = SetBatch.from_sets([[1, 2], [3], [4, 5, 6]])
        np.testing.assert_array_equal(batch.elements, [1, 2, 3, 4, 5, 6])
        np.testing.assert_array_equal(batch.segment_ids, [0, 0, 1, 2, 2, 2])
        assert batch.num_sets == 3
        assert len(batch) == 3

    def test_set_sizes(self):
        batch = SetBatch.from_sets([[1, 2], [3, 4, 5]])
        np.testing.assert_array_equal(batch.set_sizes(), [2, 3])

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            SetBatch.from_sets([[1], []])

    def test_empty_batch(self):
        batch = SetBatch.from_sets([])
        assert batch.num_sets == 0
        assert len(batch.elements) == 0


class TestRaggedArray:
    def test_get(self):
        ragged = RaggedArray([[1, 2], [3], [4, 5, 6]])
        np.testing.assert_array_equal(ragged.get(1), [3])
        np.testing.assert_array_equal(ragged.get(2), [4, 5, 6])

    def test_lengths(self):
        ragged = RaggedArray([[1, 2], [3], [4, 5, 6]])
        np.testing.assert_array_equal(ragged.lengths(), [2, 1, 3])

    def test_batch_arbitrary_order(self):
        ragged = RaggedArray([[1, 2, 3], [4], [5, 6], [7, 8, 9, 10]])
        batch = ragged.batch(np.array([2, 0, 3]))
        np.testing.assert_array_equal(batch.elements, [5, 6, 1, 2, 3, 7, 8, 9, 10])
        np.testing.assert_array_equal(batch.segment_ids, [0, 0, 1, 1, 1, 2, 2, 2, 2])

    def test_batch_with_repeats(self):
        ragged = RaggedArray([[1], [2, 3]])
        batch = ragged.batch(np.array([1, 1]))
        np.testing.assert_array_equal(batch.elements, [2, 3, 2, 3])

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            RaggedArray([[1], []])

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(
            st.lists(st.integers(0, 100), min_size=1, max_size=8),
            min_size=1,
            max_size=20,
        ),
        seed=st.integers(0, 1000),
    )
    def test_property_batch_matches_python_reference(self, data, seed):
        ragged = RaggedArray(data)
        generator = np.random.default_rng(seed)
        indices = generator.integers(0, len(data), size=min(5, len(data)))
        batch = ragged.batch(indices)
        expected = np.concatenate(
            [np.asarray(data[i], dtype=np.int64) for i in indices]
        )
        np.testing.assert_array_equal(batch.elements, expected)


class TestSetDataLoader:
    def make_loader(self, n=10, **kwargs):
        sets = [[i, i + 1] for i in range(n)]
        targets = np.arange(n, dtype=float)
        return SetDataLoader(sets, targets, **kwargs)

    def test_iterates_all_samples(self):
        loader = self.make_loader(n=10, batch_size=3, shuffle=False)
        seen = []
        for batch, targets, indices in loader:
            assert len(batch) == len(targets) == len(indices)
            seen.extend(indices.tolist())
        assert sorted(seen) == list(range(10))

    def test_len_counts_batches(self):
        loader = self.make_loader(n=10, batch_size=3)
        assert len(loader) == 4

    def test_targets_align_with_sets(self):
        loader = self.make_loader(n=6, batch_size=2, shuffle=False)
        for batch, targets, indices in loader:
            np.testing.assert_array_equal(targets, indices.astype(float))

    def test_shuffle_changes_order(self):
        loader = self.make_loader(
            n=100, batch_size=100, rng=np.random.default_rng(0)
        )
        (_, _, first), = list(loader)
        assert not np.array_equal(first, np.arange(100))

    def test_deactivate_excludes_outliers(self):
        loader = self.make_loader(n=10, batch_size=10, shuffle=False)
        loader.deactivate(np.array([0, 5, 9]))
        assert loader.num_active == 7
        (_, _, indices), = list(loader)
        assert set(indices.tolist()) == set(range(10)) - {0, 5, 9}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SetDataLoader([[1], [2]], np.zeros(3))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            self.make_loader(batch_size=0)
