"""Tests for activations and the ragged set primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F
from tests.conftest import numeric_gradient


def check_unary(op, data, tol=1e-6):
    x = Tensor(data.copy(), requires_grad=True)
    out = op(x)
    seed = np.random.default_rng(0).normal(size=out.shape)
    out.backward(seed)
    holder = Tensor(data, requires_grad=True)

    def value():
        return float((op(holder).data * seed).sum())

    np.testing.assert_allclose(x.grad, numeric_gradient(value, holder.data), atol=tol)


class TestActivations:
    def test_exp(self, rng):
        check_unary(F.exp, rng.normal(size=(3, 2)))

    def test_log(self, rng):
        check_unary(F.log, rng.random((4,)) + 0.5)

    def test_sigmoid(self, rng):
        check_unary(F.sigmoid, rng.normal(size=(5,)))

    def test_sigmoid_extreme_values_stable(self):
        out = F.sigmoid(Tensor(np.array([-1000.0, 0.0, 1000.0])))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)
        assert np.all(np.isfinite(out.data))

    def test_tanh(self, rng):
        check_unary(F.tanh, rng.normal(size=(5,)))

    def test_relu(self, rng):
        data = rng.normal(size=(6,))
        data[np.abs(data) < 0.1] = 0.5  # stay away from the kink
        check_unary(F.relu, data)

    def test_relu_values(self):
        np.testing.assert_allclose(
            F.relu(Tensor(np.array([-1.0, 0.0, 2.0]))).data, [0.0, 0.0, 2.0]
        )

    def test_leaky_relu(self, rng):
        data = rng.normal(size=(6,))
        data[np.abs(data) < 0.1] = 0.5
        check_unary(lambda x: F.leaky_relu(x, 0.1), data)

    def test_softplus(self, rng):
        check_unary(F.softplus, rng.normal(size=(5,)))

    def test_softplus_large_input_stable(self):
        out = F.softplus(Tensor(np.array([800.0])))
        np.testing.assert_allclose(out.data, [800.0])

    def test_abs(self, rng):
        data = rng.normal(size=(5,))
        data[np.abs(data) < 0.1] = 0.3
        check_unary(F.abs, data)

    def test_maximum(self, rng):
        a = rng.normal(size=(4,))
        b = a + rng.choice([-1.0, 1.0], size=4) * 0.5  # no ties
        x = Tensor(a.copy(), requires_grad=True)
        y = Tensor(b.copy(), requires_grad=True)
        F.maximum(x, y).sum().backward()
        np.testing.assert_allclose(x.grad, (a >= b).astype(float))
        np.testing.assert_allclose(y.grad, (a < b).astype(float))

    def test_clip_gradient_zero_outside(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        F.clip(x, 0.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_logsumexp_matches_scipy_semantics(self, rng):
        data = rng.normal(size=(3, 5))
        expected = np.log(np.exp(data).sum(axis=-1))
        np.testing.assert_allclose(
            F.logsumexp(Tensor(data), axis=-1).data, expected, atol=1e-10
        )

    def test_logsumexp_stable_for_large_values(self):
        data = np.array([[1000.0, 1000.0]])
        out = F.logsumexp(Tensor(data), axis=-1)
        np.testing.assert_allclose(out.data, [1000.0 + np.log(2.0)])


class TestSoftmaxSqrt:
    def test_softmax_sums_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(3, 5))), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 1000.0, -1000.0]])))
        np.testing.assert_allclose(out.data, [[0.5, 0.5, 0.0]], atol=1e-12)

    def test_softmax_gradcheck(self, rng):
        check_unary(lambda x: F.softmax(x, axis=-1), rng.normal(size=(2, 4)))

    def test_sqrt_values_and_gradient(self, rng):
        data = rng.random(5) + 0.5
        check_unary(F.sqrt, data)
        np.testing.assert_allclose(F.sqrt(Tensor(np.array([4.0]))).data, [2.0])


class TestConcatStack:
    def test_concat_values(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        out = F.concat([Tensor(a), Tensor(b)], axis=1)
        np.testing.assert_allclose(out.data, np.concatenate([a, b], axis=1))

    def test_concat_gradient_splits(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = F.concat([a, b], axis=1)
        seed = rng.normal(size=(2, 5))
        out.backward(seed)
        np.testing.assert_allclose(a.grad, seed[:, :3])
        np.testing.assert_allclose(b.grad, seed[:, 3:])

    def test_stack_gradient(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = F.stack([a, b], axis=0)
        seed = rng.normal(size=(2, 3))
        out.backward(seed)
        np.testing.assert_allclose(a.grad, seed[0])
        np.testing.assert_allclose(b.grad, seed[1])


class TestGather:
    def test_values(self, rng):
        table = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([4, 0, 0, 2])
        np.testing.assert_allclose(F.gather(table, idx).data, table.data[idx])

    def test_duplicate_indices_accumulate(self, rng):
        table = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([1, 1, 1])
        F.gather(table, idx).sum().backward()
        np.testing.assert_allclose(table.grad[1], [3.0, 3.0, 3.0])
        np.testing.assert_allclose(table.grad[0], [0.0, 0.0, 0.0])

    def test_rejects_float_indices(self):
        with pytest.raises(TypeError):
            F.gather(Tensor(np.ones((2, 2))), np.array([0.0]))


class TestSegmentOps:
    def test_segment_sum_values(self, rng):
        x = rng.normal(size=(6, 2))
        seg = np.array([0, 0, 1, 1, 1, 3])
        out = F.segment_sum(Tensor(x), seg, 4)
        np.testing.assert_allclose(out.data[0], x[:2].sum(axis=0))
        np.testing.assert_allclose(out.data[1], x[2:5].sum(axis=0))
        np.testing.assert_allclose(out.data[2], [0.0, 0.0])
        np.testing.assert_allclose(out.data[3], x[5])

    def test_segment_sum_gradient(self, rng):
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        seg = np.array([0, 0, 1, 2, 2])
        out = F.segment_sum(x, seg, 3)
        seed = rng.normal(size=(3, 2))
        out.backward(seed)
        np.testing.assert_allclose(x.grad, seed[seg])

    def test_segment_sum_requires_sorted(self, rng):
        with pytest.raises(ValueError):
            F.segment_sum(Tensor(rng.normal(size=(3, 1))), np.array([1, 0, 2]), 3)

    def test_segment_sum_empty_input(self):
        out = F.segment_sum(Tensor(np.empty((0, 3))), np.empty(0, dtype=int), 2)
        np.testing.assert_allclose(out.data, np.zeros((2, 3)))

    def test_segment_sum_leading_empty_segment(self, rng):
        x = rng.normal(size=(2, 2))
        out = F.segment_sum(Tensor(x), np.array([1, 1]), 2)
        np.testing.assert_allclose(out.data[0], [0.0, 0.0])
        np.testing.assert_allclose(out.data[1], x.sum(axis=0))

    def test_segment_mean_values(self, rng):
        x = rng.normal(size=(4, 3))
        seg = np.array([0, 0, 0, 1])
        out = F.segment_mean(Tensor(x), seg, 2)
        np.testing.assert_allclose(out.data[0], x[:3].mean(axis=0))
        np.testing.assert_allclose(out.data[1], x[3])

    def test_segment_max_values(self, rng):
        x = rng.normal(size=(5, 2))
        seg = np.array([0, 0, 0, 2, 2])
        out = F.segment_max(Tensor(x), seg, 3)
        np.testing.assert_allclose(out.data[0], x[:3].max(axis=0))
        np.testing.assert_allclose(out.data[1], [0.0, 0.0])
        np.testing.assert_allclose(out.data[2], x[3:].max(axis=0))

    def test_segment_max_gradient_unique(self, rng):
        data = np.array([[1.0], [3.0], [2.0], [5.0]])
        x = Tensor(data, requires_grad=True)
        seg = np.array([0, 0, 1, 1])
        F.segment_max(x, seg, 2).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0], [1.0], [0.0], [1.0]])

    def test_segment_max_gradient_splits_ties(self):
        x = Tensor(np.array([[2.0], [2.0]]), requires_grad=True)
        F.segment_max(x, np.array([0, 0]), 1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5], [0.5]])


class TestPermutationInvariance:
    """The pooling primitives must not care about within-set order."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), size=st.integers(1, 10))
    def test_segment_sum_invariant_under_permutation(self, seed, size):
        generator = np.random.default_rng(seed)
        x = generator.normal(size=(size, 3))
        perm = generator.permutation(size)
        seg = np.zeros(size, dtype=int)
        out = F.segment_sum(Tensor(x), seg, 1)
        out_perm = F.segment_sum(Tensor(x[perm]), seg, 1)
        np.testing.assert_allclose(out.data, out_perm.data, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), size=st.integers(1, 10))
    def test_segment_max_invariant_under_permutation(self, seed, size):
        generator = np.random.default_rng(seed)
        x = generator.normal(size=(size, 2))
        perm = generator.permutation(size)
        seg = np.zeros(size, dtype=int)
        out = F.segment_max(Tensor(x), seg, 1)
        out_perm = F.segment_max(Tensor(x[perm]), seg, 1)
        np.testing.assert_allclose(out.data, out_perm.data)
