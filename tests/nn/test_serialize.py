"""Tests for model serialization and the paper's size metric."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import Tensor
from repro.nn.serialize import (
    load_state,
    pickled_size_bytes,
    save_state,
    state_dict_bytes,
)


class TestSaveLoad:
    def test_roundtrip_preserves_outputs(self, rng, tmp_path):
        model = nn.MLP(3, [8], 1, rng=rng)
        path = tmp_path / "weights.npz"
        save_state(model, path)
        clone = nn.MLP(3, [8], 1, rng=np.random.default_rng(777))
        load_state(clone, path)
        x = rng.normal(size=(5, 3))
        np.testing.assert_allclose(
            model(Tensor(x)).data, clone(Tensor(x)).data, atol=1e-6
        )

    def test_float32_storage_loses_only_precision(self, rng, tmp_path):
        model = nn.Linear(4, 4, rng=rng)
        path = tmp_path / "w.npz"
        save_state(model, path)
        clone = nn.Linear(4, 4, rng=np.random.default_rng(1))
        load_state(clone, path)
        np.testing.assert_allclose(model.weight.data, clone.weight.data, atol=1e-6)


class TestSizeAccounting:
    def test_pickled_size_positive_and_monotone(self):
        small = pickled_size_bytes({"a": np.zeros(10, dtype=np.float32)})
        large = pickled_size_bytes({"a": np.zeros(1000, dtype=np.float32)})
        assert 0 < small < large

    def test_state_dict_bytes_tracks_parameter_count(self, rng):
        small = nn.Linear(10, 10, rng=rng)
        large = nn.Linear(100, 100, rng=rng)
        assert state_dict_bytes(small) < state_dict_bytes(large)

    def test_state_dict_bytes_close_to_raw_float32(self, rng):
        model = nn.Linear(50, 50, rng=rng)
        raw = model.num_parameters() * 4
        measured = state_dict_bytes(model)
        # Pickle adds a constant-ish envelope, not a multiple.
        assert raw <= measured <= raw + 4096
