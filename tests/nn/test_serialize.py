"""Tests for model serialization and the paper's size metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.serialize import (
    CorruptStateError,
    load_state,
    pickled_size_bytes,
    save_state,
    state_dict_bytes,
)


class TestSaveLoad:
    def test_roundtrip_preserves_outputs(self, rng, tmp_path):
        model = nn.MLP(3, [8], 1, rng=rng)
        path = tmp_path / "weights.npz"
        save_state(model, path)
        clone = nn.MLP(3, [8], 1, rng=np.random.default_rng(777))
        load_state(clone, path)
        x = rng.normal(size=(5, 3))
        np.testing.assert_allclose(
            model(Tensor(x)).data, clone(Tensor(x)).data, atol=1e-6
        )

    def test_float32_storage_loses_only_precision(self, rng, tmp_path):
        model = nn.Linear(4, 4, rng=rng)
        path = tmp_path / "w.npz"
        save_state(model, path)
        clone = nn.Linear(4, 4, rng=np.random.default_rng(1))
        load_state(clone, path)
        np.testing.assert_allclose(model.weight.data, clone.weight.data, atol=1e-6)


class TestAtomicSave:
    def test_no_tmp_file_left_behind(self, rng, tmp_path):
        model = nn.MLP(3, [8], 1, rng=rng)
        save_state(model, tmp_path / "weights.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["weights.npz"]

    def test_overwrite_is_atomic_replace(self, rng, tmp_path):
        model = nn.Linear(4, 4, rng=rng)
        path = tmp_path / "w.npz"
        save_state(model, path)
        model.weight.data += 1.0
        save_state(model, path)
        clone = nn.Linear(4, 4, rng=np.random.default_rng(9))
        load_state(clone, path)
        np.testing.assert_allclose(clone.weight.data, model.weight.data, atol=1e-6)


class TestCorruptionDetection:
    def test_missing_file_stays_file_not_found(self, rng, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(nn.Linear(2, 2, rng=rng), tmp_path / "absent.npz")

    def test_truncated_file_raises_corrupt(self, rng, tmp_path):
        model = nn.Linear(4, 4, rng=rng)
        path = tmp_path / "w.npz"
        save_state(model, path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(CorruptStateError):
            load_state(model, path)

    def test_garbage_file_raises_corrupt(self, rng, tmp_path):
        path = tmp_path / "w.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(CorruptStateError):
            load_state(nn.Linear(2, 2, rng=rng), path)

    def test_bitflip_fails_checksum(self, rng, tmp_path):
        """A tampered weight array inside a structurally valid archive is
        caught by the checksum, not by the zip layer."""
        model = nn.Linear(4, 4, rng=rng)
        path = tmp_path / "w.npz"
        save_state(model, path)
        with np.load(path) as archive:
            arrays = {name: archive[name].copy() for name in archive.files}
        weight_name = next(n for n in arrays if "weight" in n)
        arrays[weight_name][0, 0] += 1.0
        np.savez_compressed(path, **arrays)
        with pytest.raises(CorruptStateError, match="checksum"):
            load_state(model, path)

    def test_module_mismatch_raises_corrupt(self, rng, tmp_path):
        path = tmp_path / "w.npz"
        save_state(nn.Linear(4, 4, rng=rng), path)
        with pytest.raises(CorruptStateError):
            load_state(nn.Linear(5, 5, rng=rng), path)

    def test_error_carries_path_and_reason(self, rng, tmp_path):
        path = tmp_path / "w.npz"
        path.write_bytes(b"junk")
        try:
            load_state(nn.Linear(2, 2, rng=rng), path)
        except CorruptStateError as error:
            assert error.path == path
            assert error.reason
        else:  # pragma: no cover
            pytest.fail("expected CorruptStateError")

    def test_legacy_archive_without_checksum_loads(self, rng, tmp_path):
        """Pre-checksum archives (plain savez of the state dict) still load."""
        model = nn.Linear(4, 4, rng=rng)
        path = tmp_path / "w.npz"
        np.savez_compressed(
            path,
            **{k: v.astype(np.float32) for k, v in model.state_dict().items()},
        )
        clone = nn.Linear(4, 4, rng=np.random.default_rng(2))
        load_state(clone, path)
        np.testing.assert_allclose(clone.weight.data, model.weight.data, atol=1e-6)


class TestSizeAccounting:
    def test_pickled_size_positive_and_monotone(self):
        small = pickled_size_bytes({"a": np.zeros(10, dtype=np.float32)})
        large = pickled_size_bytes({"a": np.zeros(1000, dtype=np.float32)})
        assert 0 < small < large

    def test_state_dict_bytes_tracks_parameter_count(self, rng):
        small = nn.Linear(10, 10, rng=rng)
        large = nn.Linear(100, 100, rng=rng)
        assert state_dict_bytes(small) < state_dict_bytes(large)

    def test_state_dict_bytes_close_to_raw_float32(self, rng):
        model = nn.Linear(50, 50, rng=rng)
        raw = model.num_parameters() * 4
        measured = state_dict_bytes(model)
        # Pickle adds a constant-ish envelope, not a multiple.
        assert raw <= measured <= raw + 4096
