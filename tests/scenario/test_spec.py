"""Scenario spec suite: contents, validation, and fast-variant scaling."""

from __future__ import annotations

import pytest

from repro.scenario import (
    FAST_SUBSET,
    SCENARIOS,
    SLO,
    FaultPlan,
    ScenarioSpec,
    get_scenario,
    scenario_names,
)


class TestSuite:
    def test_suite_covers_the_required_shapes(self):
        assert set(scenario_names()) == {
            "read-heavy", "write-heavy", "drift", "hot-key", "fault-storm",
        }

    def test_fast_subset_is_a_subset_of_the_suite(self):
        assert set(FAST_SUBSET) <= set(SCENARIOS)
        assert "fault-storm" in FAST_SUBSET  # the grader's raison d'être

    def test_get_scenario_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("cold-key")

    def test_drift_actually_drifts(self):
        spec = get_scenario("drift")
        start, end = spec.zipf_alpha
        assert start != end
        assert spec.rotate_ranks
        assert spec.writes_per_step > 0  # drift must be able to trip staleness

    def test_fault_storm_demands_the_recovery_story(self):
        slo = get_scenario("fault-storm").slo
        assert slo.min_refresh_failures >= 1
        assert slo.require_backoff_engaged
        assert slo.require_breaker_opened
        assert slo.require_old_generation_serving
        assert slo.min_degrade_activations >= 1
        # The hard invariants are never traded away, even under faults.
        assert slo.max_false_negatives == 0
        assert slo.max_index_mismatches == 0
        assert slo.max_failed_requests == 0

    def test_every_scenario_keeps_the_hard_invariants(self):
        for spec in SCENARIOS.values():
            assert spec.slo.max_false_negatives == 0, spec.name
            assert spec.slo.max_index_mismatches == 0, spec.name


class TestFastVariant:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_fast_shrinks_but_preserves_slo(self, name):
        spec = get_scenario(name)
        fast = spec.fast()
        assert fast.steps <= spec.steps
        assert fast.queries_per_step <= spec.queries_per_step
        assert fast.slo == spec.slo
        assert fast.fault_plan == spec.fault_plan

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_fast_scales_staleness_trip_with_op_count(self, name):
        """If the full-scale run could trip the policy, the fast run must
        too — otherwise min_refreshes SLOs silently become unsatisfiable."""
        spec = get_scenario(name)
        fast = spec.fast()
        if spec.slo.min_refreshes and spec.writes_per_step:
            assert fast.steps * fast.writes_per_step * 2 >= fast.max_deltas


class TestValidation:
    def test_too_few_steps_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", description="x", steps=2)

    def test_hot_fraction_bounds(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", description="x", hot_fraction=1.5)

    def test_fault_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            FaultPlan(start_frac=0.7, end_frac=0.3)
        with pytest.raises(ValueError):
            FaultPlan(start_frac=-0.1, end_frac=0.5)

    def test_slo_defaults_enable_hard_invariants(self):
        slo = SLO()
        assert slo.max_false_negatives == 0
        assert slo.max_index_mismatches == 0
        assert slo.max_failed_requests == 0
