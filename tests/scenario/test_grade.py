"""SLO grading: violation wording, metric counters, and the JSONL sink."""

from __future__ import annotations

import json

import pytest

from repro.scenario import (
    SLO,
    FaultPlan,
    ScenarioSpec,
    append_record,
    get_scenario,
    grade,
    make_record,
    scenario_registry,
)


def clean_obs(**overrides):
    """Observations that pass every default SLO check."""
    obs = {
        "ops": 500,
        "false_negatives": 0,
        "index_mismatches": 0,
        "invalid_cardinalities": 0,
        "failed_requests": 0,
        "gather_errors": 0,
        "p99_ms": 5.0,
        "cache_hit_rate": 0.9,
        "refreshes": 3,
        "post_storm_refreshes": 2,
        "pending_deltas_after": 0,
        "refresh_failures": 2,
        "backoff_skips": 4,
        "breaker_opened": True,
        "old_generation_served": True,
        "storm_wrong_answers": 0,
        "storm_failed_requests": 0,
        "degrade_activations": 1,
    }
    obs.update(overrides)
    return obs


def spec_with(slo: SLO, fault: bool = False) -> ScenarioSpec:
    return ScenarioSpec(
        name="t",
        description="t",
        fault_plan=FaultPlan() if fault else None,
        slo=slo,
    )


class TestGrade:
    def test_clean_run_passes(self):
        assert grade(spec_with(SLO()), clean_obs()) == []

    def test_false_negative_names_the_invariant(self):
        violations = grade(spec_with(SLO()), clean_obs(false_negatives=2))
        assert len(violations) == 1
        assert "no-false-negative" in violations[0]

    def test_index_mismatch_names_algorithm_two(self):
        violations = grade(spec_with(SLO()), clean_obs(index_mismatches=1))
        assert any("Algorithm 2" in v for v in violations)

    def test_torn_requests_sum_failed_and_gather_errors(self):
        violations = grade(
            spec_with(SLO()), clean_obs(failed_requests=1, gather_errors=2)
        )
        assert any("3 > 0" in v and "atomicity" in v for v in violations)

    def test_invalid_cardinalities_always_graded(self):
        violations = grade(spec_with(SLO()), clean_obs(invalid_cardinalities=5))
        assert any("guard fallback" in v for v in violations)

    def test_p99_and_hit_rate_bounds(self):
        slo = SLO(max_p99_ms=10.0, min_cache_hit_rate=0.5)
        assert grade(spec_with(slo), clean_obs()) == []
        violations = grade(
            spec_with(slo), clean_obs(p99_ms=50.0, cache_hit_rate=0.1)
        )
        assert len(violations) == 2

    def test_fault_scenarios_grade_post_storm_refreshes(self):
        slo = SLO(min_refreshes=1)
        obs = clean_obs(refreshes=5, post_storm_refreshes=0)
        # Without a fault plan, total refreshes satisfy the bound...
        assert grade(spec_with(slo), obs) == []
        # ...but under a storm, only post-storm refreshes prove recovery.
        violations = grade(spec_with(slo, fault=True), obs)
        assert any("post-storm" in v for v in violations)

    def test_recovery_story_requirements(self):
        slo = SLO(
            min_refresh_failures=1,
            require_backoff_engaged=True,
            require_breaker_opened=True,
            require_old_generation_serving=True,
            min_degrade_activations=1,
        )
        obs = clean_obs(
            refresh_failures=0,
            backoff_skips=0,
            breaker_opened=False,
            old_generation_served=False,
            degrade_activations=0,
        )
        violations = grade(spec_with(slo, fault=True), obs)
        assert len(violations) == 5

    def test_grading_increments_the_scenario_metrics(self):
        text_before = scenario_registry().render_text()
        grade(spec_with(SLO()), clean_obs())
        grade(spec_with(SLO()), clean_obs(false_negatives=1))
        text_after = scenario_registry().render_text()

        def value(text, name):
            for line in text.splitlines():
                if line.startswith(name + " "):
                    return float(line.split()[1])
            return 0.0

        assert (
            value(text_after, "repro_scenario_runs_total")
            - value(text_before, "repro_scenario_runs_total")
        ) == 2.0
        assert (
            value(text_after, "repro_scenario_failed_total")
            - value(text_before, "repro_scenario_failed_total")
        ) == 1.0


class TestRecords:
    def test_make_record_is_json_ready(self):
        spec = get_scenario("read-heavy")
        obs = clean_obs()
        record = make_record(spec, seed=42, obs=obs, violations=[], fast=True)
        parsed = json.loads(json.dumps(record))
        assert parsed["bench"] == "scenarios"
        assert parsed["scenario"] == "read-heavy"
        assert parsed["seed"] == 42
        assert parsed["fast"] is True
        assert parsed["passed"] is True
        assert parsed["observations"]["ops"] == obs["ops"]

    def test_append_record_writes_one_json_line_per_run(self, tmp_path):
        target = tmp_path / "nested" / "BENCH_scenarios.json"
        spec = get_scenario("read-heavy")
        for seed in (1, 2):
            record = make_record(spec, seed, clean_obs(), ["p99 blew up"])
            append_record(record, target)
        lines = target.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [p["seed"] for p in parsed] == [1, 2]
        assert all(p["passed"] is False for p in parsed)
