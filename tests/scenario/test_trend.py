"""Trend reporting over the scenario-bench trajectory file."""

from __future__ import annotations

import json

import pytest

from repro.scenario import get_scenario, load_records, scenario_trend
from repro.scenario.trend import NEAR_LIMIT_FRACTION


def _record(scenario="read-heavy", seed=0, fast=True, p99_fraction=0.1,
            passed=True, violations=()):
    budget = get_scenario(scenario).slo.max_p99_ms
    return {
        "bench": "scenario",
        "scenario": scenario,
        "seed": seed,
        "fast": fast,
        "passed": passed,
        "violations": list(violations),
        "observations": {"p99_ms": p99_fraction * budget},
    }


def _write(path, records, extra_lines=()):
    lines = [json.dumps(record) for record in records]
    lines.extend(extra_lines)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def test_stable_trajectory_is_ok(tmp_path):
    path = tmp_path / "BENCH_scenarios.json"
    _write(path, [_record(p99_fraction=0.10), _record(p99_fraction=0.12)])
    report = scenario_trend(path)
    assert report["ok"]
    assert report["flags"] == []
    assert report["records"] == 2
    (entry,) = report["keys"].values()
    assert entry["runs"] == 2
    assert entry["drift"]["p99_ms"] == pytest.approx(0.02)


def test_margin_drift_between_runs_is_flagged(tmp_path):
    path = tmp_path / "BENCH_scenarios.json"
    _write(path, [_record(p99_fraction=0.10), _record(p99_fraction=0.50)])
    report = scenario_trend(path, drift_threshold=0.2)
    assert not report["ok"]
    assert any("drifted from 10% to 50%" in flag for flag in report["flags"])
    # A looser threshold accepts the same trajectory.
    assert scenario_trend(path, drift_threshold=0.5)["ok"]


def test_pass_to_fail_transition_is_flagged(tmp_path):
    path = tmp_path / "BENCH_scenarios.json"
    _write(path, [
        _record(passed=True),
        _record(passed=False, violations=["p99_ms 900 > 750"]),
    ])
    report = scenario_trend(path)
    assert not report["ok"]
    assert any("regressed pass -> fail" in flag for flag in report["flags"])


def test_near_limit_margin_is_flagged_even_without_drift(tmp_path):
    path = tmp_path / "BENCH_scenarios.json"
    fraction = NEAR_LIMIT_FRACTION + 0.05
    _write(path, [_record(p99_fraction=fraction),
                  _record(p99_fraction=fraction)])
    report = scenario_trend(path)
    assert not report["ok"]
    assert any("of SLO budget" in flag for flag in report["flags"])


def test_distinct_keys_do_not_cross_contaminate(tmp_path):
    path = tmp_path / "BENCH_scenarios.json"
    _write(path, [
        _record(seed=0, p99_fraction=0.10),
        _record(seed=1, p99_fraction=0.50),
        _record(seed=0, p99_fraction=0.12),
        _record(seed=1, p99_fraction=0.52),
    ])
    report = scenario_trend(path)
    assert report["ok"]
    assert len(report["keys"]) == 2


def test_corrupt_lines_are_counted_not_fatal(tmp_path):
    path = tmp_path / "BENCH_scenarios.json"
    _write(path, [_record()], extra_lines=["{not json", '{"no": "scenario"}'])
    records, skipped = load_records(path)
    assert len(records) == 1
    assert skipped == 2
    report = scenario_trend(path)
    assert report["skipped_lines"] == 2


def test_single_failing_run_is_flagged(tmp_path):
    path = tmp_path / "BENCH_scenarios.json"
    _write(path, [_record(passed=False, violations=["boom"])])
    report = scenario_trend(path)
    assert not report["ok"]
    assert any("failed its SLOs" in flag for flag in report["flags"])
