"""Workload synthesis: determinism, Zipf skew, drift, and insert streams."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.scenario import (
    VOCAB,
    ZipfQueryStream,
    absent_combos,
    bloom_insert_stream,
    index_insert_stream,
    make_collection,
    stored_subsets,
)
from repro.sets import InvertedIndex


@pytest.fixture
def collection():
    return make_collection(np.random.default_rng(7))


@pytest.fixture
def truth(collection):
    return InvertedIndex(collection)


class TestCollection:
    def test_same_seed_same_collection(self):
        a = make_collection(np.random.default_rng(3))
        b = make_collection(np.random.default_rng(3))
        assert [tuple(s) for s in a] == [tuple(s) for s in b]

    def test_elements_stay_in_vocab(self, collection):
        for stored in collection:
            assert all(0 <= e < VOCAB for e in stored)


class TestPools:
    def test_stored_subsets_are_true_positives(self, collection, truth):
        pool = stored_subsets(collection, np.random.default_rng(1), 3, 50)
        assert len(pool) == 50
        for query in pool:
            assert 1 <= len(query) <= 3
            assert truth.first_position(query) is not None

    def test_absent_combos_are_true_negatives(self, truth):
        combos = absent_combos(truth, np.random.default_rng(2), 30)
        assert len(combos) == len(set(combos)) == 30
        for combo in combos:
            assert truth.first_position(combo) is None
            assert all(0 <= e < VOCAB for e in combo)


class TestZipfStream:
    def _pool(self):
        return [(i,) for i in range(40)]

    def test_high_alpha_concentrates_the_head(self):
        stream = ZipfQueryStream(self._pool(), np.random.default_rng(4))
        counts = Counter(stream.draw(2000, alpha=2.0))
        head = counts[(0,)]
        tail = counts.get((39,), 0)
        assert head > 2000 * 0.4
        assert head > tail * 10

    def test_low_alpha_spreads_the_mass(self):
        stream = ZipfQueryStream(self._pool(), np.random.default_rng(5))
        counts = Counter(stream.draw(2000, alpha=0.05))
        assert max(counts.values()) < 2000 * 0.2

    def test_rotation_moves_the_head(self):
        stream = ZipfQueryStream(self._pool(), np.random.default_rng(6))
        counts = Counter(stream.draw(2000, alpha=2.0, rotation=10))
        assert counts[(10,)] > 2000 * 0.4

    def test_hot_fraction_one_only_draws_hot_keys(self):
        stream = ZipfQueryStream(
            self._pool(), np.random.default_rng(8), hot_fraction=1.0, hot_keys=3
        )
        drawn = set(stream.draw(500, alpha=1.0))
        assert drawn <= {(0,), (1,), (2,)}

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ZipfQueryStream([], np.random.default_rng(0))


class TestInsertStreams:
    def test_index_stream_yields_unshadowed_overrides(self, truth):
        pairs = list(index_insert_stream(truth, np.random.default_rng(9), 20))
        assert len(pairs) == 20
        positions = [position for _, position in pairs]
        assert len(set(positions)) == 20  # distinct override positions
        for combo, _ in pairs:
            assert truth.first_position(combo) is None

    def test_bloom_stream_mixes_in_and_out_of_universe(self, truth):
        members = list(bloom_insert_stream(truth, np.random.default_rng(10), 20))
        assert len(members) == 20
        in_universe = [m for m in members if all(e < VOCAB for e in m)]
        out_of_universe = [m for m in members if any(e >= VOCAB for e in m)]
        assert in_universe and out_of_universe
        for member in in_universe:
            assert truth.first_position(member) is None
