"""Scenario suite tests."""
