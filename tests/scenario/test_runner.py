"""Runner smoke tests: the full stack survives a small scenario run.

The tier-1 smoke drives one trimmed read/write scenario end to end and
asserts the observation record is complete and clean.  The full fast
fault-storm (with its real-time backoff windows) runs under ``-m slow``
and in the CI scenario job via the CLI.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.scenario import ScenarioSpec, SLO, get_scenario, grade, run_scenario

SEED = 20260807


def tiny(spec: ScenarioSpec, **overrides) -> ScenarioSpec:
    return dataclasses.replace(
        spec.fast(),
        steps=8,
        queries_per_step=4,
        settle_timeout_s=30.0,
        **overrides,
    )


class TestRunnerSmoke:
    def test_read_write_scenario_end_to_end(self):
        spec = tiny(get_scenario("write-heavy"), max_deltas=8)
        obs = run_scenario(spec, seed=SEED)
        # Correctness invariants hold on a healthy run.
        assert obs["false_negatives"] == 0
        assert obs["index_mismatches"] == 0
        assert obs["invalid_cardinalities"] == 0
        assert obs["failed_requests"] == 0
        assert obs["gather_errors"] == 0
        # All three structure kinds were actually exercised.
        assert obs["bloom_checks"] > 0
        assert obs["index_checks"] > 0
        assert obs["cardinality_checks"] > 0
        # Writes trip the (tiny) staleness policy and deltas replay.
        assert obs["refreshes"] >= 1
        assert obs["replayed_deltas"] >= 1
        # The record is grader-complete.
        for key in (
            "p50_ms", "p99_ms", "cache_hit_rate", "pending_deltas_after",
            "backoff_skips", "degrade_activations", "snapshot_versions",
            "wall_s",
        ):
            assert key in obs
        assert grade(spec, obs) == []

    def test_same_seed_same_workload_shape(self):
        spec = tiny(get_scenario("read-heavy"))
        a = run_scenario(spec, seed=SEED)
        b = run_scenario(spec, seed=SEED)
        # Latency/wall jitter aside, the driven workload is deterministic.
        assert a["ops"] == b["ops"]
        assert a["bloom_checks"] == b["bloom_checks"]
        assert a["index_checks"] == b["index_checks"]


@pytest.mark.slow
@pytest.mark.faults
class TestFaultStormSlow:
    def test_fast_fault_storm_meets_its_slo(self):
        spec = get_scenario("fault-storm")
        obs = run_scenario(spec, seed=SEED, fast=True)
        assert grade(spec, obs) == []
