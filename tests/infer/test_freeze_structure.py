"""freeze_structure: gating, attachment, routing, and refreeze carry-over."""

from __future__ import annotations

import numpy as np
import pytest

from repro.infer import (
    FrozenVariantRejected,
    GateConfig,
    attached_plans,
    freeze_structure,
    refreeze_like,
)

from .conftest import fresh_bloom, fresh_estimator, fresh_index

QUERIES = [(0, 1), (2,), (1, 2, 3), (4, 5), (3,)]


class TestGates:
    def test_all_variants_publish_on_every_structure(
        self, estimator, index, bloom
    ):
        for structure, kind in (
            (estimator, "cardinality"), (index, "index"), (bloom, "bloom")
        ):
            report = freeze_structure(structure, attach=False)
            assert report.kind == kind
            reports = report.parts[0]["reports"]
            assert set(reports) == {"float64", "float32", "int8"}
            for name, entry in reports.items():
                assert entry["accepted"], f"{kind}/{name}: {entry['reason']}"
                assert entry["bits"] in (8, 32, 64)
            sizes = {n: reports[n]["size_bytes"] for n in reports}
            assert sizes["int8"] < sizes["float32"] < sizes["float64"]

    def test_impossible_gate_rejects_quantized_but_never_float64(
        self, collection
    ):
        estimator = fresh_estimator(collection, seed=11)
        report = freeze_structure(
            estimator, gates=GateConfig(max_mean_qerror=1.0), attach=False
        )
        reports = report.parts[0]["reports"]
        assert reports["float64"]["accepted"]
        assert not reports["int8"]["accepted"]
        assert "q-error" in reports["int8"]["reason"]
        planset = report.parts[0]["plans"]
        assert "int8" not in planset.variants
        # active falls back to a published variant
        assert planset.active in planset.variants

    def test_strict_mode_raises_on_rejection(self, collection):
        estimator = fresh_estimator(collection, seed=12)
        with pytest.raises(FrozenVariantRejected) as excinfo:
            freeze_structure(
                estimator,
                gates=GateConfig(max_mean_qerror=1.0),
                strict=True,
                attach=False,
            )
        assert excinfo.value.dtype in ("float32", "int8")

    def test_bloom_gate_counts_decision_flips(self, bloom):
        report = freeze_structure(bloom, attach=False)
        for entry in report.parts[0]["reports"].values():
            metrics = entry["metrics"]
            assert metrics["flip_fraction"] <= 0.02
            assert metrics["new_false_negatives"] == 0


class TestAttachmentAndRouting:
    def test_attached_plan_serves_batches_and_counts_hits(self, collection):
        estimator = fresh_estimator(collection, seed=13)
        before = estimator.estimate_many(QUERIES)
        report = freeze_structure(estimator)
        plan = estimator.infer_plan
        assert plan is report.parts[0]["plans"].active_plan
        hits = plan.hits
        after = estimator.estimate_many(QUERIES)
        assert plan.hits > hits
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-4)

    def test_single_query_paths_route_through_the_plan(self, collection):
        estimator = fresh_estimator(collection, seed=14)
        reference = estimator.estimate((1, 2))
        freeze_structure(estimator)
        assert estimator.estimate((1, 2)) == pytest.approx(reference, rel=1e-4)
        assert estimator.infer_plan.hits >= 1

    def test_stale_plan_falls_back_to_autograd(self, collection):
        estimator = fresh_estimator(collection, seed=15)
        freeze_structure(estimator)
        plan = estimator.infer_plan
        estimator.model.bump_weights_version()
        value = estimator.estimate((1, 2))  # must not raise
        assert np.isfinite(value)
        assert plan.fallbacks >= 1

    def test_detach_restores_the_autograd_path(self, collection):
        estimator = fresh_estimator(collection, seed=16)
        reference = estimator.estimate_many(QUERIES)
        freeze_structure(estimator)
        estimator.detach_plan()
        assert estimator.infer_plan is None
        np.testing.assert_array_equal(
            estimator.estimate_many(QUERIES), reference
        )

    def test_index_and_bloom_route_through_plans(self, collection):
        index = fresh_index(collection, seed=17)
        bloom = fresh_bloom(collection, seed=18)
        index_before = list(index.predict_positions(QUERIES))
        bloom_before = [bloom.contains(q) for q in QUERIES]
        freeze_structure(index)
        freeze_structure(bloom)
        np.testing.assert_allclose(
            list(index.predict_positions(QUERIES)), index_before,
            rtol=1e-4, atol=1e-4,
        )
        assert [bloom.contains(q) for q in QUERIES] == bloom_before
        assert index.infer_plan.hits >= 1
        assert bloom.infer_plan.hits >= 1

    def test_attached_plans_walks_guarded_and_sharded(self, collection):
        from repro.reliability import GuardedCardinalityEstimator

        estimator = fresh_estimator(collection, seed=19)
        guarded = GuardedCardinalityEstimator.for_collection(
            estimator, collection
        )
        assert attached_plans(guarded) == []
        report = freeze_structure(guarded)
        assert len(report.parts) == 1
        assert attached_plans(guarded) == [estimator.infer_plan]


class TestRefreeze:
    def test_refreeze_like_carries_options_to_a_new_generation(
        self, collection
    ):
        old = fresh_estimator(collection, seed=20)
        freeze_structure(
            old, dtypes=("float32",), gates=GateConfig(probe_seed=7)
        )
        new = fresh_estimator(collection, seed=21)
        report = refreeze_like(old, new)
        assert report is not None
        assert new.infer_plan is not None
        assert new.infer_plan.matches(new.model)
        options = new.infer_plan.meta["freeze_options"]
        assert options["gates"]["probe_seed"] == 7

    def test_refreeze_like_without_plans_is_a_no_op(self, collection):
        old = fresh_estimator(collection, seed=22)
        new = fresh_estimator(collection, seed=23)
        assert refreeze_like(old, new) is None
        assert new.infer_plan is None
