"""Differential parity: frozen plans must not change deployed answers.

Reuses the edge-set conformance matrix — {cardinality, index, bloom} x
{unsharded, K=3 sharded}, each guarded — and asserts that attaching
compiled plans leaves every answer unchanged: exact for the defined edge
semantics (empty / OOV / duplicates) and for the index/bloom decisions,
within float32 tolerance for raw cardinality scores.  Served answers are
compared through a *fresh* SetServer per phase so the result cache never
masks a regression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    ModelConfig,
    TrainConfig,
)
from repro.infer import attached_plans, freeze_structure
from repro.reliability import (
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
)
from repro.serve import SetServer
from repro.sets import SetCollection
from repro.shard import ShardedBuilder, ShardPlan

from .conftest import SETS

OOV = 1000

EDGE_QUERIES = [
    ("empty", ()),
    ("singleton", (2,)),
    ("all_oov", (OOV, OOV + 1)),
    ("oov_singleton", (OOV,)),
    ("duplicates", (1, 1, 2, 2)),
    ("duplicate_singleton", (2, 2, 2)),
    ("duplicate_oov", (OOV, OOV)),
]

STORED_QUERIES = [(0, 1), (1, 2), (4, 5), (2, 3, 4), (0,), (5,), (1, 2, 3)]

# Queries the guard answers with a documented constant before any model
# dispatch; everything else flows through the (possibly compiled) model.
GUARD_CONSTANT = {"empty", "all_oov", "oov_singleton", "duplicate_oov"}

ALL_QUERIES = [q for _, q in EDGE_QUERIES] + STORED_QUERIES

KINDS = ("cardinality", "index", "bloom")
DEPLOYMENTS = ("unsharded", "sharded")


def _small_model() -> ModelConfig:
    return ModelConfig(kind="lsm", embedding_dim=2, phi_hidden=(4,),
                       rho_hidden=(4,), seed=0)


def _small_train(loss: str) -> TrainConfig:
    return TrainConfig(epochs=2, batch_size=64, lr=5e-3, loss=loss, seed=0)


@pytest.fixture(scope="module")
def stacks():
    """All six guarded structures, frozen after baselines are captured."""
    collection = SetCollection(SETS)
    rng = np.random.default_rng(0)
    structures = {}
    structures[("cardinality", "unsharded")] = (
        GuardedCardinalityEstimator.for_collection(
            LearnedCardinalityEstimator.build(
                collection, model_config=_small_model(),
                train_config=_small_train("mse"), max_subset_size=3, rng=rng,
            ),
            collection,
        )
    )
    structures[("index", "unsharded")] = GuardedSetIndex(
        LearnedSetIndex.build(
            collection, model_config=_small_model(),
            train_config=_small_train("mse"), max_subset_size=3, rng=rng,
        )
    )
    structures[("bloom", "unsharded")] = GuardedBloomFilter.for_collection(
        LearnedBloomFilter.build(
            collection, model_config=_small_model(),
            train_config=_small_train("bce"), max_subset_size=2, rng=rng,
        ),
        collection,
    )
    plan = ShardPlan.contiguous(collection, 3)
    builder = ShardedBuilder(
        plan,
        workers=1,
        base_seed=0,
        model_config=_small_model(),
        train_config=TrainConfig(epochs=2, batch_size=64, lr=5e-3),
        max_subset_size=3,
        num_negative_samples=100,
    )
    structures[("cardinality", "sharded")] = (
        GuardedCardinalityEstimator.for_collection(
            builder.build("cardinality"), collection
        )
    )
    structures[("index", "sharded")] = GuardedSetIndex(builder.build("index"))
    structures[("bloom", "sharded")] = GuardedBloomFilter.for_collection(
        builder.build("bloom"), collection
    )

    baselines = {
        key: {q: _direct_answer(key[0], structure, q) for q in ALL_QUERIES}
        for key, structure in structures.items()
    }
    served_baselines = {}
    for key, structure in structures.items():
        server = SetServer(structure, cache_size=64).start()
        try:
            served_baselines[key] = {
                q: server.query(list(q)) for q in ALL_QUERIES
            }
        finally:
            server.close()

    reports = {key: freeze_structure(s) for key, s in structures.items()}
    return {
        "structures": structures,
        "baselines": baselines,
        "served_baselines": served_baselines,
        "reports": reports,
    }


def _direct_answer(kind: str, structure, query):
    if kind == "cardinality":
        return structure.estimate(query)
    if kind == "index":
        return structure.lookup(query)
    return structure.contains(query)


def _assert_same(kind, before, after, context):
    if kind == "cardinality":
        assert after == pytest.approx(before, rel=1e-4, abs=1e-4), context
    else:
        assert after == before, context


@pytest.mark.parametrize("deployment", DEPLOYMENTS)
@pytest.mark.parametrize("kind", KINDS)
def test_plans_attach_across_the_matrix(kind, deployment, stacks):
    report = stacks["reports"][(kind, deployment)]
    expected_parts = 3 if deployment == "sharded" else 1
    assert len(report.parts) == expected_parts
    plans = attached_plans(stacks["structures"][(kind, deployment)])
    assert len(plans) == expected_parts


@pytest.mark.parametrize("deployment", DEPLOYMENTS)
@pytest.mark.parametrize("kind", KINDS)
def test_direct_answers_survive_freezing(kind, deployment, stacks):
    structure = stacks["structures"][(kind, deployment)]
    baseline = stacks["baselines"][(kind, deployment)]
    for label, query in EDGE_QUERIES:
        after = _direct_answer(kind, structure, query)
        if label in GUARD_CONSTANT:
            # Guard-defined constants must stay exact on every kind.
            assert after == baseline[query], f"{kind}/{deployment} {label}"
        else:
            _assert_same(kind, baseline[query], after,
                         f"{kind}/{deployment} {label}")
    for query in STORED_QUERIES:
        after = _direct_answer(kind, structure, query)
        _assert_same(kind, baseline[query], after,
                     f"{kind}/{deployment} {query}")


@pytest.mark.parametrize("deployment", DEPLOYMENTS)
@pytest.mark.parametrize("kind", KINDS)
def test_served_answers_survive_freezing(kind, deployment, stacks):
    structure = stacks["structures"][(kind, deployment)]
    baseline = stacks["served_baselines"][(kind, deployment)]
    server = SetServer(structure, cache_size=64).start()
    try:
        for query in ALL_QUERIES:
            after = server.query(list(query))
            _assert_same(kind, baseline[query], after,
                         f"served {kind}/{deployment} {query}")
    finally:
        server.close()


@pytest.mark.parametrize("deployment", DEPLOYMENTS)
@pytest.mark.parametrize("kind", KINDS)
def test_plans_actually_serve_the_queries(kind, deployment, stacks):
    plans = attached_plans(stacks["structures"][(kind, deployment)])
    assert plans
    # Stored (in-vocab) queries must have hit at least one compiled plan;
    # OOV/empty queries are answered by the guard before model dispatch.
    assert sum(plan.hits for plan in plans) > 0
