"""Quantized-plan persistence: save_state / load_state round trips.

Plans ride inside the weight archive under ``__plan__/`` entries so a
restart never has to re-freeze.  The archive must stay byte-deterministic
(two saves of the same state are bit-identical), the whole-file checksum
must cover the plan sections, and a structurally valid archive whose plan
payload is garbage must fail loudly rather than attach a nonsense plan.
"""

from __future__ import annotations

import io
import zipfile

import numpy as np
import pytest

from repro.core.deepsets import DeepSetsModel
from repro.infer import PlanSet, freeze
from repro.nn.serialize import (
    _CHECKSUM_KEY,
    _PLAN_PREFIX,
    _ZIP_EPOCH,
    _state_checksum,
    CorruptStateError,
    load_state,
    save_state,
)

QUERIES = [(1, 2), (7,), (3, 8, 9), (0, 5)]


def _model(seed: int = 0) -> DeepSetsModel:
    return DeepSetsModel(
        vocab_size=20, embedding_dim=3, phi_hidden=(4,), rho_hidden=(4,),
        rng=np.random.default_rng(seed),
    )


def _planset(model) -> PlanSet:
    plans = freeze(model)
    return PlanSet(
        variants=plans, active="float32",
        reports={name: {"accepted": True} for name in plans},
    )


class TestRoundTrip:
    def test_load_state_restores_plans_without_refreezing(self, tmp_path):
        model = _model()
        planset = _planset(model)
        expected = {
            name: plan(QUERIES) for name, plan in planset.variants.items()
        }
        path = tmp_path / "model.npz"
        save_state(model, path, plans=planset)

        restored = load_state(_model(seed=99), path)
        assert restored is not None
        assert restored.active == "float32"
        assert set(restored.variants) == set(planset.variants)
        for name, plan in restored.variants.items():
            np.testing.assert_array_equal(plan(QUERIES), expected[name])

    def test_rebind_anchors_staleness_to_the_loaded_weights(self, tmp_path):
        model = _model()
        path = tmp_path / "model.npz"
        save_state(model, path, plans=_planset(model))
        target = _model(seed=99)
        restored = load_state(target, path)
        # Loading bumps the weight version; rebind must follow it so the
        # plan serves instead of falling back forever.
        assert restored.active_plan.matches(target)
        target.bump_weights_version()
        assert not restored.active_plan.matches(target)

    def test_archive_without_plans_returns_none(self, tmp_path):
        model = _model()
        path = tmp_path / "plain.npz"
        save_state(model, path)
        assert load_state(_model(seed=99), path) is None


class TestByteDeterminism:
    def test_two_saves_are_bit_identical(self, tmp_path):
        model = _model()
        planset = _planset(model)
        first, second = tmp_path / "a.npz", tmp_path / "b.npz"
        save_state(model, first, plans=planset)
        save_state(model, second, plans=planset)
        assert first.read_bytes() == second.read_bytes()


class TestCorruption:
    def test_flipped_payload_byte_fails_the_checksum(self, tmp_path):
        model = _model()
        path = tmp_path / "model.npz"
        save_state(model, path, plans=_planset(model))
        raw = bytearray(path.read_bytes())
        # Flip one byte inside a compressed member body (past the first
        # local header) so the zip still parses but the data changed.
        raw[200] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptStateError):
            load_state(_model(seed=99), path)

    def test_valid_checksum_but_garbage_plan_meta_is_rejected(self, tmp_path):
        """An attacker (or bug) that rewrites the plan section *and* fixes
        the checksum must still be stopped by plan-level validation."""
        model = _model()
        path = tmp_path / "model.npz"
        save_state(model, path, plans=_planset(model))
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
        state.pop(_CHECKSUM_KEY)
        state[_PLAN_PREFIX + "meta"] = np.frombuffer(
            b'{"schema": "bogus"}', dtype=np.uint8
        ).copy()
        state[_CHECKSUM_KEY] = np.asarray(
            [_state_checksum(state)], dtype=np.int64
        )
        with open(path, "wb") as handle:
            with zipfile.ZipFile(handle, "w", zipfile.ZIP_DEFLATED) as out:
                for name in sorted(state):
                    buffer = io.BytesIO()
                    np.lib.format.write_array(
                        buffer, np.asanyarray(state[name])
                    )
                    info = zipfile.ZipInfo(name + ".npy", date_time=_ZIP_EPOCH)
                    info.compress_type = zipfile.ZIP_DEFLATED
                    out.writestr(info, buffer.getvalue())
        with pytest.raises(CorruptStateError, match="inference plans"):
            load_state(_model(seed=99), path)
