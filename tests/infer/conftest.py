"""Shared fixtures for the compiled-inference suite.

Training dominates runtime, so the three learned structures are built once
per session over the same tiny collection the edge-conformance matrix
uses; tests that attach/detach plans or bump weight versions must build
private structures via the ``fresh_*`` helpers instead of mutating the
shared ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    ModelConfig,
    TrainConfig,
)
from repro.sets import SetCollection

SETS = [
    [0, 1, 2],
    [1, 2],
    [0, 3],
    [1, 2, 3],
    [4, 5],
    [0, 4, 5],
    [2, 3, 4],
    [0, 1],
    [3, 5],
    [0, 2, 5],
    [1, 4],
    [2, 5],
]


def small_model_config(seed: int = 0) -> ModelConfig:
    return ModelConfig(
        kind="lsm", embedding_dim=2, phi_hidden=(4,), rho_hidden=(4,), seed=seed
    )


def small_train_config(loss: str = "mse", seed: int = 0) -> TrainConfig:
    return TrainConfig(epochs=2, batch_size=64, lr=5e-3, loss=loss, seed=seed)


def fresh_estimator(collection, seed: int = 0) -> LearnedCardinalityEstimator:
    return LearnedCardinalityEstimator.build(
        collection,
        model_config=small_model_config(seed),
        train_config=small_train_config("mse", seed),
        max_subset_size=3,
        rng=np.random.default_rng(seed),
    )


def fresh_index(collection, seed: int = 0) -> LearnedSetIndex:
    return LearnedSetIndex.build(
        collection,
        model_config=small_model_config(seed),
        train_config=small_train_config("mse", seed),
        max_subset_size=3,
        rng=np.random.default_rng(seed),
    )


def fresh_bloom(collection, seed: int = 0) -> LearnedBloomFilter:
    return LearnedBloomFilter.build(
        collection,
        model_config=small_model_config(seed),
        train_config=small_train_config("bce", seed),
        max_subset_size=2,
        rng=np.random.default_rng(seed),
    )


@pytest.fixture(scope="session")
def collection() -> SetCollection:
    return SetCollection(SETS)


@pytest.fixture(scope="session")
def estimator(collection) -> LearnedCardinalityEstimator:
    return fresh_estimator(collection)


@pytest.fixture(scope="session")
def index(collection) -> LearnedSetIndex:
    return fresh_index(collection)


@pytest.fixture(scope="session")
def bloom(collection) -> LearnedBloomFilter:
    return fresh_bloom(collection)
