"""Raw plan parity: frozen forward vs the autograd forward, per variant.

The float64 plan must track the autograd model to float-noise level
(pooling is re-associated, so bitwise equality is not required); float32
to single-precision noise; int8 within the quantization-grid error.  The
error *contract* — which queries raise, with which message — must be
bit-identical on every variant, or the transparent fallback in the
structures would change behavior under load.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.clsm import CompressedDeepSetsModel
from repro.core.compression import ElementCompressor
from repro.core.deepsets import DeepSetsModel
from repro.infer import InferencePlan, freeze

TOLERANCES = {"float64": 1e-12, "float32": 1e-5, "int8": 0.02}

POOLINGS = ("sum", "mean", "max")


def _queries(vocab: int, rng, count: int = 32, max_size: int = 4):
    out = []
    for _ in range(count):
        size = int(rng.integers(1, max_size + 1))
        out.append(
            tuple(sorted(set(rng.integers(0, vocab, size=size).tolist())))
        )
    return out


def _lsm(pooling: str) -> DeepSetsModel:
    return DeepSetsModel(
        vocab_size=60, embedding_dim=4, phi_hidden=(8,), rho_hidden=(8,),
        pooling=pooling,
    )


def _clsm(pooling: str, fuse: bool) -> CompressedDeepSetsModel:
    return CompressedDeepSetsModel(
        ElementCompressor(max_value=800, divisor=8),
        embedding_dim=4, phi_hidden=(8,), rho_hidden=(8,), pooling=pooling,
        fuse_subelements=fuse,
    )


class TestNumericParity:
    @pytest.mark.parametrize("pooling", POOLINGS)
    def test_lsm_all_variants(self, pooling):
        model = _lsm(pooling)
        queries = _queries(60, np.random.default_rng(1))
        reference = model.predict(queries)
        for name, plan in freeze(model).items():
            delta = np.max(np.abs(plan(queries) - reference))
            assert delta <= TOLERANCES[name], f"{name} off by {delta}"

    @pytest.mark.parametrize("pooling", POOLINGS)
    @pytest.mark.parametrize("fuse", [True, False])
    @pytest.mark.parametrize("fold_limit", [1 << 16, 0])
    def test_clsm_all_variants(self, pooling, fuse, fold_limit):
        model = _clsm(pooling, fuse)
        queries = _queries(800, np.random.default_rng(2))
        reference = model.predict(queries)
        plans = freeze(model, fold_limit=fold_limit)
        assert plans["float64"].meta["folded"] is bool(fold_limit)
        for name, plan in plans.items():
            delta = np.max(np.abs(plan(queries) - reference))
            assert delta <= TOLERANCES[name], f"{name} off by {delta}"

    def test_large_sets_take_the_reduceat_path(self):
        # Sets wider than the padded-pool fanout cap exercise the fallback.
        model = _lsm("sum")
        rng = np.random.default_rng(3)
        queries = [
            tuple(int(v) for v in rng.integers(0, 60, size=30))
            for _ in range(8)
        ]
        assert max(map(len, queries)) > InferencePlan._PAD_POOL_MAX_LEN
        reference = model.predict(queries)
        plan = freeze(model, dtypes=("float64",))["float64"]
        np.testing.assert_allclose(plan(queries), reference, atol=1e-12)

    def test_generators_and_sets_are_accepted(self):
        model = _lsm("sum")
        plan = freeze(model, dtypes=("float64",))["float64"]
        from_tuples = plan([(1, 2), (3,)])
        from_sets = plan([{1, 2}, {3}])
        from_generators = plan(iter([iter((1, 2)), iter((3,))]))
        np.testing.assert_array_equal(from_tuples, from_sets)
        np.testing.assert_array_equal(from_tuples, from_generators)

    def test_forward_flat_matches_call(self):
        model = _lsm("mean")
        plan = freeze(model, dtypes=("float64",))["float64"]
        queries = [(1, 2, 3), (4,), (5, 6)]
        elements = np.asarray([1, 2, 3, 4, 5, 6], dtype=np.int64)
        segment_ids = np.asarray([0, 0, 0, 1, 2, 2], dtype=np.int64)
        np.testing.assert_array_equal(
            plan.forward_flat(elements, segment_ids, 3), plan(queries)
        )


class TestErrorContract:
    @pytest.mark.parametrize("bad", [[()], [(1,), ()], [set(), (1,)]])
    def test_empty_sets_raise_like_autograd(self, bad):
        plan = freeze(_lsm("sum"), dtypes=("float64",))["float64"]
        with pytest.raises(ValueError, match="sets must be non-empty"):
            plan(bad)

    @pytest.mark.parametrize("bad", [1_000_000, -3])
    def test_lsm_oov_message_matches_autograd(self, bad):
        model = _lsm("sum")
        plan = freeze(model, dtypes=("float64",))["float64"]
        with pytest.raises(IndexError) as autograd_error:
            model.predict([(5, bad)])
        with pytest.raises(IndexError) as plan_error:
            plan([(5, bad)])
        assert str(plan_error.value) == str(autograd_error.value)

    @pytest.mark.parametrize("fold_limit", [1 << 16, 0])
    @pytest.mark.parametrize("bad", [1_000_000, -3])
    def test_clsm_oov_message_matches_autograd(self, fold_limit, bad):
        model = _clsm("sum", True)
        plan = freeze(model, fold_limit=fold_limit, dtypes=("float64",))[
            "float64"
        ]
        with pytest.raises(IndexError) as autograd_error:
            model.predict([(5, bad)])
        with pytest.raises(IndexError) as plan_error:
            plan([(5, bad)])
        assert str(plan_error.value) == str(autograd_error.value)

    def test_clsm_overflow_acceptance_matches_autograd(self):
        """Ids above max_value but inside the decomposition cap are accepted
        by the autograd model (the quotient row exists); the plan must
        accept exactly the same id range, not the advertised max_value."""
        model = _clsm("sum", True)
        cap = model.compressor.divisor ** (model.compressor.ns - 1)
        cap *= model.compressor.vocab_sizes()[-1]
        plan = freeze(model, dtypes=("float64",))["float64"]
        assert plan.vocab_size == cap
        edge = cap - 1
        np.testing.assert_allclose(
            plan([(edge,)]), model.predict([(edge,)]), atol=1e-12
        )
        with pytest.raises(IndexError):
            model.predict([(cap,)])
        with pytest.raises(IndexError):
            plan([(cap,)])


class TestStalenessAndRouting:
    def test_matches_tracks_weight_version(self):
        model = _lsm("sum")
        plan = freeze(model, dtypes=("float64",))["float64"]
        assert plan.matches(model)
        model.bump_weights_version()
        assert not plan.matches(model)

    def test_predict_scaled_falls_back_when_stale(self):
        model = _lsm("sum")
        plan = freeze(model, dtypes=("float64",))["float64"]
        assert plan.predict_scaled(model, [(1, 2)]) is not None
        assert plan.hits == 1
        model.bump_weights_version()
        assert plan.predict_scaled(model, [(1, 2)]) is None
        assert plan.fallbacks == 1

    def test_matches_rejects_a_different_architecture(self):
        plan = freeze(_lsm("sum"), dtypes=("float64",))["float64"]
        other = DeepSetsModel(
            vocab_size=60, embedding_dim=3, phi_hidden=(8,), rho_hidden=(8,)
        )
        assert not plan.matches(other)


class TestSerialization:
    @pytest.mark.parametrize("fold_limit", [1 << 16, 0])
    def test_to_from_arrays_roundtrip(self, fold_limit):
        model = _clsm("mean", True)
        queries = _queries(800, np.random.default_rng(4))
        for name, plan in freeze(model, fold_limit=fold_limit).items():
            clone = InferencePlan.from_arrays(plan.to_arrays())
            np.testing.assert_array_equal(clone(queries), plan(queries))
            assert clone.matches(model) == plan.matches(model)

    def test_pickle_roundtrip_drops_locks_but_keeps_math(self):
        model = _lsm("sum")
        plan = freeze(model, dtypes=("float32",))["float32"]
        queries = _queries(60, np.random.default_rng(5))
        clone = pickle.loads(pickle.dumps(plan))
        np.testing.assert_array_equal(clone(queries), plan(queries))
        clone.record_hit()  # fresh lock works
        assert clone.hits == plan.hits + 1

    def test_concurrent_callers_get_private_scratch(self):
        import threading

        model = _lsm("sum")
        plan = freeze(model, dtypes=("float64",))["float64"]
        queries = _queries(60, np.random.default_rng(6), count=64)
        reference = plan(queries)
        failures = []

        def worker():
            for _ in range(20):
                if not np.array_equal(plan(queries), reference):
                    failures.append("diverged")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
