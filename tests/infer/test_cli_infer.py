"""CLI coverage for the freeze / bench-infer / scenario-trend verbs."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.cli import build_parser, main
from repro.infer import attached_plans
from repro.scenario import get_scenario
from repro.sets import SetCollection

from .conftest import SETS, fresh_estimator


@pytest.fixture
def estimator_pickle(tmp_path):
    collection = SetCollection(SETS)
    path = tmp_path / "est.pkl"
    with open(path, "wb") as handle:
        pickle.dump(fresh_estimator(collection, seed=3), handle)
    return path


class TestParser:
    def test_freeze_defaults(self):
        args = build_parser().parse_args(["freeze", "est.pkl"])
        assert args.dtypes == ["float64", "float32", "int8"]
        assert args.active == "float32"
        assert args.strict is False
        assert args.out is None

    def test_bench_infer_defaults(self):
        args = build_parser().parse_args(["bench-infer"])
        assert args.batch_size == 1024
        assert args.min_speedup == 10.0

    def test_scenario_trend_defaults(self):
        args = build_parser().parse_args(["scenario", "trend"])
        assert args.drift_threshold == 0.2
        assert args.path is None


class TestFreeze:
    def test_freeze_attaches_and_repickles_in_place(
        self, estimator_pickle, capsys
    ):
        assert main(["freeze", str(estimator_pickle)]) == 0
        out = capsys.readouterr().out
        assert "accepted" in out
        with open(estimator_pickle, "rb") as handle:
            structure = pickle.load(handle)
        plans = attached_plans(structure)
        assert plans
        assert structure.estimate((1, 2)) >= 0.0

    def test_freeze_writes_to_out_path(self, estimator_pickle, tmp_path):
        target = tmp_path / "frozen.pkl"
        assert main(
            ["freeze", str(estimator_pickle), "--out", str(target)]
        ) == 0
        with open(target, "rb") as handle:
            assert attached_plans(pickle.load(handle))

    def test_strict_freeze_fails_on_impossible_gate(self, estimator_pickle):
        rc = main([
            "freeze", str(estimator_pickle),
            "--max-mean-qerror", "1.0", "--strict",
        ])
        assert rc == 1

    def test_missing_pickle_is_a_usage_error(self, tmp_path):
        assert main(["freeze", str(tmp_path / "nope.pkl")]) == 2


class TestScenarioTrend:
    def _write_records(self, path, fractions):
        budget = get_scenario("read-heavy").slo.max_p99_ms
        lines = [
            json.dumps({
                "bench": "scenario", "scenario": "read-heavy", "seed": 0,
                "fast": True, "passed": True, "violations": [],
                "observations": {"p99_ms": fraction * budget},
            })
            for fraction in fractions
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_stable_trend_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "BENCH_scenarios.json"
        self._write_records(path, [0.1, 0.12])
        assert main(["scenario", "trend", "--path", str(path)]) == 0
        assert "read-heavy" in capsys.readouterr().out

    def test_drifting_trend_exits_one_and_prints_flags(self, tmp_path, capsys):
        path = tmp_path / "BENCH_scenarios.json"
        self._write_records(path, [0.1, 0.6])
        assert main(["scenario", "trend", "--path", str(path)]) == 1
        assert "drifted" in capsys.readouterr().out

    def test_json_output_is_parseable(self, tmp_path, capsys):
        path = tmp_path / "BENCH_scenarios.json"
        self._write_records(path, [0.1, 0.6])
        main(["scenario", "trend", "--path", str(path), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["records"] == 2

    def test_missing_trajectory_file_exits_two(self, tmp_path):
        missing = tmp_path / "absent.json"
        assert main(["scenario", "trend", "--path", str(missing)]) == 2
