"""Predicate-family differential harness (ISSUE 9 acceptance gate).

For every predicate in ``DEFAULT_PREDICATES``, over >= 200 seeded queries
(``REPRO_TEST_SEED`` rotates in CI; every assertion echoes it):

* **exact contracts** — GIN posting-list evaluation, the engine's
  seqscan, and :meth:`InvertedIndex.count_predicate` answer *identically*
  to a brute-force evaluation of :meth:`Predicate.matches`;
* **sharded structure** — the K=3 predicate router's answer is the sum of
  its per-shard answers over the shards the query can touch;
* **estimator gates** — guarded sharded estimates are finite, within
  ``[0, N]``, and within a (generous) aggregate q-error gate of the exact
  counts;
* **served parity** — a :class:`SetServer` over the guarded sharded suite
  answers exactly like direct calls, including the defined
  empty/OOV/oversized semantics per predicate.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.reliability import GuardedPredicateSuite
from repro.engine import SetQueryEngine, SetTable
from repro.serve import SetServer
from repro.sets import InvertedIndex, SetCollection
from repro.sets.predicates import DEFAULT_PREDICATES
from repro.sets.subsets import sample_predicate_workload
from repro.shard import ShardPlan, ShardedBuilder
from repro.core import ModelConfig, TrainConfig

SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))
NUM_QUERIES = 220  # >= 200 per predicate
NUM_SHARDS = 3


def seed_note(context: str = "") -> str:
    note = f"REPRO_TEST_SEED={SEED}"
    return f"{note} ({context})" if context else note


@pytest.fixture(scope="module")
def collection() -> SetCollection:
    rng = np.random.default_rng(SEED * 9973 + 29)
    sets = []
    for _ in range(48):
        size = int(rng.integers(2, 6))
        sets.append(tuple(int(e) for e in rng.choice(26, size=size, replace=False)))
    return SetCollection(sets)


@pytest.fixture(scope="module")
def truth(collection) -> InvertedIndex:
    return InvertedIndex(collection)


@pytest.fixture(scope="module")
def engine(collection) -> SetQueryEngine:
    engine = SetQueryEngine(SetTable.from_collection(collection))
    engine.create_gin_index()
    return engine


@pytest.fixture(scope="module")
def workloads(collection) -> dict[str, list[tuple[int, ...]]]:
    """Per-predicate seeded workloads drawn like the training corpora."""
    out = {}
    for position, predicate in enumerate(DEFAULT_PREDICATES):
        rng = np.random.default_rng(SEED * 613 + position)
        queries = sample_predicate_workload(
            collection, predicate, NUM_QUERIES, rng=rng, max_subset_size=4
        )
        out[predicate.spec] = [tuple(int(e) for e in q) for q in queries]
    return out


@pytest.fixture(scope="module")
def guarded(collection) -> GuardedPredicateSuite:
    """A guarded K=3 sharded predicate suite (tiny training budget)."""
    builder = ShardedBuilder(
        ShardPlan.contiguous(collection, NUM_SHARDS),
        workers=1,
        base_seed=SEED,
        model_config=ModelConfig(
            kind="lsm", embedding_dim=2, phi_hidden=(4,), rho_hidden=(4,)
        ),
        train_config=TrainConfig(epochs=2, batch_size=64, lr=5e-3),
        max_subset_size=4,
        max_training_samples=300,
    )
    sharded = builder.build("predicate")
    return GuardedPredicateSuite.for_collection(sharded, collection)


def brute_force(collection, predicate, query) -> int:
    return sum(predicate.matches(query, stored) for stored in collection)


@pytest.mark.parametrize(
    "predicate", DEFAULT_PREDICATES, ids=lambda p: p.spec
)
class TestExactContracts:
    """Index contracts are exact: no tolerance anywhere in this class."""

    def test_gin_seqscan_and_inverted_index_agree_with_brute_force(
        self, engine, truth, collection, workloads, predicate
    ):
        for query in workloads[predicate.spec]:
            expected = brute_force(collection, predicate, query)
            gin = engine.count(query, plan="gin", predicate=predicate).count
            seqscan = engine.count(
                query, plan="seqscan", predicate=predicate
            ).count
            inverted = truth.count_predicate(predicate, query)
            assert gin == seqscan == inverted == expected, seed_note(
                f"predicate={predicate.spec} query={query}"
            )

    def test_matching_positions_agree_with_brute_force(
        self, truth, collection, workloads, predicate
    ):
        for query in workloads[predicate.spec][:60]:
            expected = [
                position
                for position, stored in enumerate(collection)
                if predicate.matches(query, stored)
            ]
            got = truth.matching_positions_predicate(predicate, query)
            assert list(got) == expected, seed_note(
                f"predicate={predicate.spec} query={query}"
            )


@pytest.mark.parametrize(
    "predicate", DEFAULT_PREDICATES, ids=lambda p: p.spec
)
class TestShardedGuardedServed:
    def test_sharded_answer_is_the_sum_over_matchable_shards(
        self, guarded, workloads, predicate
    ):
        sharded = guarded.suite
        for query in workloads[predicate.spec][:80]:
            canonical = tuple(sorted(set(query)))
            if not canonical:
                continue
            got = float(sharded.estimate(canonical, predicate=predicate))
            expected = 0.0
            for shard_id, part in enumerate(sharded.parts):
                if not sharded._shard_can_match(shard_id, canonical, predicate):
                    continue
                # The router clips each shard's query to the shard's element
                # universe (ids above the ceiling cannot occur in the shard).
                ceiling = sharded._ceilings[shard_id]
                clipped = (
                    canonical
                    if predicate.kind == "subset"
                    else tuple(e for e in canonical if e <= ceiling)
                )
                expected += float(part.estimate(clipped, predicate=predicate))
            assert got == pytest.approx(expected, rel=1e-9), seed_note(
                f"predicate={predicate.spec} query={query}"
            )

    def test_guarded_estimates_pass_the_gates(
        self, guarded, truth, collection, workloads, predicate
    ):
        queries = workloads[predicate.spec]
        estimates = guarded.estimate_many(queries, predicate=predicate)
        exact = np.array(
            [truth.count_predicate(predicate, q) for q in queries], dtype=float
        )
        assert np.all(np.isfinite(estimates)), seed_note(predicate.spec)
        assert np.all(estimates >= 0.0), seed_note(predicate.spec)
        assert np.all(estimates <= len(collection)), seed_note(predicate.spec)
        q_errors = np.maximum(estimates, exact) / np.maximum(
            np.minimum(estimates, exact), 1.0
        )
        # A deliberately generous aggregate gate: the per-shard models are
        # trained for two epochs on 300 samples; the gate catches gross
        # routing/scaling bugs (answers off by the collection size), not
        # model accuracy regressions.
        assert float(np.median(q_errors)) <= 32.0, seed_note(
            f"predicate={predicate.spec} median_q={float(np.median(q_errors)):.2f}"
        )

    def test_served_answers_equal_direct_answers(
        self, guarded, workloads, predicate
    ):
        queries = workloads[predicate.spec]
        direct = [
            float(guarded.estimate(q, predicate=predicate)) for q in queries
        ]
        with SetServer(guarded, cache_size=256) as server:
            served = [
                float(server.query(q, predicate=predicate.spec))
                for q in queries
            ]
            cached = [
                float(server.query(q, predicate=predicate.spec))
                for q in queries
            ]
        assert served == pytest.approx(direct, rel=1e-9), seed_note(
            predicate.spec
        )
        assert cached == served, seed_note(f"{predicate.spec} cached")

    def test_degenerate_queries_have_the_defined_answers_everywhere(
        self, guarded, truth, collection, predicate
    ):
        oov = collection.max_element_id() + 10_000
        oversized = tuple(range(max(len(s) for s in collection) + 2))
        empty_expected = float(predicate.empty_query_count(len(collection)))
        if predicate.kind == "subset":
            oov_expected = 0.0
            oversized_expected = 0.0
        else:
            oov_expected = float(truth.count_predicate(predicate, (0, oov)))
            oversized_expected = float(
                truth.count_predicate(predicate, oversized)
            )
        with SetServer(guarded, cache_size=0) as server:
            for query, expected in (
                ((), empty_expected),
                ((0, oov), oov_expected),
                (oversized, oversized_expected),
            ):
                direct = guarded.estimate(query, predicate=predicate)
                served = server.query(query, predicate=predicate.spec)
                assert direct == served == expected, seed_note(
                    f"predicate={predicate.spec} query={query}"
                )
