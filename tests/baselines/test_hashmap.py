"""Tests for the exact HashMap competitors."""

from __future__ import annotations

import pytest

from repro.baselines import SetHashIndex, SubsetHashMap
from repro.sets import SetCollection


@pytest.fixture
def collection() -> SetCollection:
    return SetCollection([[1, 2, 3], [2, 3], [1, 4], [2, 3, 4], [1, 2, 3]])


class TestSubsetHashMap:
    def test_exact_cardinalities(self, collection):
        hashmap = SubsetHashMap(collection)
        assert hashmap.cardinality((2, 3)) == 4
        assert hashmap.cardinality((1, 2, 3)) == 2
        assert hashmap.cardinality((4,)) == 2
        assert hashmap.cardinality((1, 4)) == 1

    def test_unseen_subset_is_zero(self, collection):
        hashmap = SubsetHashMap(collection)
        assert hashmap.cardinality((1, 2, 3, 4)) == 0
        assert not hashmap.contains((9,))

    def test_query_order_does_not_matter(self, collection):
        hashmap = SubsetHashMap(collection)
        assert hashmap.cardinality((3, 2)) == hashmap.cardinality((2, 3))

    def test_size_cap_limits_universe(self, collection):
        capped = SubsetHashMap(collection, max_subset_size=1)
        full = SubsetHashMap(collection)
        assert len(capped) < len(full)
        assert capped.cardinality((1, 2)) == 0  # beyond the cap

    def test_matches_linear_scan_everywhere(self, collection):
        hashmap = SubsetHashMap(collection)
        from repro.sets import enumerate_subsets

        for stored in collection:
            for subset in enumerate_subsets(stored):
                assert hashmap.cardinality(subset) == collection.cardinality(subset)


class TestSetHashIndex:
    def test_first_position_of_duplicates(self, collection):
        index = SetHashIndex(collection)
        assert index.first_position((1, 2, 3)) == 0  # also stored at 4

    def test_exact_equality_only(self, collection):
        index = SetHashIndex(collection)
        assert index.first_position((2, 3)) == 1
        assert index.first_position((2, 4)) is None  # subset, not a stored set

    def test_query_order_invariance(self, collection):
        index = SetHashIndex(collection)
        assert index.first_position((3, 2, 1)) == 0

    def test_len_counts_positions(self, collection):
        assert len(SetHashIndex(collection)) == len(collection)
