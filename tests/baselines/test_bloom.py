"""Tests for the traditional Bloom filter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BloomFilter, bloom_size_bits, bloom_size_bytes


class TestSizing:
    def test_size_grows_with_items(self):
        assert bloom_size_bits(1000, 0.01) > bloom_size_bits(100, 0.01)

    def test_size_grows_with_stricter_fp(self):
        assert bloom_size_bits(1000, 0.001) > bloom_size_bits(1000, 0.1)

    def test_textbook_value(self):
        # ~9.59 bits per item at 1% fp rate.
        bits = bloom_size_bits(10_000, 0.01)
        assert 9.5 * 10_000 < bits < 9.7 * 10_000

    def test_bytes_conversion(self):
        assert bloom_size_bytes(1000, 0.01) == (bloom_size_bits(1000, 0.01) + 7) // 8

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bloom_size_bits(0, 0.01)
        with pytest.raises(ValueError):
            bloom_size_bits(10, 1.5)


class TestMembership:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=500, fp_rate=0.01)
        keys = list(range(0, 5000, 10))
        for key in keys:
            bloom.add_key(key)
        assert all(bloom.contains_key(key) for key in keys)

    def test_fp_rate_near_target(self):
        capacity = 2000
        bloom = BloomFilter(capacity=capacity, fp_rate=0.01)
        for key in range(capacity):
            bloom.add_key(key)
        probes = np.arange(capacity, capacity + 20_000)
        false_positives = sum(bloom.contains_key(int(k)) for k in probes)
        rate = false_positives / len(probes)
        assert rate < 0.03  # target 0.01 with generous slack

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(capacity=10, fp_rate=0.01)
        assert not any(bloom.contains_key(k) for k in range(100))

    def test_dunder_contains(self):
        bloom = BloomFilter(capacity=10)
        bloom.add_key(5)
        assert 5 in bloom


class TestSetAPI:
    def test_permutation_invariant_membership(self):
        bloom = BloomFilter(capacity=10)
        bloom.add_set([3, 1, 2])
        assert bloom.contains_set([2, 3, 1])

    def test_subset_is_not_member_unless_added(self):
        bloom = BloomFilter(capacity=100, fp_rate=0.001)
        bloom.add_set([1, 2, 3])
        assert not bloom.contains_set([1, 2])

    @settings(max_examples=30, deadline=None)
    @given(
        sets=st.lists(
            st.sets(st.integers(0, 1000), min_size=1, max_size=6),
            min_size=1,
            max_size=30,
        )
    )
    def test_property_inserted_sets_always_found(self, sets):
        bloom = BloomFilter(capacity=max(len(sets), 1), fp_rate=0.05)
        for s in sets:
            bloom.add_set(s)
        for s in sets:
            assert bloom.contains_set(s)


class TestAccounting:
    def test_size_bytes_matches_bit_array(self):
        bloom = BloomFilter(capacity=1000, fp_rate=0.01)
        assert bloom.size_bytes() == (bloom.num_bits + 7) // 8

    def test_fill_ratio_increases(self):
        bloom = BloomFilter(capacity=100, fp_rate=0.01)
        before = bloom.fill_ratio()
        for key in range(100):
            bloom.add_key(key)
        assert bloom.fill_ratio() > before

    def test_num_inserted_counter(self):
        bloom = BloomFilter(capacity=10)
        bloom.add_key(1)
        bloom.add_set([1, 2])
        assert bloom.num_inserted == 2
