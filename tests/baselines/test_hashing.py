"""Tests for permutation-invariant hashing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    canonical_set_hash,
    commutative_set_hash,
    double_hashes,
    element_hash,
)


class TestElementHash:
    def test_deterministic(self):
        assert element_hash(42) == element_hash(42)

    def test_seed_changes_hash(self):
        assert element_hash(42, seed=0) != element_hash(42, seed=1)

    def test_distinct_elements_differ(self):
        hashes = {element_hash(e) for e in range(1000)}
        assert len(hashes) == 1000

    def test_64_bit_range(self):
        assert 0 <= element_hash(123) < 2**64


class TestSetHashes:
    @pytest.mark.parametrize("hash_fn", [canonical_set_hash, commutative_set_hash])
    def test_permutation_invariant(self, hash_fn):
        assert hash_fn([1, 2, 3]) == hash_fn([3, 1, 2])

    @pytest.mark.parametrize("hash_fn", [canonical_set_hash, commutative_set_hash])
    def test_duplicates_collapse(self, hash_fn):
        assert hash_fn([1, 1, 2]) == hash_fn([1, 2])

    @pytest.mark.parametrize("hash_fn", [canonical_set_hash, commutative_set_hash])
    def test_different_sets_differ(self, hash_fn):
        assert hash_fn([1, 2]) != hash_fn([1, 3])

    def test_subset_not_equal_superset(self):
        assert commutative_set_hash([1, 2]) != commutative_set_hash([1, 2, 3])

    @settings(max_examples=50, deadline=None)
    @given(
        elements=st.sets(st.integers(0, 10**6), min_size=1, max_size=10),
        seed=st.integers(0, 100),
    )
    def test_property_invariance_under_random_permutation(self, elements, seed):
        ordered = list(elements)
        shuffled = list(np.random.default_rng(seed).permutation(ordered))
        assert commutative_set_hash(ordered) == commutative_set_hash(shuffled)
        assert canonical_set_hash(ordered) == canonical_set_hash(shuffled)


class TestDoubleHashes:
    def test_count_and_range(self):
        slots = double_hashes(99, count=5, modulus=1000)
        assert len(slots) == 5
        assert all(0 <= s < 1000 for s in slots)

    def test_deterministic(self):
        assert double_hashes(7, 3, 100) == double_hashes(7, 3, 100)

    def test_slots_spread(self):
        # Across many keys, slots should cover most of a small table.
        seen = set()
        for key in range(200):
            seen.update(double_hashes(key, 4, 64))
        assert len(seen) > 55
