"""Tests for the B+ tree, including invariant checks under random workloads."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BPlusTree


class TestBasics:
    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(10, "a")
        tree.insert(5, "b")
        tree.insert(20, "c")
        assert tree.search(5) == ["b"]
        assert tree.search(10) == ["a"]
        assert tree.search(20) == ["c"]

    def test_missing_key_returns_empty(self):
        tree = BPlusTree()
        tree.insert(1, "x")
        assert tree.search(2) == []
        assert 2 not in tree
        assert 1 in tree

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert(7, "first")
        tree.insert(7, "second")
        assert tree.search(7) == ["first", "second"]
        assert len(tree) == 2
        assert tree.num_unique_keys == 1

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)


class TestSplitsAndStructure:
    def test_many_inserts_stay_sorted(self):
        tree = BPlusTree(order=4)
        keys = list(range(100, 0, -1))
        for key in keys:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == sorted(keys)
        tree.check_invariants()

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=4)
        for key in range(500):
            tree.insert(key, key)
        assert 2 <= tree.height() <= 7
        tree.check_invariants()

    def test_large_order_stays_shallow(self):
        tree = BPlusTree(order=100)
        for key in range(5000):
            tree.insert(key, key)
        assert tree.height() <= 3
        tree.check_invariants()

    def test_all_keys_retrievable_after_splits(self):
        tree = BPlusTree(order=3)
        rng = np.random.default_rng(0)
        keys = rng.permutation(300)
        for key in keys:
            tree.insert(int(key), int(key) * 2)
        for key in keys:
            assert tree.search(int(key)) == [int(key) * 2]


class TestRangeScan:
    @pytest.fixture
    def tree(self):
        t = BPlusTree(order=4)
        for key in range(0, 100, 2):  # even keys
            t.insert(key, f"v{key}")
        return t

    def test_inclusive_bounds(self, tree):
        result = [k for k, _ in tree.range_scan(10, 20)]
        assert result == [10, 12, 14, 16, 18, 20]

    def test_bounds_between_keys(self, tree):
        result = [k for k, _ in tree.range_scan(11, 19)]
        assert result == [12, 14, 16, 18]

    def test_empty_range(self, tree):
        assert list(tree.range_scan(101, 200)) == []

    def test_full_range(self, tree):
        assert len(list(tree.range_scan(0, 98))) == 50

    def test_range_scan_includes_duplicates(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(5, "b")
        tree.insert(6, "c")
        assert [(k, v) for k, v in tree.range_scan(5, 6)] == [
            (5, "a"),
            (5, "b"),
            (6, "c"),
        ]


class TestPickling:
    def test_roundtrip_preserves_entries(self):
        import pickle

        tree = BPlusTree(order=4)
        for key in [5, 1, 5, 9, 3]:
            tree.insert(key, f"v{key}")
        clone = pickle.loads(pickle.dumps(tree))
        clone.check_invariants()
        assert clone.search(5) == ["v5", "v5"]
        assert len(clone) == 5
        assert clone.order == 4

    def test_deep_leaf_chain_does_not_recurse(self):
        """Pickling must not recurse through the leaf chain (flat state)."""
        import pickle

        tree = BPlusTree(order=3)
        for key in range(5000):
            tree.insert(key, key)
        clone = pickle.loads(pickle.dumps(tree))
        assert clone.search(4999) == [4999]


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
    order=st.integers(3, 16),
)
def test_property_matches_dict_reference(keys, order):
    """The tree agrees with a dict-of-lists reference on any workload."""
    tree = BPlusTree(order=order)
    reference: dict[int, list[int]] = {}
    for position, key in enumerate(keys):
        tree.insert(key, position)
        reference.setdefault(key, []).append(position)
    tree.check_invariants()
    for key, expected in reference.items():
        assert tree.search(key) == expected
    assert tree.search(10_000) == []
    assert [k for k, _ in tree.items()] == sorted(
        k for k, bucket in reference.items() for _ in bucket
    )


@settings(max_examples=20, deadline=None)
@given(
    keys=st.lists(st.integers(0, 500), min_size=1, max_size=150),
    low=st.integers(0, 500),
    span=st.integers(0, 100),
)
def test_property_range_scan_matches_filter(keys, low, span):
    tree = BPlusTree(order=5)
    for key in keys:
        tree.insert(key, key)
    high = low + span
    expected = sorted(k for k in keys if low <= k <= high)
    assert [k for k, _ in tree.range_scan(low, high)] == expected
