"""Smoke tests: every example script runs end to end at reduced scale."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize(
    "script,args,expected",
    [
        ("quickstart.py", (), "learned cardinality estimate"),
        ("hashtag_analytics.py", ("800",), "hashtag cardinality estimation"),
        ("server_log_index.py", ("600",), "learned index vs B+ tree"),
        ("membership_filter.py", ("600",), "membership filtering"),
        ("engine_count_queries.py", ("800",), "COUNT queries, three regimes"),
    ],
)
def test_example_runs(script, args, expected):
    result = run_example(script, *args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout
