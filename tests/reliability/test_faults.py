"""FaultInjector mechanics: budgets, installation, and the serialize hook."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import nn
from repro.nn.serialize import CorruptStateError, load_state, save_state
from repro.reliability import ALWAYS, FaultInjector, active_injector
from repro.reliability import faults

pytestmark = pytest.mark.faults


class TestBudgets:
    def test_prediction_budget_counts_down(self):
        injector = FaultInjector(nan_predictions=2)
        assert math.isnan(injector.prediction(1.0))
        assert math.isnan(injector.prediction(2.0))
        assert injector.prediction(3.0) == 3.0
        assert injector.predictions_corrupted == 2

    def test_always_budget_never_runs_out(self):
        injector = FaultInjector(nan_predictions=ALWAYS)
        for value in range(50):
            assert math.isnan(injector.prediction(float(value)))
        assert injector.nan_predictions == ALWAYS

    def test_batched_predictions_respect_budget(self):
        injector = FaultInjector(nan_predictions=2)
        out = injector.predictions(np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert np.isnan(out[:2]).all()
        np.testing.assert_allclose(out[2:], [3.0, 4.0])

    def test_loss_budget(self):
        injector = FaultInjector(nan_losses=1)
        assert math.isnan(injector.loss(0.5))
        assert injector.loss(0.5) == 0.5
        assert injector.losses_corrupted == 1


class TestInstallation:
    def test_context_manager_installs_and_uninstalls(self):
        assert active_injector() is None
        with FaultInjector(nan_predictions=ALWAYS) as injector:
            assert active_injector() is injector
            assert math.isnan(faults.corrupt_prediction(1.0))
        assert active_injector() is None

    def test_hooks_are_identity_when_inactive(self):
        assert faults.corrupt_prediction(2.5) == 2.5
        assert faults.corrupt_loss(0.1) == 0.1
        values = np.asarray([1.0, 2.0])
        assert faults.corrupt_predictions(values) is values


class TestSerializeFault:
    def test_truncated_save_detected_on_load(self, rng, tmp_path):
        model = nn.MLP(3, [4], 1, rng=rng)
        path = tmp_path / "weights.npz"
        with FaultInjector(truncate_saves=1, truncate_to_bytes=16) as injector:
            save_state(model, path)
        assert injector.saves_corrupted == 1
        assert path.stat().st_size == 16
        with pytest.raises(CorruptStateError) as excinfo:
            load_state(model, path)
        assert str(path) in str(excinfo.value)
