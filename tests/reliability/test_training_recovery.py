"""Divergence-safe training: rollback, LR backoff, and bounded retries."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    DeepSetsModel,
    LogMinMaxScaler,
    OutlierRemovalConfig,
    TrainConfig,
    guided_fit,
)
from repro.core.training import Trainer, TrainingDivergedError
from repro.datasets import digit_sum_training_data
from repro.nn.data import RaggedArray, SetDataLoader
from repro.reliability import ALWAYS, FaultInjector

pytestmark = pytest.mark.faults


def _digits_loader_and_model(num_samples: int = 160, seed: int = 0):
    sets, sums = digit_sum_training_data(num_samples, max_set_size=5, max_digit=10, seed=seed)
    scaler = LogMinMaxScaler().fit(sums)
    model = DeepSetsModel(11, 4, (8,), (8,), rng=np.random.default_rng(seed))
    loader = SetDataLoader(
        RaggedArray(sets),
        scaler.transform(sums),
        batch_size=32,
        rng=np.random.default_rng(seed),
    )
    return model, loader, scaler, sets, sums


class TestRecovery:
    def test_recovers_from_injected_nan_and_converges(self):
        """An injected NaN loss triggers rollback + backoff, then training
        still converges on the synthetic digits dataset."""
        model, loader, _, _, _ = _digits_loader_and_model()
        config = TrainConfig(
            epochs=10, batch_size=32, lr=5e-3, loss="mse", seed=0,
            max_divergence_retries=3, lr_backoff=0.5,
        )
        trainer = Trainer(model, config)
        with FaultInjector(nan_losses=2) as injector:
            history = trainer.fit(loader)
        assert injector.losses_corrupted == 2
        assert history.divergences >= 1
        assert history.lr_backoffs, "rollback must shrink the learning rate"
        assert history.lr_backoffs[0] == pytest.approx(5e-3 * 0.5)
        assert all(math.isfinite(loss) for loss in history.losses)
        assert len(history.losses) == config.epochs
        assert history.final_loss < history.losses[0]

    def test_weights_stay_finite_after_recovery(self):
        model, loader, _, _, _ = _digits_loader_and_model()
        config = TrainConfig(epochs=4, lr=5e-3, loss="mse", seed=0)
        with FaultInjector(nan_losses=1):
            Trainer(model, config).fit(loader)
        for parameter in model.parameters():
            assert np.isfinite(parameter.data).all()

    def test_exhausted_retries_raise(self):
        model, loader, _, _, _ = _digits_loader_and_model(num_samples=64)
        config = TrainConfig(
            epochs=3, lr=5e-3, loss="mse", seed=0, max_divergence_retries=1
        )
        with FaultInjector(nan_losses=ALWAYS):
            with pytest.raises(TrainingDivergedError, match="non-finite loss"):
                Trainer(model, config).fit(loader)

    def test_zero_retries_surface_immediately(self):
        model, loader, _, _, _ = _digits_loader_and_model(num_samples=64)
        config = TrainConfig(epochs=3, lr=5e-3, loss="mse", seed=0,
                             max_divergence_retries=0)
        with FaultInjector(nan_losses=1):
            with pytest.raises(TrainingDivergedError):
                Trainer(model, config).fit(loader)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(max_divergence_retries=-1)
        with pytest.raises(ValueError):
            TrainConfig(lr_backoff=0.0)
        with pytest.raises(ValueError):
            TrainConfig(lr_backoff=1.5)


class TestGuidedFitGuards:
    def test_extreme_percentile_keeps_corpus_non_empty(self, rng):
        """A near-zero percentile with a full removal budget must not evict
        every sample."""
        model = DeepSetsModel(6, 2, (4,), (4,), rng=rng)
        scaler = LogMinMaxScaler.from_bounds(0, 10)
        sets = [[i % 5] for i in range(20)]
        targets = np.arange(20, dtype=np.float64) % 10
        result = guided_fit(
            model,
            sets,
            targets,
            scaler,
            TrainConfig(epochs=4, seed=0),
            removal=OutlierRemovalConfig(
                percentile=0.5, at_epochs=(1, 2, 3), max_fraction_removed=1.0
            ),
            rng=np.random.default_rng(0),
        )
        assert result.num_outliers < len(sets)
        assert result.eviction_clamped or result.num_outliers < len(sets) - 1

    def test_budget_hits_surfaced(self, rng):
        model = DeepSetsModel(6, 2, (4,), (4,), rng=rng)
        scaler = LogMinMaxScaler.from_bounds(0, 10)
        sets = [[i % 5] for i in range(20)]
        targets = np.arange(20, dtype=np.float64) % 10
        result = guided_fit(
            model,
            sets,
            targets,
            scaler,
            TrainConfig(epochs=5, seed=0),
            removal=OutlierRemovalConfig(
                percentile=1.0, at_epochs=(1, 2, 3, 4), max_fraction_removed=0.1
            ),
            rng=np.random.default_rng(0),
        )
        assert result.budget_hits >= 1
        assert result.num_outliers <= 2  # 10% of 20
