"""Fuzzing the weight-archive loader: corrupt bytes must never load wrong.

``load_state`` guards the hot-swap path: a refresher that reloads a
corrupted archive must get a :class:`CorruptStateError` it can back off
on — never a module that silently serves garbage.  These tests byte-flip
and truncate real ``save_state`` archives for all three structure models
(cardinality estimator, set index, Bloom filter) and assert the contract:
every load either raises ``CorruptStateError`` or yields weights
bit-identical to what was saved (a flip in archive slack is harmless, a
flip anywhere meaningful is caught).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.nn.serialize import CorruptStateError, load_state, save_state

pytestmark = pytest.mark.faults

FLIPS_PER_ARCHIVE = 48
TRUNCATIONS_PER_ARCHIVE = 16


def _reference_state(model, path):
    """The float32 state a clean load of ``path`` produces."""
    clone = copy.deepcopy(model)
    load_state(clone, path)
    return {name: array.copy() for name, array in clone.state_dict().items()}


def _assert_never_wrong(model, path, reference):
    """A fuzzed archive must raise CorruptStateError or load exactly."""
    target = copy.deepcopy(model)
    try:
        load_state(target, path)
    except CorruptStateError:
        return
    loaded = target.state_dict()
    assert set(loaded) == set(reference)
    for name, array in reference.items():
        np.testing.assert_array_equal(
            loaded[name],
            array,
            err_msg=f"fuzzed archive loaded with altered weights in {name!r}",
        )


@pytest.fixture(params=["estimator", "index", "bloom"])
def model(request):
    structure = request.getfixturevalue(request.param)
    return structure.model


class TestByteFlipFuzz:
    def test_single_byte_flips_never_load_wrong(self, model, tmp_path):
        path = tmp_path / "weights.npz"
        save_state(model, path)
        pristine = path.read_bytes()
        reference = _reference_state(model, path)
        rng = np.random.default_rng(20260807)
        offsets = rng.choice(
            len(pristine), size=min(FLIPS_PER_ARCHIVE, len(pristine)), replace=False
        )
        for offset in offsets:
            corrupted = bytearray(pristine)
            corrupted[offset] ^= 1 << int(rng.integers(8))
            path.write_bytes(bytes(corrupted))
            _assert_never_wrong(model, path, reference)

    def test_multi_byte_burst_flips_never_load_wrong(self, model, tmp_path):
        path = tmp_path / "weights.npz"
        save_state(model, path)
        pristine = path.read_bytes()
        reference = _reference_state(model, path)
        rng = np.random.default_rng(20260808)
        for _ in range(8):
            corrupted = bytearray(pristine)
            start = int(rng.integers(len(pristine) - 8))
            for offset in range(start, start + 8):
                corrupted[offset] ^= int(rng.integers(1, 256))
            path.write_bytes(bytes(corrupted))
            _assert_never_wrong(model, path, reference)


class TestTruncationFuzz:
    def test_truncations_raise_corrupt(self, model, tmp_path):
        path = tmp_path / "weights.npz"
        save_state(model, path)
        pristine = path.read_bytes()
        rng = np.random.default_rng(20260809)
        # The zip central directory lives at the end of the file, so any
        # strict prefix is unreadable — including cutting mid-entry.
        lengths = set(
            int(n) for n in rng.integers(1, len(pristine), TRUNCATIONS_PER_ARCHIVE)
        )
        lengths.update((1, 2, len(pristine) // 2, len(pristine) - 1))
        for length in sorted(lengths):
            path.write_bytes(pristine[:length])
            with pytest.raises(CorruptStateError):
                load_state(copy.deepcopy(model), path)

    def test_empty_file_raises_corrupt(self, model, tmp_path):
        path = tmp_path / "weights.npz"
        path.write_bytes(b"")
        with pytest.raises(CorruptStateError):
            load_state(copy.deepcopy(model), path)
