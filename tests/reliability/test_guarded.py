"""Guarded serving: defined edge semantics and exact fallback under faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (
    ALWAYS,
    FaultInjector,
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
    REASON_EMPTY,
    REASON_INVALID_PREDICTION,
    REASON_OOV,
    REASON_OVERSIZED,
)
from repro.sets import sample_query_workload

OOV_QUERY = (900, 901)


@pytest.fixture
def guarded_estimator(estimator, collection):
    return GuardedCardinalityEstimator.for_collection(estimator, collection)


@pytest.fixture
def guarded_index(index):
    return GuardedSetIndex(index)


@pytest.fixture
def guarded_bloom(bloom, collection):
    return GuardedBloomFilter.for_collection(bloom, collection)


class TestCardinalityEdgeSemantics:
    def test_empty_query_counts_every_set(self, guarded_estimator, collection):
        assert guarded_estimator.estimate([]) == float(len(collection))
        assert guarded_estimator.health.short_circuits[REASON_EMPTY] == 1

    def test_oversized_query_is_zero(self, guarded_estimator):
        oversized = tuple(range(6))  # in-vocab but larger than any stored set
        assert guarded_estimator.estimate(oversized) == 0.0
        assert guarded_estimator.health.short_circuits[REASON_OVERSIZED] == 1

    def test_all_oov_query_is_zero(self, guarded_estimator):
        assert guarded_estimator.estimate(OOV_QUERY) == 0.0
        assert guarded_estimator.health.short_circuits[REASON_OOV] == 1

    def test_negative_ids_are_oov(self, guarded_estimator):
        assert guarded_estimator.estimate([-3, 1]) == 0.0

    def test_malformed_query_is_zero(self, guarded_estimator):
        assert guarded_estimator.estimate(["#hashtag"]) == 0.0

    def test_duplicates_collapse(self, guarded_estimator):
        assert guarded_estimator.estimate([1, 1, 2, 2]) == guarded_estimator.estimate([1, 2])

    def test_model_answers_recorded(self, guarded_estimator):
        guarded_estimator.estimate([1, 2])
        assert guarded_estimator.health.model_answers == 1
        assert guarded_estimator.health.healthy()


class TestIndexEdgeSemantics:
    def test_empty_query_first_position(self, guarded_index):
        assert guarded_index.lookup([]) == 0

    def test_oversized_query_not_found(self, guarded_index):
        assert guarded_index.lookup(tuple(range(10))) is None

    def test_all_oov_query_not_found(self, guarded_index):
        assert guarded_index.lookup(OOV_QUERY) is None

    def test_duplicates_collapse(self, guarded_index):
        assert guarded_index.lookup([2, 2, 1, 1]) == guarded_index.lookup([1, 2])

    def test_trained_queries_exact(self, guarded_index, truth, collection):
        queries = sample_query_workload(
            collection, 30, rng=np.random.default_rng(5), max_subset_size=3
        )
        for query in queries:
            assert guarded_index.lookup(query) == truth.first_position(query)


class TestBloomEdgeSemantics:
    def test_empty_query_is_member(self, guarded_bloom):
        assert guarded_bloom.contains([]) is True

    def test_oversized_query_absent(self, guarded_bloom):
        assert guarded_bloom.contains(tuple(range(10))) is False

    def test_all_oov_query_absent(self, guarded_bloom):
        assert guarded_bloom.contains(OOV_QUERY) is False

    def test_malformed_query_absent(self, guarded_bloom):
        assert guarded_bloom.contains([object()]) is False

    def test_oov_checks_backup_for_post_training_inserts(self, bloom, collection):
        guarded = GuardedBloomFilter.for_collection(bloom, collection)
        guarded.filter.insert(OOV_QUERY)
        assert guarded.contains(OOV_QUERY) is True

    def test_duplicates_collapse(self, guarded_bloom):
        assert guarded_bloom.contains([1, 1, 2]) == guarded_bloom.contains([1, 2])


@pytest.mark.faults
class TestNanPredictionFallback:
    """Forced NaN predictions: every answer must match the exact structure."""

    def test_cardinality_falls_back_to_exact(self, guarded_estimator, truth, collection):
        queries = sample_query_workload(
            collection, 25, rng=np.random.default_rng(7), max_subset_size=3
        )
        with FaultInjector(nan_predictions=ALWAYS):
            estimates = [guarded_estimator.estimate(q) for q in queries]
        # Hybrid auxiliary hits stay exact without the model; everything else
        # must have been answered by the inverted index.
        for query, estimate in zip(queries, estimates):
            assert estimate == float(truth.cardinality(query))
        assert guarded_estimator.health.exact_fallbacks[REASON_INVALID_PREDICTION] > 0

    def test_index_falls_back_to_exact(self, guarded_index, truth, collection):
        queries = sample_query_workload(
            collection, 25, rng=np.random.default_rng(8), max_subset_size=3
        )
        with FaultInjector(nan_predictions=ALWAYS):
            positions = [guarded_index.lookup(q) for q in queries]
        for query, position in zip(queries, positions):
            assert position == truth.first_position(query)
        assert guarded_index.health.total_fallbacks > 0

    def test_bloom_has_zero_false_negatives(self, guarded_bloom, bloom):
        with FaultInjector(nan_predictions=ALWAYS):
            answers = [guarded_bloom.contains(p) for p in bloom.trained_positives]
        assert all(answers), "guarded Bloom filter produced a false negative"

    def test_unguarded_bloom_fails_open_on_nan_scores(self, bloom):
        """Even the raw filter upholds no-false-negatives: a non-finite
        score carries no evidence of absence, so it answers True (false
        positives are the Bloom contract's permitted failure mode)."""
        baseline = [bloom.contains(p) for p in bloom.trained_positives]
        assert all(baseline)
        with FaultInjector(nan_predictions=ALWAYS):
            nan_answers = [bloom.contains(p) for p in bloom.trained_positives]
            batched = bloom.contains_many(bloom.trained_positives)
        assert all(nan_answers), "raw Bloom filter false-negatived on NaN"
        assert all(batched)


@pytest.mark.faults
class TestOovFlood:
    """100%-OOV floods must degrade to defined misses, never exceptions."""

    def test_cardinality_flood(self, guarded_estimator):
        rng = np.random.default_rng(3)
        for _ in range(200):
            query = tuple(rng.integers(1000, 2000, size=3))
            assert guarded_estimator.estimate(query) == 0.0
        assert guarded_estimator.health.queries == 200

    def test_index_flood(self, guarded_index):
        rng = np.random.default_rng(4)
        assert all(
            guarded_index.lookup(tuple(rng.integers(1000, 2000, size=2))) is None
            for _ in range(200)
        )

    def test_bloom_flood(self, guarded_bloom):
        rng = np.random.default_rng(5)
        assert not any(
            guarded_bloom.contains(tuple(rng.integers(1000, 2000, size=2)))
            for _ in range(200)
        )


class TestHealthReporting:
    def test_report_line_mentions_reasons(self, guarded_estimator):
        guarded_estimator.estimate([])
        guarded_estimator.estimate(OOV_QUERY)
        line = guarded_estimator.health.report_line()
        assert "[health] cardinality" in line
        assert REASON_EMPTY in line and REASON_OOV in line

    def test_as_dict_and_reset(self, guarded_estimator):
        guarded_estimator.estimate([1, 2])
        snapshot = guarded_estimator.health.as_dict()
        assert snapshot["queries"] == 1
        guarded_estimator.health.reset()
        assert guarded_estimator.health.queries == 0
