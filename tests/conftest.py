"""Shared test fixtures and numeric helpers."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, seeded random generator per test."""
    return np.random.default_rng(12345)


def numeric_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func()`` w.r.t. ``array``.

    ``func`` must recompute the full forward pass reading ``array`` in place.
    """
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = func()
        array[index] = original - eps
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2.0 * eps)
        iterator.iternext()
    return grad
