"""DeltaBuffer: sequencing, bounded retention, dedup, and hook wiring."""

from __future__ import annotations

import threading

import pytest

from repro.core.hooks import UpdateNotifier
from repro.maintain import DeltaBuffer


class _Mutable(UpdateNotifier):
    """Minimal structure exposing the real UpdateNotifier surface."""

    def poke(self, canonical: tuple[int, ...]) -> None:
        self._notify_update(canonical)


class TestRecording:
    def test_record_assigns_increasing_sequence_numbers(self):
        buffer = DeltaBuffer()
        assert buffer.record((0, 1)) == 1
        assert buffer.record((2,)) == 2
        assert buffer.total_events == 2

    def test_attach_records_structure_notifications(self):
        buffer = DeltaBuffer()
        structure = _Mutable()
        buffer.attach(structure)
        structure.poke((3, 4))
        assert buffer.total_events == 1
        assert buffer.events_since(0) == ([(3, 4)], False)

    def test_detach_stops_recording(self):
        buffer = DeltaBuffer()
        structure = _Mutable()
        buffer.attach(structure)
        buffer.detach(structure)
        structure.poke((1,))
        assert buffer.total_events == 0
        # Detaching twice (or a never-attached structure) is a no-op.
        buffer.detach(structure)
        buffer.detach(_Mutable())

    def test_detach_all_clears_every_subscription(self):
        buffer = DeltaBuffer()
        structures = [_Mutable(), _Mutable(), _Mutable()]
        for structure in structures:
            buffer.attach(structure)
        assert buffer.as_dict()["attached"] == 3
        buffer.detach_all()
        assert buffer.as_dict()["attached"] == 0
        for structure in structures:
            structure.poke((9,))
        assert buffer.total_events == 0


class TestWindowing:
    def test_mark_and_pending_since(self):
        buffer = DeltaBuffer()
        buffer.record((0,))
        mark = buffer.mark()
        assert buffer.pending_since(mark) == 0
        buffer.record((1,))
        buffer.record((2,))
        assert buffer.pending_since(mark) == 2
        assert buffer.pending_since(0) == 3

    def test_events_since_deduplicates_preserving_first_occurrence(self):
        buffer = DeltaBuffer()
        for canonical in [(0, 1), (2,), (0, 1), (3,), (2,)]:
            buffer.record(canonical)
        canonicals, truncated = buffer.events_since(0)
        assert canonicals == [(0, 1), (2,), (3,)]
        assert truncated is False

    def test_events_since_respects_the_mark(self):
        buffer = DeltaBuffer()
        buffer.record((0,))
        mark = buffer.mark()
        buffer.record((1,))
        assert buffer.events_since(mark) == ([(1,)], False)

    def test_overflow_drops_oldest_and_flags_truncation(self):
        buffer = DeltaBuffer(max_events=4)
        for element in range(10):
            buffer.record((element,))
        assert buffer.dropped == 6
        canonicals, truncated = buffer.events_since(0)
        assert canonicals == [(6,), (7,), (8,), (9,)]
        assert truncated is True
        # A window that starts after the dropped range is not truncated.
        canonicals, truncated = buffer.events_since(7)
        assert canonicals == [(7,), (8,), (9,)]
        assert truncated is False

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            DeltaBuffer(max_events=0)


class TestConcurrency:
    def test_concurrent_recording_never_loses_or_repeats_a_sequence(self):
        buffer = DeltaBuffer()
        per_thread = 200
        seqs: list[list[int]] = [[] for _ in range(8)]

        def writer(slot: int) -> None:
            for i in range(per_thread):
                seqs[slot].append(buffer.record((slot, i)))

        threads = [
            threading.Thread(target=writer, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        observed = [seq for slot in seqs for seq in slot]
        assert len(observed) == 8 * per_thread
        assert sorted(observed) == list(range(1, 8 * per_thread + 1))
        assert buffer.total_events == 8 * per_thread
