"""StalenessPolicy: trip reasons, disabled signals, aux-fraction probes."""

from __future__ import annotations

import json
import math
from types import SimpleNamespace

import pytest

from repro.maintain import StalenessPolicy, StalenessState, aux_fraction_of

from .conftest import fresh_estimator


class TestEvaluate:
    def test_fresh_state_trips_nothing(self):
        assert StalenessPolicy().evaluate(StalenessState()) == []

    def test_delta_count_trips_at_threshold(self):
        policy = StalenessPolicy(max_deltas=5)
        assert policy.evaluate(StalenessState(pending_deltas=4)) == []
        assert policy.evaluate(StalenessState(pending_deltas=5)) == ["delta_count"]

    def test_aux_fraction_trips_at_threshold(self):
        policy = StalenessPolicy(max_aux_fraction=0.5)
        assert policy.evaluate(StalenessState(aux_fraction=0.49)) == []
        assert policy.evaluate(StalenessState(aux_fraction=0.5)) == ["aux_fraction"]

    def test_probe_q_error_trips_only_when_finite_and_above(self):
        policy = StalenessPolicy(max_probe_q_error=2.0)
        assert policy.evaluate(StalenessState(probe_q_error=1.5)) == []
        assert policy.evaluate(StalenessState(probe_q_error=math.nan)) == []
        assert policy.evaluate(StalenessState(probe_q_error=2.5)) == [
            "q_error_drift"
        ]

    def test_none_disables_each_signal(self):
        policy = StalenessPolicy(
            max_deltas=None, max_aux_fraction=None, max_probe_q_error=None
        )
        saturated = StalenessState(
            pending_deltas=10**9, aux_fraction=1.0, probe_q_error=1e9
        )
        assert policy.evaluate(saturated) == []

    def test_multiple_reasons_accumulate(self):
        policy = StalenessPolicy(
            max_deltas=1, max_aux_fraction=0.1, max_probe_q_error=1.5
        )
        state = StalenessState(
            pending_deltas=10, aux_fraction=0.9, probe_q_error=3.0
        )
        assert policy.evaluate(state) == [
            "delta_count",
            "aux_fraction",
            "q_error_drift",
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_deltas": 0},
            {"max_aux_fraction": 0.0},
            {"max_probe_q_error": 0.5},
            {"min_interval_s": -1.0},
        ],
    )
    def test_invalid_thresholds_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StalenessPolicy(**kwargs)


class TestSerialization:
    def test_state_as_dict_is_json_safe_without_a_probe(self):
        payload = StalenessState(pending_deltas=3, aux_fraction=0.1).as_dict()
        assert payload["probe_q_error"] is None
        json.dumps(payload)  # NaN would make strict JSON encoding fail

    def test_state_as_dict_keeps_finite_probe_values(self):
        payload = StalenessState(probe_q_error=1.25).as_dict()
        assert payload["probe_q_error"] == 1.25

    def test_policy_as_dict_round_trips_thresholds(self):
        policy = StalenessPolicy(max_deltas=7, max_aux_fraction=0.3)
        payload = policy.as_dict()
        assert payload["max_deltas"] == 7
        assert payload["max_aux_fraction"] == 0.3
        json.dumps(payload)


class TestAuxFraction:
    def test_trained_estimator_starts_clean_and_drifts_with_updates(
        self, collection
    ):
        estimator = fresh_estimator(collection, seed=21)
        baseline = aux_fraction_of(estimator)
        estimator.record_update((0, 1), 40)
        estimator.record_update((2, 3), 41)
        assert aux_fraction_of(estimator) > baseline

    def test_guarded_facade_measures_the_wrapped_structure(self, collection, truth):
        from repro.reliability import GuardedCardinalityEstimator

        estimator = fresh_estimator(collection, seed=22)
        estimator.record_update((0,), 9)
        guarded = GuardedCardinalityEstimator(estimator, truth, max_query_size=3)
        assert aux_fraction_of(guarded) == aux_fraction_of(estimator)

    def test_sharded_stub_takes_max_of_router_and_part_fractions(self):
        part = SimpleNamespace(
            auxiliary={(0,): 1.0},
            report=SimpleNamespace(num_training_subsets=4),
        )
        router = SimpleNamespace(
            parts=[part],
            plan=SimpleNamespace(num_sets=10),
            auxiliary={(1,): 2.0},
        )
        # Router layer: 1/10; the saturated part dominates at 1/4.
        assert aux_fraction_of(router) == pytest.approx(0.25)

    def test_structures_without_an_auxiliary_report_zero(self):
        assert aux_fraction_of(object()) == 0.0
