"""BackgroundRefresher: retrain, replay, rewrap, hot swap, observability."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.maintain import (
    BackgroundRefresher,
    RefreshError,
    StalenessPolicy,
    default_rebuilder,
    mutate_through,
)
from repro.reliability import GuardedCardinalityEstimator
from repro.serve import SetServer

from tests.serve.conftest import wait_until

from .conftest import fresh_estimator, small_model_config, small_train_config


@pytest.fixture
def serving(collection):
    """A private server over a fresh estimator plus a refresher factory.

    The factory tracks every refresher it makes so teardown detaches their
    delta buffers (listeners on shared structures would leak across tests).
    """
    estimator = fresh_estimator(collection, seed=31)
    server = SetServer(estimator, cache_size=64).start()
    made = []

    def make(**kwargs):
        rebuild = kwargs.pop("rebuild", None)
        if rebuild is None:
            rebuild = default_rebuilder(
                server.structure,
                collection=collection,
                model_config=small_model_config(1),
                train_config=small_train_config(1),
                max_subset_size=3,
            )
        refresher = BackgroundRefresher(server, rebuild, **kwargs)
        made.append(refresher)
        return refresher

    yield server, make
    for refresher in made:
        refresher.close()
        refresher.delta.detach_all()
    server.maintainer = None
    server.close()


class TestManualRefresh:
    def test_refresh_swaps_replays_and_bumps_the_snapshot(self, serving):
        server, make = serving
        refresher = make()
        old = server.structure
        version = server.snapshot.version
        server.structure.record_update((0, 1), 37)
        server.structure.record_update((4, 5), 11)
        snapshot = refresher.refresh_now()
        assert server.structure is not old
        assert snapshot.version == version + 1
        # Replay carried both absorbed updates onto the fresh model.
        assert server.query((0, 1)) == 37.0
        assert server.query((4, 5)) == 11.0
        assert refresher.refreshes == 1
        assert refresher.replayed >= 2

    def test_refresh_moves_the_delta_subscription_to_the_new_structure(
        self, serving
    ):
        server, make = serving
        refresher = make()
        refresher.refresh_now()
        assert refresher.delta.as_dict()["attached"] == 1
        before = refresher.delta.total_events
        server.structure.record_update((2, 3), 5)
        assert refresher.delta.total_events == before + 1
        # The new mutation is pending again (watermark advanced at refresh).
        assert refresher.collect_state().pending_deltas == 1

    def test_refresh_emits_a_span_with_reasons_and_replay_count(self, serving):
        server, make = serving
        refresher = make()
        server.structure.record_update((1, 2), 8)
        refresher.refresh_now(("aux_fraction", "delta_count"))
        spans = [
            span for span in server.tracer.snapshot() if span["name"] == "refresh"
        ]
        assert spans, "refresh must leave a trace span"
        attrs = spans[-1]["attrs"]
        assert attrs["kind"] == "cardinality"
        assert attrs["reasons"] == "aux_fraction,delta_count"
        assert attrs["replayed"] >= 1
        assert attrs["snapshot_version"] == server.snapshot.version

    def test_refresh_metrics_appear_in_the_exposition(self, serving):
        server, make = serving
        refresher = make()
        refresher.refresh_now()
        text = server.registry.render_text()
        assert "repro_maintain_refreshes_total 1" in text
        assert "repro_maintain_checks_total" in text
        assert "repro_maintain_deltas_pending" in text
        assert "repro_maintain_running 0" in text  # loop not started

    def test_guarded_facade_is_rewrapped_around_the_new_inner(
        self, collection, truth
    ):
        estimator = fresh_estimator(collection, seed=33)
        guarded = GuardedCardinalityEstimator(estimator, truth, max_query_size=3)
        server = SetServer(guarded, cache_size=16).start()
        refresher = BackgroundRefresher(
            server,
            default_rebuilder(
                guarded,
                collection=collection,
                model_config=small_model_config(2),
                train_config=small_train_config(2),
                max_subset_size=3,
            ),
        )
        try:
            refresher.refresh_now()
            new = server.structure
            assert isinstance(new, GuardedCardinalityEstimator)
            assert new is not guarded
            assert new.estimator is not estimator
            assert new.exact is truth  # the collection never changed
            assert new.max_query_size == 3
        finally:
            refresher.close()
            refresher.delta.detach_all()
            server.maintainer = None
            server.close()

    def test_status_is_json_serializable_and_reflects_the_refresh(self, serving):
        server, make = serving
        refresher = make()
        refresher.refresh_now()
        status = refresher.status()
        json.dumps(status, sort_keys=True)
        assert status["auto_refresh"] is True
        assert status["refreshes"] == 1
        assert status["last_reasons"] == ["manual"]
        assert status["last_error"] is None
        assert status["snapshot_version"] == server.snapshot.version


class TestFailurePath:
    def test_failed_rebuild_keeps_the_old_generation_serving(self, serving):
        server, make = serving

        def broken(_inner):
            raise RuntimeError("training diverged")

        refresher = make(rebuild=broken)
        old = server.structure
        version = server.snapshot.version
        with pytest.raises(RefreshError, match="training diverged"):
            refresher.refresh_now()
        assert server.structure is old
        assert server.snapshot.version == version
        assert refresher.failures == 1
        assert refresher.refreshes == 0
        assert "training diverged" in refresher.status()["last_error"]
        # The server still answers.
        assert isinstance(server.query((0, 1)), float)

    def test_background_loop_survives_refresh_failures(self, serving):
        server, make = serving

        def broken(_inner):
            raise RuntimeError("boom")

        refresher = make(
            rebuild=broken,
            policy=StalenessPolicy(max_deltas=1),
            interval_s=0.01,
        )
        refresher.start()
        try:
            server.structure.record_update((0,), 4)
            assert wait_until(lambda: refresher.failures >= 2)
            assert refresher.running
        finally:
            refresher.close()
        assert refresher.refreshes == 0


class TestBackgroundLoop:
    def test_policy_trip_triggers_a_background_refresh(self, serving):
        server, make = serving
        refresher = make(policy=StalenessPolicy(max_deltas=3), interval_s=0.01)
        refresher.start()
        try:
            old = server.structure
            for i, value in enumerate((21, 22, 23)):
                server.structure.record_update((i, i + 1), value)
            assert wait_until(lambda: refresher.refreshes >= 1)
            assert server.structure is not old
            assert refresher.status()["last_reasons"] == ["delta_count"]
            # Replayed values survive the retrain.
            assert server.query((0, 1)) == 21.0
        finally:
            refresher.close()

    def test_min_interval_rate_limits_consecutive_refreshes(self, serving):
        server, make = serving
        refresher = make(
            policy=StalenessPolicy(max_deltas=1, min_interval_s=3600.0)
        )
        server.structure.record_update((0,), 5)
        assert refresher.check_now() is True
        assert refresher.refreshes == 1
        server.structure.record_update((1,), 6)
        # The policy trips again but the rate limiter holds it back.
        assert refresher.check_now() is False
        assert refresher.refreshes == 1

    def test_quiet_state_never_refreshes(self, serving):
        _server, make = serving
        refresher = make(policy=StalenessPolicy(max_deltas=5))
        assert refresher.check_now() is False
        assert refresher.refreshes == 0
        assert refresher.checks == 1


class TestMutateThrough:
    def test_mutation_racing_a_swap_is_reapplied_to_the_new_generation(
        self, collection
    ):
        first = fresh_estimator(collection, seed=34)
        second = fresh_estimator(collection, seed=35)
        server = SetServer(first, cache_size=16).start()
        try:
            seen = []

            def mutator(inner):
                seen.append(inner)
                inner.record_update((0, 1), 55)
                if len(seen) == 1:
                    server.swap(second)  # a refresh lands mid-mutation
                return inner

            mutate_through(server, mutator)
            assert seen == [first, second]
            # The generation that is actually serving carries the update.
            assert server.query((0, 1)) == 55.0
        finally:
            server.close()

    def test_unraced_mutation_applies_once(self, collection):
        estimator = fresh_estimator(collection, seed=36)
        server = SetServer(estimator, cache_size=16).start()
        try:
            seen = []

            def mutator(inner):
                seen.append(inner)
                inner.record_update((2,), 7)

            mutate_through(server, mutator)
            assert seen == [estimator]
        finally:
            server.close()


class TestDefaultRebuilder:
    def test_estimator_without_collection_is_rejected_up_front(self, serving):
        server, _make = serving
        with pytest.raises(ValueError, match="collection"):
            default_rebuilder(server.structure)

    def test_successive_rebuilds_use_fresh_seeds(self, serving):
        server, make = serving
        refresher = make()
        refresher.refresh_now()
        first = server.structure
        refresher.refresh_now()
        assert server.structure is not first
        assert refresher.refreshes == 2
        assert server.snapshot.version >= 2


class TestShardedRefresh:
    @pytest.fixture(scope="class")
    def sharded_setup(self):
        from repro.sets import SetCollection
        from repro.shard import ShardedBuilder, ShardPlan

        rng = np.random.default_rng(17)
        sets = []
        for _ in range(24):
            size = int(rng.integers(2, 5))
            sets.append(
                tuple(int(e) for e in rng.choice(16, size=size, replace=False))
            )
        collection = SetCollection(sets)
        plan = ShardPlan.contiguous(collection, 3)
        router = ShardedBuilder(
            plan,
            workers=1,
            base_seed=0,
            model_config=small_model_config(),
            train_config=small_train_config(epochs=1),
            max_subset_size=3,
            num_negative_samples=50,
        ).build("index")
        return collection, router

    def test_sharded_router_is_rebuilt_per_shard_and_replayed(self, sharded_setup):
        _collection, router = sharded_setup
        server = SetServer(router, cache_size=32).start()
        refresher = BackgroundRefresher(
            server,
            default_rebuilder(
                router,
                model_config=small_model_config(),
                train_config=small_train_config(epochs=1),
                max_subset_size=3,
                num_negative_samples=50,
            ),
        )
        try:
            server.structure.insert_update((5, 7), 3)
            refresher.refresh_now()
            new = server.structure
            assert new is not router
            assert type(new) is type(router)
            assert new.plan is router.plan
            assert len(new.parts) == len(router.parts)
            # The router-level override survived the per-shard retrain.
            assert server.query((5, 7)) == 3
            assert refresher.replayed >= 1
        finally:
            refresher.close()
            refresher.delta.detach_all()
            server.maintainer = None
            server.close()
