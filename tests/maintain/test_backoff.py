"""Refresh failure backoff and circuit breaker.

A persistently failing rebuild must not burn CPU retraining into the same
wall on every policy evaluation: consecutive failures suspend
policy-triggered refreshes exponentially, repeated failures open a
circuit breaker, and manual ``refresh_now`` calls bypass both — the old
generation keeps serving throughout.
"""

from __future__ import annotations

import pytest

from repro.maintain import BackgroundRefresher, RefreshError, StalenessPolicy
from repro.serve import SetServer

from .conftest import fresh_estimator, wait_until


def _tripped_policy() -> StalenessPolicy:
    """A policy that trips as soon as two deltas are pending."""
    return StalenessPolicy(max_deltas=1, max_aux_fraction=None, min_interval_s=0.0)


@pytest.fixture
def serving(collection):
    estimator = fresh_estimator(collection, seed=71)
    server = SetServer(estimator, cache_size=0).start()
    made = []

    def make(rebuild, **kwargs):
        refresher = BackgroundRefresher(
            server, rebuild, policy=_tripped_policy(), **kwargs
        )
        made.append(refresher)
        return refresher

    yield server, make
    for refresher in made:
        refresher.close()
        refresher.delta.detach_all()
    server.maintainer = None
    server.close()


def _trip(refresher) -> None:
    refresher.delta.record((0, 1))
    refresher.delta.record((1, 2))


def _broken(_inner):
    raise RuntimeError("rebuild is wedged")


class TestBackoff:
    def test_failed_refresh_suspends_policy_refreshes(self, serving):
        _server, make = serving
        refresher = make(_broken, backoff_base_s=30.0, breaker_failures=99)
        _trip(refresher)
        with pytest.raises(RefreshError):
            refresher.check_now()
        assert refresher.backoff_remaining_s() > 0.0
        assert refresher.status()["consecutive_failures"] == 1
        # The policy still trips, but the evaluation is suppressed.
        assert refresher.check_now() is False
        assert refresher.backoff_skips == 1
        assert refresher.failures == 1  # no second attempt was made

    def test_backoff_grows_exponentially(self, serving):
        _server, make = serving
        refresher = make(
            _broken, backoff_base_s=10.0, backoff_max_s=600.0, breaker_failures=99
        )
        _trip(refresher)
        remaining = []
        for _ in range(3):
            with pytest.raises(RefreshError):
                refresher.refresh_now(("test",))
            remaining.append(refresher.backoff_remaining_s())
        # 10s, then ~20s, then ~40s (monotonic growth is the contract).
        assert remaining[0] <= 10.0
        assert remaining[1] > remaining[0]
        assert remaining[2] > remaining[1]

    def test_backoff_caps_at_max(self, serving):
        _server, make = serving
        refresher = make(
            _broken, backoff_base_s=10.0, backoff_max_s=15.0, breaker_failures=99
        )
        for _ in range(6):
            with pytest.raises(RefreshError):
                refresher.refresh_now(("test",))
        assert refresher.backoff_remaining_s() <= 15.0

    def test_success_resets_backoff_and_failure_streak(self, serving, collection):
        server, make = serving
        state = {"broken": True}

        def flaky(inner):
            if state["broken"]:
                raise RuntimeError("still wedged")
            return fresh_estimator(collection, seed=72)

        refresher = make(flaky, backoff_base_s=30.0, breaker_failures=99)
        with pytest.raises(RefreshError):
            refresher.refresh_now(("test",))
        assert refresher.backoff_remaining_s() > 0.0
        state["broken"] = False
        # Manual refresh bypasses the backoff window entirely.
        refresher.refresh_now(("manual",))
        assert refresher.backoff_remaining_s() == 0.0
        assert refresher.status()["consecutive_failures"] == 0
        assert refresher.breaker_state == "closed"

    def test_backoff_gauge_and_skip_counter_in_exposition(self, serving):
        server, make = serving
        refresher = make(_broken, backoff_base_s=60.0, breaker_failures=99)
        _trip(refresher)
        with pytest.raises(RefreshError):
            refresher.check_now()
        assert refresher.check_now() is False
        text = server.registry.render_text()
        backoff = [
            line for line in text.splitlines()
            if line.startswith("repro_maintain_refresh_backoff ")
        ]
        assert backoff and float(backoff[0].split()[1]) > 0.0
        skips = [
            line for line in text.splitlines()
            if line.startswith("repro_maintain_backoff_skips_total ")
        ]
        assert skips and float(skips[0].split()[1]) == refresher.backoff_skips


class TestCircuitBreaker:
    def test_breaker_opens_after_consecutive_failures(self, serving):
        server, make = serving
        refresher = make(
            _broken,
            backoff_base_s=0.01,
            breaker_failures=2,
            breaker_cooldown_s=60.0,
        )
        for _ in range(2):
            with pytest.raises(RefreshError):
                refresher.refresh_now(("test",))
        assert refresher.breaker_state == "open"
        # The open breaker enforces at least the cooldown, not the (tiny)
        # exponential delay.
        assert refresher.backoff_remaining_s() > 1.0
        text = server.registry.render_text()
        gauge = [
            line for line in text.splitlines()
            if line.startswith("repro_maintain_breaker_open ")
        ]
        assert gauge and float(gauge[0].split()[1]) == 1.0

    def test_breaker_goes_half_open_after_cooldown(self, serving):
        _server, make = serving
        refresher = make(
            _broken,
            backoff_base_s=0.001,
            backoff_max_s=0.001,
            breaker_failures=1,
            breaker_cooldown_s=0.0,
        )
        with pytest.raises(RefreshError):
            refresher.refresh_now(("test",))
        # Wait out the (1ms) exponential delay instead of sleeping a fixed
        # amount: on a loaded box a fixed sleep is a flake either way.
        assert wait_until(lambda: refresher.breaker_state == "half-open")
        assert refresher.status()["breaker_state"] == "half-open"

    def test_half_open_success_closes_the_breaker(self, serving, collection):
        _server, make = serving
        state = {"broken": True}

        def flaky(inner):
            if state["broken"]:
                raise RuntimeError("still wedged")
            return fresh_estimator(collection, seed=73)

        refresher = make(
            flaky, backoff_base_s=0.001, backoff_max_s=0.001,
            breaker_failures=1, breaker_cooldown_s=0.0,
        )
        with pytest.raises(RefreshError):
            refresher.refresh_now(("test",))
        assert wait_until(lambda: refresher.breaker_state == "half-open")
        state["broken"] = False
        refresher.refresh_now(("probe",))
        assert refresher.breaker_state == "closed"

    def test_constructor_validates_knobs(self, serving):
        _server, make = serving
        with pytest.raises(ValueError):
            make(_broken, backoff_base_s=0.0)
        with pytest.raises(ValueError):
            make(_broken, breaker_failures=0)
        with pytest.raises(ValueError):
            make(_broken, breaker_cooldown_s=-1.0)
