"""Shared fixtures for the maintenance suite.

Mirrors the serving suite's economics: training dominates, so a read-only
estimator is built once per session, while tests that mutate or refresh
train fresh cheap structures through :func:`fresh_estimator`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LearnedCardinalityEstimator, ModelConfig, TrainConfig
from repro.sets import InvertedIndex, SetCollection

from tests.serve.conftest import wait_until  # noqa: F401  (suite-wide helper)

SETS = [
    [0, 1, 2],
    [1, 2],
    [0, 3],
    [1, 2, 3],
    [4, 5],
    [0, 4, 5],
    [2, 3, 4],
    [0, 1],
    [3, 5],
    [0, 2, 5],
    [1, 4],
    [2, 5],
]


def small_model_config(seed: int = 0) -> ModelConfig:
    return ModelConfig(
        kind="lsm", embedding_dim=2, phi_hidden=(4,), rho_hidden=(4,), seed=seed
    )


def small_train_config(seed: int = 0, epochs: int = 2) -> TrainConfig:
    return TrainConfig(epochs=epochs, batch_size=64, lr=5e-3, loss="mse", seed=seed)


def fresh_estimator(collection, seed: int = 0) -> LearnedCardinalityEstimator:
    """A cheap private estimator for tests that mutate or swap it away."""
    return LearnedCardinalityEstimator.build(
        collection,
        model_config=small_model_config(seed),
        train_config=small_train_config(seed),
        max_subset_size=3,
        rng=np.random.default_rng(seed),
    )


@pytest.fixture(scope="session")
def collection() -> SetCollection:
    return SetCollection(SETS)


@pytest.fixture(scope="session")
def truth(collection) -> InvertedIndex:
    return InvertedIndex(collection)


@pytest.fixture(scope="session")
def estimator(collection) -> LearnedCardinalityEstimator:
    """Read-only shared estimator; mutating tests use fresh_estimator."""
    return fresh_estimator(collection)
