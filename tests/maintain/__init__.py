"""Incremental maintenance suite: delta buffer, staleness, refresh, soak."""
