"""Maintenance soak: 10k interleaved ops on the full served stack.

The acceptance scenario for the maintenance subsystem: K=3 sharded,
guarded index and Bloom structures behind concurrent servers with
auto-refresh enabled, driven by interleaved queries and inserts until at
least one background refresh has retrained and hot-swapped a generation.
Throughout (including across swaps) the stack must uphold its hard
guarantees:

* the Bloom filter never answers a false negative — not for stored
  subsets, not for post-build inserts (in- or out-of-universe), and not
  after a refresh retrained the models underneath;
* the index never violates its error bounds — stored subsets resolve to
  the exact global first position, inserted overrides resolve to their
  inserted position;
* no torn snapshot — every submitted future resolves to a well-typed
  answer and the servers count zero failed requests.

The workload seed rotates via ``REPRO_TEST_SEED`` (CI echoes it); it is
embedded in every assertion message so failures are replayable.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import ModelConfig, TrainConfig
from repro.maintain import BackgroundRefresher, StalenessPolicy, default_rebuilder, mutate_through
from repro.reliability import GuardedBloomFilter, GuardedSetIndex
from repro.serve import SetServer
from repro.sets import InvertedIndex, SetCollection
from repro.shard import ShardedBuilder, ShardPlan

from tests.serve.conftest import wait_until

SEED = int(os.environ.get("REPRO_TEST_SEED", "20260805"))

TARGET_OPS = 10_000
NUM_SHARDS = 3
VOCAB = 26
MAX_DELTAS = 80  # staleness trip point: low enough for several refreshes


def _collection(rng) -> SetCollection:
    sets = []
    for _ in range(48):
        size = int(rng.integers(2, 6))
        sets.append(tuple(int(e) for e in rng.choice(VOCAB, size=size, replace=False)))
    return SetCollection(sets)


def _stored_subsets(collection, rng, max_size: int, count: int):
    """In-universe positives: subsets of stored sets, sized 1..max_size."""
    subsets = []
    for _ in range(count):
        base = collection[int(rng.integers(len(collection)))]
        size = int(rng.integers(1, min(max_size, len(base)) + 1))
        subsets.append(
            tuple(sorted(int(e) for e in rng.choice(base, size=size, replace=False)))
        )
    return subsets

def _absent_combos(truth, rng, count: int, max_size: int = 3):
    """In-universe element combinations stored in no set (insert targets)."""
    combos = []
    seen = set()
    while len(combos) < count:
        size = int(rng.integers(2, max_size + 1))
        combo = tuple(sorted(int(e) for e in rng.choice(VOCAB, size=size, replace=False)))
        if combo in seen or truth.first_position(combo) is not None:
            continue
        seen.add(combo)
        combos.append(combo)
    return combos


def _build_stack():
    rng = np.random.default_rng(SEED)
    collection = _collection(rng)
    truth = InvertedIndex(collection)
    plan = ShardPlan.contiguous(collection, NUM_SHARDS)
    model_config = ModelConfig(
        kind="lsm", embedding_dim=2, phi_hidden=(4,), rho_hidden=(4,)
    )
    train_config = TrainConfig(epochs=1, batch_size=64, lr=5e-3)

    def build(task, max_subset_size):
        return ShardedBuilder(
            plan,
            workers=1,
            base_seed=SEED % 1000,
            model_config=model_config,
            train_config=train_config,
            max_subset_size=max_subset_size,
            num_negative_samples=50,
        ).build(task)

    index = GuardedSetIndex(build("index", 3), truth)
    bloom = GuardedBloomFilter(build("bloom", 2), truth)
    return collection, truth, rng, model_config, train_config, index, bloom


@pytest.mark.slow
def test_soak_ten_thousand_ops_with_background_refresh():
    (
        collection,
        truth,
        rng,
        model_config,
        train_config,
        index,
        bloom,
    ) = _build_stack()
    print(f"maintenance soak seed={SEED}")

    servers = {
        "index": SetServer(index, cache_size=256).start(),
        "bloom": SetServer(bloom, cache_size=256).start(),
    }
    refreshers = {}
    for kind, server in servers.items():
        refreshers[kind] = BackgroundRefresher(
            server,
            default_rebuilder(
                server.structure,
                model_config=model_config,
                train_config=train_config,
                max_subset_size=3 if kind == "index" else 2,
                num_negative_samples=50,
            ),
            policy=StalenessPolicy(
                max_deltas=MAX_DELTAS,
                # Inserts target combos outside the trained subsets, so the
                # aux fraction saturates by design: delta count is the
                # trigger, min_interval paces back-to-back rebuilds.
                max_aux_fraction=None,
                min_interval_s=0.5,
            ),
            interval_s=0.05,
        ).start()

    # Pre-planned insert streams: index overrides target combinations that
    # are stored nowhere (so truth answers stay unshadowed); bloom inserts
    # mix in-universe combos with out-of-universe sets (the backup path).
    index_inserts = iter(
        [(combo, 1000 + i) for i, combo in enumerate(_absent_combos(truth, rng, 600))]
    )
    bloom_in_universe = _absent_combos(truth, rng, 300)
    bloom_inserts = iter(
        bloom_in_universe
        + [(VOCAB + 100 + i, VOCAB + 400 + i) for i in range(300)]
    )

    inserted_positions: dict[tuple[int, ...], int] = {}
    inserted_members: list[tuple[int, ...]] = []
    ops = 0
    tag = f"(seed={SEED})"
    try:
        while ops < TARGET_OPS:
            # -- one burst of open-loop queries per server -------------------
            index_stored = _stored_subsets(collection, rng, 3, 10)
            index_overrides = list(inserted_positions)[-4:]
            bloom_stored = _stored_subsets(collection, rng, 2, 10)
            bloom_known = inserted_members[-4:]
            batch = []
            for query in index_stored + index_overrides:
                batch.append(("index", query, servers["index"].submit(query)))
            for query in bloom_stored + bloom_known:
                batch.append(("bloom", query, servers["bloom"].submit(query)))

            # -- interleaved inserts, swap-safe via mutate_through -----------
            for _ in range(2):
                try:
                    combo, position = next(index_inserts)
                except StopIteration:
                    break
                mutate_through(
                    servers["index"],
                    lambda inner, c=combo, p=position: inner.insert_update(c, p),
                )
                inserted_positions[combo] = position
                ops += 1
            for _ in range(2):
                try:
                    member = next(bloom_inserts)
                except StopIteration:
                    break
                canonical = tuple(sorted(member))
                mutate_through(
                    servers["bloom"], lambda inner, c=canonical: inner.insert(c)
                )
                inserted_members.append(canonical)
                ops += 1

            # -- gather and verify every answer ------------------------------
            for kind, query, future in batch:
                answer = future.result(timeout=60.0)
                ops += 1
                if kind == "bloom":
                    assert bool(answer) is True, (
                        f"bloom false negative for {query} {tag}"
                    )
                elif query in inserted_positions:
                    assert answer == inserted_positions[query], (
                        f"index lost inserted override {query} {tag}"
                    )
                else:
                    assert answer == truth.first_position(query), (
                        f"index violated exactness for {query} {tag}"
                    )

        # -- at least one background refresh must have been published --------
        assert wait_until(
            lambda: sum(r.refreshes for r in refreshers.values()) >= 1,
            timeout=120.0,
        ), f"no background refresh after {ops} ops {tag}"

        for kind, server in servers.items():
            refresher = refreshers[kind]
            status = refresher.status()
            assert status["failures"] == 0, f"{kind} refresh failed {tag}: {status}"
            # Query spans evict old entries from the tracer ring, so observe
            # a refresh span on a refresh we just triggered ourselves.
            refresher.refresh_now(("soak-verify",))
            spans = [
                span
                for span in server.tracer.snapshot()
                if span["name"] == "refresh"
            ]
            assert spans, f"{kind} refresh left no trace span {tag}"
            assert spans[-1]["attrs"]["reasons"] == "soak-verify"
            assert spans[-1]["attrs"]["snapshot_version"] == server.snapshot.version
            text = server.registry.render_text()
            samples = [
                line
                for line in text.splitlines()
                if line.startswith("repro_maintain_refreshes_total ")
            ]
            assert samples and float(samples[0].split()[1]) == refresher.refreshes

        # -- post-refresh: the guarantees still hold on the new generation ---
        for query in _stored_subsets(collection, rng, 3, 40):
            assert servers["index"].query(query) == truth.first_position(query), (
                f"index exactness broken after refresh for {query} {tag}"
            )
        for query in _stored_subsets(collection, rng, 2, 40):
            assert servers["bloom"].query(query), (
                f"bloom false negative after refresh for {query} {tag}"
            )
        for combo, position in list(inserted_positions.items())[-50:]:
            assert servers["index"].query(combo) == position, (
                f"index insert lost across refresh for {combo} {tag}"
            )
        for member in inserted_members[-50:]:
            assert servers["bloom"].query(member), (
                f"bloom insert lost across refresh for {member} {tag}"
            )

        # -- no torn snapshot: nothing failed end to end ---------------------
        for kind, server in servers.items():
            assert server.stats.requests_failed == 0, f"{kind} dropped requests {tag}"
        assert ops >= TARGET_OPS
    finally:
        for refresher in refreshers.values():
            refresher.close()
            refresher.delta.detach_all()
        for server in servers.values():
            server.maintainer = None
            server.close()
