"""Refresh must carry compiled inference plans onto the new generation."""

from __future__ import annotations

import pytest

from repro.infer import attached_plans, freeze_structure
from repro.maintain import BackgroundRefresher, default_rebuilder
from repro.serve import SetServer

from .conftest import fresh_estimator, small_model_config, small_train_config


@pytest.fixture
def serving(collection):
    estimator = fresh_estimator(collection, seed=41)
    server = SetServer(estimator, cache_size=64).start()
    made = []

    def make(**kwargs):
        rebuild = kwargs.pop("rebuild", None)
        if rebuild is None:
            rebuild = default_rebuilder(
                server.structure,
                collection=collection,
                model_config=small_model_config(1),
                train_config=small_train_config(1),
                max_subset_size=3,
            )
        refresher = BackgroundRefresher(server, rebuild, **kwargs)
        made.append(refresher)
        return refresher

    yield server, make
    for refresher in made:
        refresher.close()
        refresher.delta.detach_all()
    server.maintainer = None
    server.close()


def test_refresh_refreezes_the_new_generation(serving):
    server, make = serving
    freeze_structure(server.structure)
    old_plans = attached_plans(server.structure)
    assert old_plans
    refresher = make()
    refresher.refresh_now()
    new_plans = attached_plans(server.structure)
    assert new_plans, "retrained structure lost its compiled plans"
    assert new_plans[0] is not old_plans[0]
    assert new_plans[0].matches(server.structure.model)
    status = refresher.status()
    assert status["last_refreeze_s"] > 0.0
    assert status["last_error"] is None


def test_refreeze_cost_is_exported_as_a_gauge(serving):
    server, make = serving
    freeze_structure(server.structure)
    refresher = make()
    refresher.refresh_now()
    text = server.registry.render_text()
    line = next(
        line for line in text.splitlines()
        if line.startswith("repro_maintain_refreeze_seconds")
        and not line.startswith("#")
    )
    assert float(line.split()[-1]) > 0.0


def test_refresh_without_plans_records_zero_cost_freeze(serving):
    server, make = serving
    refresher = make()
    refresher.refresh_now()
    assert attached_plans(server.structure) == []
    # refreeze_like ran (and no-opped); the duration gauge is still set.
    assert refresher.status()["last_refreeze_s"] >= 0.0
    assert refresher.status()["last_error"] is None


def test_refreeze_failure_does_not_fail_the_refresh(serving, monkeypatch):
    import repro.infer

    server, make = serving
    freeze_structure(server.structure)

    def boom(old, new, **kwargs):
        raise RuntimeError("synthetic freeze explosion")

    monkeypatch.setattr(repro.infer, "refreeze_like", boom)
    refresher = make()
    snapshot = refresher.refresh_now()  # must not raise
    assert snapshot is not None
    assert refresher.refreshes == 1
    status = refresher.status()
    assert any("refreeze failed" in err for err in status["recent_errors"])
    # The new generation serves through the autograd fallback.
    assert attached_plans(server.structure) == []
    assert server.query((0, 1)) is not None
