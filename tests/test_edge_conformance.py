"""Edge-set conformance: defined semantics on every path, no exceptions.

The guarded facades document exact answers for the degenerate query
shapes (empty set, out-of-vocabulary elements) and canonicalization for
duplicates.  Those semantics must not depend on *how* the structure is
deployed, so every edge query is driven through the full matrix:

    {cardinality, index, bloom}
  x {unsharded, K=3 sharded}
  x {direct call, SetServer submit}

and the answers are asserted identical cell by cell:

* empty set      -> ``N`` / ``0`` / ``True`` (the vacuous-truth answers);
* all-OOV        -> ``0.0`` / ``None`` / ``False``;
* duplicates     -> same answer as the de-duplicated query on every path;
* valid singleton -> direct == served, sharding-independent where the
  facade guarantees exactness (index positions, bloom no-false-negative).

The predicate family adds its own matrix (``TestPredicateMatrix``):

    {empty, OOV, duplicate}
  x {subset, superset, overlap>=2, jaccard>=0.5}
  x {unsharded suite, K=3 sharded suite} (both guarded)
  x {direct call, SetServer submit}

with the per-predicate defined answers of
:class:`~repro.reliability.GuardedPredicateSuite`; assertion messages echo
the rotating ``REPRO_TEST_SEED``.

The adaptive column (``TestAdaptiveEdgeConformance``) pins the same edge
shapes against the workload-feedback loop: recording them into a
:class:`~repro.adapt.WorkloadLog` must never change a served answer,
poison a refresh training set, trip a per-shard local bound, or break a
targeted shard rebuild.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.adapt import (
    ShardStalenessTracker,
    WorkloadLog,
    probe_shard_errors,
    sample_from_workload,
    workload_shard_rebuilder,
)
from repro.core import (
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    ModelConfig,
    TrainConfig,
)
from repro.core.predicate_suite import PredicateCardinalitySuite
from repro.maintain import StalenessPolicy, StalenessState
from repro.reliability import (
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedPredicateSuite,
    GuardedSetIndex,
)
from repro.serve import SetServer
from repro.sets import InvertedIndex, SetCollection
from repro.sets.predicates import DEFAULT_PREDICATES
from repro.shard import ShardedBuilder, ShardPlan

SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))


def seed_note(context: str = "") -> str:
    note = f"REPRO_TEST_SEED={SEED}"
    return f"{note} ({context})" if context else note

SETS = [
    [0, 1, 2],
    [1, 2],
    [0, 3],
    [1, 2, 3],
    [4, 5],
    [0, 4, 5],
    [2, 3, 4],
    [0, 1],
    [3, 5],
    [0, 2, 5],
    [1, 4],
    [2, 5],
]

OOV = 1000  # far outside the 0..5 vocabulary

# (label, query, equivalent de-duplicated query)
EDGE_QUERIES = [
    ("empty", (), ()),
    ("singleton", (2,), (2,)),
    ("all_oov", (OOV, OOV + 1), (OOV, OOV + 1)),
    ("oov_singleton", (OOV,), (OOV,)),
    ("duplicates", (1, 1, 2, 2), (1, 2)),
    ("duplicate_singleton", (2, 2, 2), (2,)),
    ("duplicate_oov", (OOV, OOV), (OOV,)),
]

KINDS = ("cardinality", "index", "bloom")
DEPLOYMENTS = ("unsharded", "sharded")


def _small_model() -> ModelConfig:
    return ModelConfig(kind="lsm", embedding_dim=2, phi_hidden=(4,),
                       rho_hidden=(4,), seed=0)


def _small_train(loss: str) -> TrainConfig:
    return TrainConfig(epochs=2, batch_size=64, lr=5e-3, loss=loss, seed=0)


@pytest.fixture(scope="module")
def collection() -> SetCollection:
    return SetCollection(SETS)


@pytest.fixture(scope="module")
def truth(collection) -> InvertedIndex:
    return InvertedIndex(collection)


@pytest.fixture(scope="module")
def structures(collection):
    """All six guarded structures: {kind} x {unsharded, K=3 sharded}."""
    rng = np.random.default_rng(0)
    out = {}
    out[("cardinality", "unsharded")] = GuardedCardinalityEstimator.for_collection(
        LearnedCardinalityEstimator.build(
            collection, model_config=_small_model(),
            train_config=_small_train("mse"), max_subset_size=3, rng=rng,
        ),
        collection,
    )
    out[("index", "unsharded")] = GuardedSetIndex(
        LearnedSetIndex.build(
            collection, model_config=_small_model(),
            train_config=_small_train("mse"), max_subset_size=3, rng=rng,
        )
    )
    out[("bloom", "unsharded")] = GuardedBloomFilter.for_collection(
        LearnedBloomFilter.build(
            collection, model_config=_small_model(),
            train_config=_small_train("bce"), max_subset_size=2, rng=rng,
        ),
        collection,
    )
    plan = ShardPlan.contiguous(collection, 3)
    builder = ShardedBuilder(
        plan,
        workers=1,
        base_seed=0,
        model_config=_small_model(),
        train_config=TrainConfig(epochs=2, batch_size=64, lr=5e-3),
        max_subset_size=3,
        num_negative_samples=100,
    )
    out[("cardinality", "sharded")] = GuardedCardinalityEstimator.for_collection(
        builder.build("cardinality"), collection
    )
    out[("index", "sharded")] = GuardedSetIndex(builder.build("index"))
    out[("bloom", "sharded")] = GuardedBloomFilter.for_collection(
        builder.build("bloom"), collection
    )
    return out


@pytest.fixture(scope="module")
def servers(structures):
    """One running SetServer per structure cell (closed at teardown)."""
    running = {
        key: SetServer(structure, cache_size=64).start()
        for key, structure in structures.items()
    }
    yield running
    for server in running.values():
        server.close()


def _direct_answer(kind: str, structure, query):
    if kind == "cardinality":
        return structure.estimate(query)
    if kind == "index":
        return structure.lookup(query)
    return structure.contains(query)


def _answers(kind, deployment, structures, servers, query):
    """The (direct, served) answer pair for one matrix cell."""
    structure = structures[(kind, deployment)]
    server = servers[(kind, deployment)]
    return _direct_answer(kind, structure, query), server.query(list(query))


EXPECTED_EMPTY = {
    "cardinality": float(len(SETS)),
    "index": 0,
    "bloom": True,
}

EXPECTED_OOV = {"cardinality": 0.0, "index": None, "bloom": False}


@pytest.mark.parametrize("deployment", DEPLOYMENTS)
@pytest.mark.parametrize("kind", KINDS)
def test_empty_set_answers(kind, deployment, structures, servers):
    direct, served = _answers(kind, deployment, structures, servers, ())
    expected = EXPECTED_EMPTY[kind]
    assert direct == expected, f"direct {kind}/{deployment}"
    assert served == expected, f"served {kind}/{deployment}"


@pytest.mark.parametrize("query", [(OOV,), (OOV, OOV + 1), (OOV, OOV)])
@pytest.mark.parametrize("deployment", DEPLOYMENTS)
@pytest.mark.parametrize("kind", KINDS)
def test_all_oov_answers(kind, deployment, query, structures, servers):
    direct, served = _answers(kind, deployment, structures, servers, query)
    expected = EXPECTED_OOV[kind]
    assert direct == expected, f"direct {kind}/{deployment} {query}"
    assert served == expected, f"served {kind}/{deployment} {query}"


@pytest.mark.parametrize("label,query,dedup",
                         [case for case in EDGE_QUERIES if case[1] != case[2]])
@pytest.mark.parametrize("deployment", DEPLOYMENTS)
@pytest.mark.parametrize("kind", KINDS)
def test_duplicates_canonicalize(kind, deployment, label, query, dedup,
                                 structures, servers):
    """A query with repeated elements answers exactly like its set form."""
    structure = structures[(kind, deployment)]
    server = servers[(kind, deployment)]
    assert _direct_answer(kind, structure, query) == _direct_answer(
        kind, structure, dedup
    ), f"direct {kind}/{deployment} {label}"
    assert server.query(list(query)) == server.query(list(dedup)), (
        f"served {kind}/{deployment} {label}"
    )


@pytest.mark.parametrize("label,query,dedup", EDGE_QUERIES)
@pytest.mark.parametrize("deployment", DEPLOYMENTS)
@pytest.mark.parametrize("kind", KINDS)
def test_direct_and_served_agree(kind, deployment, label, query, dedup,
                                 structures, servers):
    """Serving (batching, caching) never changes an answer."""
    direct, served = _answers(kind, deployment, structures, servers, query)
    assert direct == served, f"{kind}/{deployment} {label}: {direct} != {served}"


@pytest.mark.parametrize("kind", KINDS)
def test_exact_semantics_are_sharding_independent(kind, structures, servers,
                                                  truth):
    """Where the facade guarantees exactness, K must not matter.

    Index lookups are always exact under the guard; bloom must never
    false-negative a stored subset; cardinality is exact for the defined
    edge answers (empty/OOV, covered above) — here both deployments are
    checked against ground truth on stored singletons.
    """
    for query in [(2,), (0,), (5,)]:
        for deployment in DEPLOYMENTS:
            structure = structures[(kind, deployment)]
            server = servers[(kind, deployment)]
            if kind == "index":
                expected = truth.first_position(query)
                assert _direct_answer(kind, structure, query) == expected
                assert server.query(list(query)) == expected
            elif kind == "bloom":
                assert _direct_answer(kind, structure, query) is True
                assert server.query(list(query)) is True
            else:
                value = _direct_answer(kind, structure, query)
                assert 0.0 <= value <= float(len(SETS))
                assert server.query(list(query)) == value


@pytest.mark.parametrize("deployment", DEPLOYMENTS)
@pytest.mark.parametrize("kind", KINDS)
def test_edge_queries_never_raise_and_health_is_counted(kind, deployment,
                                                        structures):
    structure = structures[(kind, deployment)]
    before = structure.health.queries
    for _, query, _ in EDGE_QUERIES:
        _direct_answer(kind, structure, query)
    assert structure.health.queries == before + len(EDGE_QUERIES)


# -- the predicate x structure matrix ----------------------------------------


@pytest.fixture(scope="module")
def predicate_structures(collection):
    """Guarded predicate suites: unsharded and K=3 sharded."""
    unsharded = PredicateCardinalitySuite.build(
        collection,
        model_config=_small_model(),
        train_config=TrainConfig(
            epochs=2, batch_size=64, lr=5e-3, loss="mse", seed=SEED
        ),
        num_samples=150,
        max_subset_size=3,
        rng=np.random.default_rng(SEED),
    )
    sharded = ShardedBuilder(
        ShardPlan.contiguous(collection, 3),
        workers=1,
        base_seed=SEED,
        model_config=_small_model(),
        train_config=TrainConfig(epochs=2, batch_size=64, lr=5e-3),
        max_subset_size=3,
        max_training_samples=150,
    ).build("predicate")
    return {
        "unsharded": GuardedPredicateSuite.for_collection(unsharded, collection),
        "sharded": GuardedPredicateSuite.for_collection(sharded, collection),
    }


@pytest.fixture(scope="module")
def predicate_servers(predicate_structures):
    running = {
        deployment: SetServer(structure, cache_size=64).start()
        for deployment, structure in predicate_structures.items()
    }
    yield running
    for server in running.values():
        server.close()


def _predicate_answers(deployment, predicate_structures, predicate_servers,
                       query, predicate):
    structure = predicate_structures[deployment]
    server = predicate_servers[deployment]
    return (
        structure.estimate(query, predicate=predicate),
        server.query(list(query), predicate=predicate.spec),
    )


@pytest.mark.parametrize("deployment", DEPLOYMENTS)
@pytest.mark.parametrize("predicate", DEFAULT_PREDICATES, ids=lambda p: p.spec)
class TestPredicateMatrix:
    def test_empty_query_has_the_defined_answer(
        self, predicate, deployment, predicate_structures, predicate_servers
    ):
        direct, served = _predicate_answers(
            deployment, predicate_structures, predicate_servers, (), predicate
        )
        expected = float(predicate.empty_query_count(len(SETS)))
        assert direct == expected, seed_note(
            f"direct {predicate.spec}/{deployment}"
        )
        assert served == expected, seed_note(
            f"served {predicate.spec}/{deployment}"
        )

    @pytest.mark.parametrize("query", [(OOV,), (OOV, OOV + 1), (2, OOV)])
    def test_oov_is_a_subset_miss_and_exact_elsewhere(
        self, predicate, deployment, query, predicate_structures,
        predicate_servers, truth
    ):
        direct, served = _predicate_answers(
            deployment, predicate_structures, predicate_servers, query,
            predicate
        )
        if predicate.kind == "subset":
            expected = 0.0
        else:
            expected = float(truth.count_predicate(predicate, query))
        assert direct == expected, seed_note(
            f"direct {predicate.spec}/{deployment} {query}"
        )
        assert served == expected, seed_note(
            f"served {predicate.spec}/{deployment} {query}"
        )

    @pytest.mark.parametrize("query,dedup",
                             [((1, 1, 2, 2), (1, 2)), ((2, 2, 2), (2,)),
                              ((OOV, OOV), (OOV,))])
    def test_duplicates_canonicalize(
        self, predicate, deployment, query, dedup, predicate_structures,
        predicate_servers
    ):
        structure = predicate_structures[deployment]
        server = predicate_servers[deployment]
        assert structure.estimate(query, predicate=predicate) == (
            structure.estimate(dedup, predicate=predicate)
        ), seed_note(f"direct {predicate.spec}/{deployment} {query}")
        assert server.query(list(query), predicate=predicate.spec) == (
            server.query(list(dedup), predicate=predicate.spec)
        ), seed_note(f"served {predicate.spec}/{deployment} {query}")

    @pytest.mark.parametrize("query", [(), (2,), (1, 2), (OOV,), (1, 1, 2)])
    def test_direct_and_served_agree(
        self, predicate, deployment, query, predicate_structures,
        predicate_servers
    ):
        direct, served = _predicate_answers(
            deployment, predicate_structures, predicate_servers, query,
            predicate
        )
        assert direct == served, seed_note(
            f"{predicate.spec}/{deployment} {query}: {direct} != {served}"
        )

    def test_answers_never_raise_and_health_is_counted(
        self, predicate, deployment, predicate_structures
    ):
        structure = predicate_structures[deployment]
        before = structure.health.queries
        probes = [(), (2,), (OOV,), (1, 1, 2), (OOV, 2)]
        for query in probes:
            structure.estimate(query, predicate=predicate)
        assert structure.health.queries == before + len(probes), seed_note(
            f"{predicate.spec}/{deployment}"
        )


# -- the adaptive-mode column -------------------------------------------------


def _is_clean(query) -> bool:
    """In-universe, non-empty — the only shapes a model path may train on."""
    return bool(query) and all(0 <= element <= 5 for element in set(query))


@pytest.fixture(scope="module")
def polluted_log() -> WorkloadLog:
    """A workload log fed the full edge matrix, plus hostile extras.

    Every edge query recorded hot (count 5), a wrong-predicate entry, a
    negative element id, and two clean in-universe keys — the only
    entries a refresh may learn from.
    """
    log = WorkloadLog(capacity=64)
    for _, query, _ in EDGE_QUERIES:
        for _ in range(5):
            log.record("subset", query)
    log.record("superset", (1, 2))
    log.record("subset", (-3, 1))
    log.record("subset", (1, 2))
    log.record("subset", (0, 2, 5))
    log.observe("subset", (1, 2), 1.5)
    return log


class TestAdaptiveEdgeConformance:
    def test_recording_never_changes_served_answers(self, structures, truth):
        """The adaptive hooks are pure telemetry: answers stay identical."""
        structure = structures[("cardinality", "sharded")]
        log = WorkloadLog(capacity=64, observe_every=1)
        with SetServer(structure, cache_size=64) as plain:
            with SetServer(
                structure, cache_size=64, exact=truth, workload=log
            ) as adaptive:
                for label, query, _ in EDGE_QUERIES:
                    assert adaptive.query(list(query)) == plain.query(
                        list(query)
                    ), seed_note(f"adaptive column {label}")
        keys = {entry.canonical for entry in log.entries()}
        # Duplicates fold into their canonical set form before keying.
        assert (1, 2) in keys and (2,) in keys, seed_note(f"keys={keys}")
        assert all(
            key == tuple(sorted(set(key))) for key in keys
        ), seed_note("recorded keys must be canonical")

    @pytest.mark.parametrize("kind", ["cardinality", "index"])
    def test_polluted_log_never_poisons_training_sets(
        self, kind, collection, truth, polluted_log
    ):
        """Refresh training sets stay clean whatever traffic was recorded."""
        subsets, targets, weights = sample_from_workload(
            polluted_log,
            collection,
            truth,
            kind=kind,
            num_samples=64,
            novelty_fraction=0.25,
            max_subset_size=3,
            rng=np.random.default_rng(SEED),
        )
        max_id = collection.max_element_id()
        assert subsets, seed_note(f"{kind}: no usable samples survived")
        for subset, target, weight in zip(subsets, targets, weights):
            assert subset == tuple(sorted(set(subset))) and subset, seed_note(
                f"{kind}: non-canonical training subset {subset}"
            )
            assert 0 <= subset[0] and subset[-1] <= max_id, seed_note(
                f"{kind}: out-of-universe training subset {subset}"
            )
            assert np.isfinite(target) and np.isfinite(weight), seed_note(
                f"{kind}: non-finite label/weight for {subset}"
            )
            assert weight >= 1.0, seed_note(f"{kind}: weight < 1 for {subset}")
        by_subset = dict(zip(subsets, weights))
        # (2,) was served hot through two edge spellings (5 + 5 records).
        assert by_subset[(2,)] == 10.0, seed_note(
            f"{kind}: hot edge key must keep its aggregated frequency; "
            f"got {by_subset[(2,)]}"
        )

    def test_malformed_entries_record_no_probe_evidence(
        self, structures, truth
    ):
        """Edge traffic alone can never trip a local bound."""
        router = structures[("cardinality", "sharded")].estimator
        tracker = ShardStalenessTracker(
            router.plan.offsets(), window=8, min_observations=1
        )
        bad = WorkloadLog(capacity=32)
        for _, query, _ in EDGE_QUERIES:
            if _is_clean(query):
                continue
            bad.record("subset", query)
        bad.record("subset", (-3, 1))
        bad.record("superset", (1, 2))
        recorded = probe_shard_errors(
            router, truth, bad.top(), tracker, max_queries=64
        )
        assert recorded == 0, seed_note(
            f"malformed entries produced {recorded} probe observations"
        )
        assert tracker.q_errors() == {}, seed_note(
            f"tracker windows must stay empty, got {tracker.as_dict()}"
        )
        policy = StalenessPolicy(
            max_deltas=None, max_aux_fraction=None, max_local_q_error=1.0
        )
        state = StalenessState(shard_q_errors=tracker.q_errors() or None)
        assert policy.evaluate(state) == [], seed_note(
            "no local reason may trip on edge traffic"
        )

    def test_shard_rebuild_survives_polluted_log(
        self, structures, polluted_log
    ):
        """A targeted rebuild over hostile traffic trains and answers sanely."""
        router = structures[("cardinality", "sharded")].estimator
        rebuild = workload_shard_rebuilder(
            polluted_log,
            model_config=_small_model(),
            train_config=_small_train("mse"),
            max_subset_size=3,
            base_seed=SEED + 11,
        )
        part = rebuild(router, 0)
        shard = router.plan[0]
        assert part.max_known_id() == shard.collection.max_element_id(), (
            seed_note("rebuilt part must keep its shard's exact ceiling")
        )
        estimates = np.asarray(part.estimate_many([(2,), (0,), (1, 2)]))
        assert np.all(np.isfinite(estimates)) and np.all(estimates >= 0.0), (
            seed_note(f"rebuilt part answers must stay sane: {estimates}")
        )
