"""Tests for the benchmark workbench's cheap parts (no training)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import report_table, results_dir
from repro.bench.workbench import model_config


class TestModelConfig:
    def test_all_tasks_and_kinds(self):
        for task in ("bloom", "index", "cardinality"):
            for kind in ("lsm", "clsm"):
                config = model_config(kind, task)
                assert config.kind == kind

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            model_config("lsm", "join-ordering")

    def test_bloom_uses_smallest_models(self):
        bloom = model_config("clsm", "bloom")
        cardinality = model_config("clsm", "cardinality")
        assert bloom.embedding_dim < cardinality.embedding_dim


class TestReportTable:
    def test_persists_and_appends(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        report_table("exp1", ["a"], [[1]], title="first")
        report_table("exp1", ["a"], [[2]], title="second")
        text = (tmp_path / "exp1.txt").read_text()
        assert "first" in text
        assert "second" in text
        printed = capsys.readouterr().out
        assert "first" in printed

    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "deep"))
        directory = results_dir()
        assert directory == tmp_path / "deep"
        assert directory.exists()
