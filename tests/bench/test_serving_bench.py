"""Serving benchmark harness: workload shape, correctness, persistence."""

from __future__ import annotations

import json

import pytest

from repro.bench import run_serving_benchmark, serving_workload, write_serving_report
from repro.sets import SetCollection

from ..serve.conftest import SETS, train_estimator


@pytest.fixture(scope="module")
def collection() -> SetCollection:
    return SetCollection(SETS)


@pytest.fixture(scope="module")
def estimator(collection):
    return train_estimator(collection)


class TestServingWorkload:
    def test_size_and_determinism(self, collection):
        first = serving_workload(collection, 200, seed=9)
        again = serving_workload(collection, 200, seed=9)
        assert len(first) == 200
        assert first == again
        assert serving_workload(collection, 200, seed=10) != first

    def test_duplicates_injected(self, collection):
        queries = serving_workload(collection, 400, duplicate_fraction=0.5)
        assert len(set(queries)) < len(queries)

    def test_queries_are_canonical_tuples(self, collection):
        for query in serving_workload(collection, 50):
            assert isinstance(query, tuple)
            assert query


class TestRunServingBenchmark:
    def test_report_is_complete_and_correct(self, estimator, collection):
        queries = serving_workload(collection, 300, max_subset_size=3, seed=4)
        report = run_serving_benchmark(estimator, queries, threads=4)
        assert report["kind"] == "cardinality"
        assert report["num_queries"] == 300
        assert report["mismatches"] == 0
        assert report["serial_qps"] > 0 and report["served_qps"] > 0
        assert report["speedup"] == pytest.approx(
            report["served_qps"] / report["serial_qps"]
        )
        for key in ("p50_ms", "p95_ms", "p99_ms", "mean_batch_size"):
            assert key in report
        assert report["stats"]["requests_served"] == 300

    def test_write_report_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        report = {"kind": "cardinality", "speedup": 2.5}
        target = write_serving_report(report)
        assert target == tmp_path / "BENCH_serve.json"
        assert json.loads(target.read_text()) == report

    def test_write_report_explicit_path(self, tmp_path):
        target = write_serving_report({"a": 1}, tmp_path / "sub" / "out.json")
        assert json.loads(target.read_text()) == {"a": 1}
