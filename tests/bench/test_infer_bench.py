"""Smoke test for the compiled-inference benchmark harness."""

from __future__ import annotations

import pytest

from repro.bench.infer import run_infer_bench
from repro.core import ModelConfig


@pytest.fixture(scope="module")
def report():
    return run_infer_bench(
        num_sets=40,
        universe=60,
        batch_size=64,
        repeats=1,
        epochs=1,
        min_speedup=0.0,
        structures=("cardinality",),
        model_config=ModelConfig(
            kind="lsm", embedding_dim=2, phi_hidden=(4,), rho_hidden=(4,)
        ),
        write_json=False,
    )


def test_report_shape(report):
    assert report["bench"] == "infer"
    assert set(report["structures"]) == {"cardinality"}
    assert report["batch_size"] == 64
    entry = report["structures"]["cardinality"]
    assert entry["autograd_ms"] > 0
    assert set(entry["variants"]) >= {"float64", "float32", "int8"}


def test_variants_report_timing_and_gate_outcome(report):
    for name, variant in report["structures"]["cardinality"]["variants"].items():
        assert variant["ms"] > 0, name
        assert variant["speedup"] > 0, name
        assert variant["size_bytes"] > 0, name
        assert "accepted" in variant, name


def test_trivial_min_speedup_passes_the_verdict(report):
    assert report["passed"] is True
    assert report["min_float32_speedup"] > 0


def test_impossible_min_speedup_fails_the_verdict():
    report = run_infer_bench(
        num_sets=40,
        universe=60,
        batch_size=16,
        repeats=1,
        epochs=1,
        min_speedup=1e9,
        structures=("cardinality",),
        model_config=ModelConfig(
            kind="lsm", embedding_dim=2, phi_hidden=(4,), rho_hidden=(4,)
        ),
        write_json=False,
    )
    assert report["passed"] is False


def test_invalid_batch_size_is_rejected():
    with pytest.raises(ValueError, match="batch_size"):
        run_infer_bench(batch_size=0, write_json=False)
