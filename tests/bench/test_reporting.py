"""Tests for the benchmark reporting/timing/memory helpers."""

from __future__ import annotations

import time

import pytest

from repro.bench import (
    Timer,
    format_table,
    format_value,
    markdown_table,
    mean_query_ms,
    megabytes,
    pickled_megabytes,
)


class TestFormatValue:
    def test_ints_plain(self):
        assert format_value(42) == "42"

    def test_large_floats_grouped(self):
        assert format_value(1234567.0) == "1,234,567"

    def test_mid_floats_two_decimals(self):
        assert format_value(12.345) == "12.35"

    def test_small_floats_four_decimals(self):
        assert format_value(0.1234) == "0.1234"

    def test_tiny_floats_scientific(self):
        assert "e" in format_value(0.00001)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_strings_passthrough(self):
        assert format_value("LSM") == "LSM"


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table(["h1", "h2"], [])
        assert "h1" in text

    def test_markdown_shape(self):
        md = markdown_table(["a", "b"], [[1, 2]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestTiming:
    def test_timer_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009

    def test_mean_query_ms(self):
        calls = []
        ms = mean_query_ms(lambda q: calls.append(q), [1, 2, 3, 4], warmup=2)
        assert ms >= 0
        # 2 warmups + 4 timed calls.
        assert len(calls) == 6

    def test_empty_queries_rejected(self):
        with pytest.raises(ValueError):
            mean_query_ms(lambda q: None, [])


class TestMemory:
    def test_megabytes(self):
        assert megabytes(2_000_000) == 2.0

    def test_pickled_megabytes_positive(self):
        assert pickled_megabytes({"a": list(range(1000))}) > 0
