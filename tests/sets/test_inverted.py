"""Tests for the exact inverted index, cross-checked against linear scans."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sets import InvertedIndex, SetCollection


@pytest.fixture
def collection() -> SetCollection:
    return SetCollection([[1, 2, 3], [2, 3], [1, 4], [2, 3, 4], [1, 2, 3]])


@pytest.fixture
def index(collection) -> InvertedIndex:
    return InvertedIndex(collection)


class TestPostings:
    def test_posting_lists_sorted(self, index):
        np.testing.assert_array_equal(index.posting(2), [0, 1, 3, 4])
        np.testing.assert_array_equal(index.posting(4), [2, 3])

    def test_unknown_element_empty_posting(self, index):
        assert len(index.posting(99)) == 0
        assert 99 not in index
        assert 2 in index

    def test_document_frequency(self, index):
        assert index.document_frequency(1) == 3
        assert index.document_frequency(99) == 0

    def test_num_sets(self, index, collection):
        assert index.num_sets == len(collection)


class TestQueries:
    def test_cardinality_matches_scan(self, index, collection):
        for query in [(1,), (2, 3), (1, 2, 3), (4,), (1, 4), (2, 4)]:
            assert index.cardinality(query) == collection.cardinality(query)

    def test_first_position_matches_scan(self, index, collection):
        for query in [(1,), (2, 3), (1, 2, 3), (4,), (1, 4), (2, 4)]:
            assert index.first_position(query) == collection.first_position(query)

    def test_absent_query(self, index):
        assert index.cardinality((1, 99)) == 0
        assert index.first_position((1, 99)) is None
        assert not index.contains((99,))

    def test_contains(self, index):
        assert index.contains((2, 3, 4))
        assert not index.contains((1, 2, 3, 4))

    def test_matching_positions(self, index):
        np.testing.assert_array_equal(index.matching_positions((2, 3)), [0, 1, 3, 4])

    def test_empty_query_rejected(self, index):
        with pytest.raises(ValueError):
            index.cardinality(())

    def test_duplicate_query_elements_collapse(self, index, collection):
        assert index.cardinality((2, 2, 3)) == collection.cardinality((2, 3))

    def test_max_element_cardinality(self, index):
        assert index.max_element_cardinality() == 4  # element 2


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.sets(st.integers(0, 15), min_size=1, max_size=6).map(tuple),
        min_size=1,
        max_size=30,
    ),
    query=st.sets(st.integers(0, 15), min_size=1, max_size=4).map(tuple),
)
def test_property_index_agrees_with_linear_scan(data, query):
    """For arbitrary collections and queries, the index equals the scan."""
    collection = SetCollection(data)
    index = InvertedIndex(collection)
    assert index.cardinality(query) == collection.cardinality(query)
    assert index.first_position(query) == collection.first_position(query)
    assert index.contains(query) == collection.contains_subset(query)
