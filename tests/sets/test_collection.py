"""Tests for SetCollection storage, statistics, and exact scans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sets import SetCollection


@pytest.fixture
def hashtags() -> SetCollection:
    """The Figure 1 example: four tweets of hashtags."""
    return SetCollection.from_token_sets(
        [
            ["#pizza", "#dinner", "#foodie"],
            ["#date", "#dinner"],
            ["#pizza", "#dinner", "#date"],
            ["#pizza", "#dinner", "#italian"],
        ]
    )


class TestConstruction:
    def test_canonicalizes_to_sorted_tuples(self):
        collection = SetCollection([[3, 1, 2], [5, 5, 4]])
        assert collection[0] == (1, 2, 3)
        assert collection[1] == (4, 5)

    def test_preserves_order_and_duplicates(self):
        collection = SetCollection([[1, 2], [3], [1, 2]])
        assert len(collection) == 3
        assert collection[0] == collection[2]

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            SetCollection([[1], []])

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            SetCollection([[-1, 2]])

    def test_from_token_sets_builds_vocab(self, hashtags):
        assert hashtags.vocab is not None
        assert len(hashtags.vocab) == 5  # pizza dinner foodie date italian
        assert len(hashtags) == 4


class TestStats:
    def test_figure1_stats(self, hashtags):
        stats = hashtags.stats()
        assert stats.num_sets == 4
        assert stats.num_unique_elements == 5
        # '#dinner' appears in all four tweets.
        assert stats.max_cardinality == 4
        assert stats.min_set_size == 2
        assert stats.max_set_size == 3

    def test_as_row_keys(self, hashtags):
        row = hashtags.stats().as_row()
        assert set(row) == {"n", "uniq_elem", "max_card", "min_size", "max_size"}

    def test_element_frequencies(self):
        collection = SetCollection([[0, 1], [1, 2], [1]])
        np.testing.assert_array_equal(collection.element_frequencies(), [1, 3, 1])

    def test_max_element_id(self):
        assert SetCollection([[0, 7], [3]]).max_element_id() == 7


class TestExactQueries:
    def test_figure1_cardinality(self, hashtags):
        """The paper's running example: card({#pizza, #dinner}) = 3."""
        query = hashtags.vocab.encode(["#pizza", "#dinner"])
        assert hashtags.cardinality(query) == 3

    def test_first_position(self, hashtags):
        query = hashtags.vocab.encode(["#pizza", "#dinner"])
        assert hashtags.first_position(query) == 0
        query_date = hashtags.vocab.encode(["#date"])
        assert hashtags.first_position(query_date) == 1

    def test_absent_subset(self, hashtags):
        query = hashtags.vocab.encode(["#foodie", "#italian"])
        assert hashtags.first_position(query) is None
        assert hashtags.cardinality(query) == 0
        assert not hashtags.contains_subset(query)

    def test_full_set_is_subset_of_itself(self):
        collection = SetCollection([[1, 2, 3]])
        assert collection.contains_subset((1, 2, 3))


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        collection = SetCollection([[3, 1], [2], [9, 4, 5]])
        path = tmp_path / "sets.txt"
        collection.save(path)
        loaded = SetCollection.load(path)
        assert list(loaded) == list(collection)
