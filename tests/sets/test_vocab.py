"""Tests for the element vocabulary."""

from __future__ import annotations

import pytest

from repro.sets import Vocabulary


class TestVocabulary:
    def test_first_seen_order_ids(self):
        vocab = Vocabulary()
        assert vocab.add("pizza") == 0
        assert vocab.add("dinner") == 1
        assert vocab.add("pizza") == 0

    def test_add_set_dedupes_and_sorts(self):
        vocab = Vocabulary()
        ids = vocab.add_set(["b", "a", "b"])
        assert ids == tuple(sorted(ids))
        assert len(ids) == 2

    def test_roundtrip(self):
        vocab = Vocabulary()
        vocab.add_set(["x", "y", "z"])
        ids = vocab.encode(["z", "x"])
        assert vocab.decode(ids) == frozenset({"x", "z"})

    def test_encode_unknown_raises(self):
        vocab = Vocabulary()
        vocab.add("a")
        with pytest.raises(KeyError):
            vocab.encode(["b"])

    def test_id_of_and_token_of(self):
        vocab = Vocabulary()
        vocab.add("alpha")
        assert vocab.id_of("alpha") == 0
        assert vocab.token_of(0) == "alpha"

    def test_contains_and_len(self):
        vocab = Vocabulary()
        vocab.add_set(["a", "b"])
        assert "a" in vocab
        assert "c" not in vocab
        assert len(vocab) == 2

    def test_frequency_counts_interning(self):
        vocab = Vocabulary()
        vocab.add("a")
        vocab.add("a")
        vocab.add("b")
        assert vocab.frequency(vocab.id_of("a")) == 2
        assert vocab.frequency(vocab.id_of("b")) == 1

    def test_encode_lenient_splits_known_and_unknown(self):
        vocab = Vocabulary()
        vocab.add_set(["a", "b"])
        ids, unknown = vocab.encode_lenient(["b", "zzz", "a", "yyy"])
        assert ids == (vocab.id_of("a"), vocab.id_of("b"))
        assert unknown == ("zzz", "yyy")  # first-seen order

    def test_encode_lenient_all_unknown(self):
        vocab = Vocabulary()
        ids, unknown = vocab.encode_lenient(["x", "y"])
        assert ids == ()
        assert unknown == ("x", "y")

    def test_encode_lenient_dedupes_both_sides(self):
        vocab = Vocabulary()
        vocab.add("a")
        ids, unknown = vocab.encode_lenient(["a", "a", "nope", "nope"])
        assert ids == (vocab.id_of("a"),)
        assert unknown == ("nope",)

    def test_encode_lenient_empty(self):
        assert Vocabulary().encode_lenient([]) == ((), ())

    def test_encode_lenient_does_not_intern(self):
        vocab = Vocabulary()
        vocab.encode_lenient(["ghost"])
        assert "ghost" not in vocab

    def test_max_id(self):
        vocab = Vocabulary()
        assert vocab.max_id == -1
        vocab.add_set(["a", "b", "c"])
        assert vocab.max_id == 2

    def test_iteration_order(self):
        vocab = Vocabulary()
        vocab.add("first")
        vocab.add("second")
        assert list(vocab) == ["first", "second"]
