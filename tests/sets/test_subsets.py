"""Tests for subset enumeration and training-data generation."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sets import (
    InvertedIndex,
    SetCollection,
    cardinality_training_pairs,
    enumerate_subsets,
    index_training_pairs,
    negative_membership_samples,
    positive_membership_samples,
    sample_query_workload,
)


class TestEnumerateSubsets:
    def test_counts_match_binomials(self):
        subsets = list(enumerate_subsets([1, 2, 3, 4]))
        assert len(subsets) == 2**4 - 1

    def test_max_size_cap(self):
        subsets = list(enumerate_subsets([1, 2, 3, 4], max_size=2))
        assert len(subsets) == 4 + 6
        assert all(len(s) <= 2 for s in subsets)

    def test_sorted_canonical_form(self):
        subsets = list(enumerate_subsets([3, 1, 2]))
        assert all(s == tuple(sorted(s)) for s in subsets)

    def test_no_duplicates(self):
        subsets = list(enumerate_subsets([5, 6, 7]))
        assert len(subsets) == len(set(subsets))

    def test_paper_example_sizes(self):
        """A set of size 8 capped at size 6 gives sum_{k=1..6} C(8,k)."""
        subsets = list(enumerate_subsets(range(8), max_size=6))
        expected = sum(
            len(list(itertools.combinations(range(8), k))) for k in range(1, 7)
        )
        assert len(subsets) == expected == 246


@pytest.fixture
def collection() -> SetCollection:
    return SetCollection([[1, 2, 3], [2, 3], [1, 4], [2, 3, 4]])


class TestIndexTrainingPairs:
    def test_positions_are_first_occurrences(self, collection):
        subsets, positions = index_training_pairs(collection)
        lookup = dict(zip(subsets, positions))
        assert lookup[(2, 3)] == 0  # appears in sets 0, 1, 3; first is 0
        assert lookup[(4,)] == 2
        assert lookup[(2, 3, 4)] == 3

    def test_covers_every_subset(self, collection):
        subsets, _ = index_training_pairs(collection)
        assert (1, 2, 3) in subsets
        assert (1, 4) in subsets
        expected_universe = set()
        for stored in collection:
            expected_universe.update(enumerate_subsets(stored))
        assert set(subsets) == expected_universe

    def test_max_samples_subsamples(self, collection):
        subsets, positions = index_training_pairs(
            collection, max_samples=3, rng=np.random.default_rng(0)
        )
        assert len(subsets) == len(positions) == 3

    def test_positions_verified_against_scan(self, collection):
        subsets, positions = index_training_pairs(collection)
        for subset, position in zip(subsets, positions):
            assert collection.first_position(subset) == position


class TestCardinalityTrainingPairs:
    def test_cardinalities_verified_against_scan(self, collection):
        subsets, cards = cardinality_training_pairs(collection)
        for subset, card in zip(subsets, cards):
            assert collection.cardinality(subset) == card

    def test_max_subset_size(self, collection):
        subsets, _ = cardinality_training_pairs(collection, max_subset_size=1)
        assert all(len(s) == 1 for s in subsets)

    def test_singleton_cardinality_is_element_frequency(self, collection):
        subsets, cards = cardinality_training_pairs(collection, max_subset_size=1)
        freq = collection.element_frequencies()
        for (element,), card in zip(subsets, cards):
            assert card == freq[element]


class TestMembershipSamples:
    def test_positive_samples_are_present(self, collection):
        index = InvertedIndex(collection)
        for subset in positive_membership_samples(collection):
            assert index.contains(subset)

    def test_negative_samples_are_absent(self, collection):
        index = InvertedIndex(collection)
        negatives = negative_membership_samples(
            collection, index, num_samples=5, rng=np.random.default_rng(0)
        )
        assert negatives, "expected some negatives for this collection"
        for subset in negatives:
            assert not index.contains(subset)

    def test_negative_samples_use_existing_elements(self, collection):
        index = InvertedIndex(collection)
        known = {e for s in collection for e in s}
        negatives = negative_membership_samples(
            collection, index, num_samples=5, rng=np.random.default_rng(1)
        )
        for subset in negatives:
            assert set(subset) <= known

    def test_negative_generation_terminates_when_space_exhausted(self):
        # All pairs co-occur: no negatives of size 2 exist.
        collection = SetCollection([[1, 2], [1, 3], [2, 3]])
        index = InvertedIndex(collection)
        negatives = negative_membership_samples(
            collection,
            index,
            num_samples=10,
            max_subset_size=2,
            rng=np.random.default_rng(2),
        )
        assert negatives == []


class TestQueryWorkload:
    def test_queries_are_positive_subsets(self, collection):
        index = InvertedIndex(collection)
        queries = sample_query_workload(
            collection, 50, rng=np.random.default_rng(3)
        )
        assert len(queries) == 50
        for query in queries:
            assert index.contains(query)

    def test_size_cap(self, collection):
        queries = sample_query_workload(
            collection, 50, rng=np.random.default_rng(4), max_subset_size=2
        )
        assert all(1 <= len(q) <= 2 for q in queries)


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.sets(st.integers(0, 12), min_size=1, max_size=5).map(tuple),
        min_size=1,
        max_size=15,
    )
)
def test_property_training_pairs_consistent_with_ground_truth(data):
    collection = SetCollection(data)
    index = InvertedIndex(collection)
    subsets, cards = cardinality_training_pairs(collection, max_subset_size=3)
    for subset, card in zip(subsets, cards):
        assert index.cardinality(subset) == card
    subsets_i, positions = index_training_pairs(collection, max_subset_size=3)
    for subset, position in zip(subsets_i, positions):
        assert index.first_position(subset) == position
