"""Unit tests for the predicate family (ISSUE 9 tentpole, sets layer).

:class:`Predicate` is the single source of truth for query semantics, so
this file pins its contract precisely: parse/spec round-trips, threshold
validation, brute-force agreement of :meth:`matches`, the defined
degenerate semantics (empty query, unknown ids), and the exact
posting-list baselines on :class:`InvertedIndex`.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.sets import InvertedIndex, SetCollection
from repro.sets.predicates import (
    DEFAULT_PREDICATES,
    SUBSET,
    SUPERSET,
    Predicate,
    as_predicate,
)

SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))


def seed_note(context: str = "") -> str:
    return f"REPRO_TEST_SEED={SEED} {context}".strip()


class TestParseAndSpec:
    @pytest.mark.parametrize(
        "spec",
        ["subset", "superset", "overlap>=1", "overlap>=7", "jaccard>=0.5",
         "jaccard>=0.25", "jaccard>=1"],
    )
    def test_spec_round_trips_through_parse(self, spec):
        predicate = Predicate.parse(spec)
        assert Predicate.parse(predicate.spec) == predicate

    def test_parse_normalizes_case_and_whitespace(self):
        assert Predicate.parse("  SUPERSET ") == SUPERSET
        assert Predicate.parse("Overlap>=3") == Predicate.overlap(3)

    def test_spec_is_the_str_form(self):
        assert str(Predicate.jaccard(0.5)) == "jaccard>=0.5"
        assert str(SUBSET) == "subset"

    @pytest.mark.parametrize(
        "bad",
        ["", "contains", "overlap", "overlap>=", "overlap>=0",
         "overlap>=-1", "overlap>=1.5", "jaccard", "jaccard>=0",
         "jaccard>=1.5", "jaccard>=x", "subset>=1"],
    )
    def test_parse_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            Predicate.parse(bad)

    def test_constructor_validates_thresholds(self):
        with pytest.raises(ValueError):
            Predicate("subset", 1)
        with pytest.raises(ValueError):
            Predicate("overlap")
        with pytest.raises(ValueError):
            Predicate("overlap", 0)
        with pytest.raises(ValueError):
            Predicate("jaccard", 0.0)
        with pytest.raises(ValueError):
            Predicate("jaccard", 1.0001)
        with pytest.raises(ValueError):
            Predicate("between")

    def test_as_predicate_coercions(self):
        assert as_predicate(None) is SUBSET
        assert as_predicate("overlap>=2") == Predicate.overlap(2)
        predicate = Predicate.jaccard(0.5)
        assert as_predicate(predicate) is predicate
        with pytest.raises(TypeError):
            as_predicate(3)


class TestMatches:
    def test_subset_and_superset_are_mirror_images(self):
        q, s = (1, 2), (1, 2, 3)
        assert SUBSET.matches(q, s) and not SUBSET.matches(s, q)
        assert SUPERSET.matches(s, q) and not SUPERSET.matches(q, s)

    def test_overlap_counts_distinct_shared_elements(self):
        assert Predicate.overlap(2).matches((1, 2, 9), (2, 1, 7))
        assert not Predicate.overlap(3).matches((1, 2, 9), (2, 1, 7))

    def test_jaccard_is_intersection_over_union(self):
        # |q ∩ s| = 2, |q ∪ s| = 4 -> J = 0.5
        q, s = (1, 2, 3), (2, 3, 4)
        assert Predicate.jaccard(0.5).matches(q, s)
        assert not Predicate.jaccard(0.51).matches(q, s)
        assert Predicate.jaccard(1.0).matches(q, q)

    def test_matches_agrees_with_set_algebra_brute_force(self):
        rng = random.Random(SEED * 31 + 5)
        for _ in range(300):
            q = frozenset(rng.sample(range(12), rng.randint(0, 6)))
            s = frozenset(rng.sample(range(12), rng.randint(1, 6)))
            for predicate in DEFAULT_PREDICATES:
                if predicate.kind == "subset":
                    expected = q <= s
                elif predicate.kind == "superset":
                    expected = s <= q
                elif predicate.kind == "overlap":
                    expected = len(q & s) >= predicate.threshold
                else:
                    expected = (
                        len(q | s) > 0
                        and len(q & s) / len(q | s) >= predicate.threshold
                    )
                assert predicate.matches(q, s) == expected, seed_note(
                    f"predicate={predicate.spec} q={sorted(q)} s={sorted(s)}"
                )

    def test_empty_query_semantics(self):
        for predicate in DEFAULT_PREDICATES:
            assert predicate.matches((), (1, 2)) == (predicate.kind == "subset")
            expected = 10 if predicate.kind == "subset" else 0
            assert predicate.empty_query_count(10) == expected

    def test_unknown_ids_enlarge_jaccard_union_only(self):
        # 999 is never stored: it blocks subset, is ignored by superset
        # containment of s, counts nothing toward overlap, and dilutes J.
        s = (1, 2)
        assert not SUBSET.matches((1, 2, 999), s)
        assert SUPERSET.matches((1, 2, 999), s)
        assert Predicate.overlap(2).matches((1, 2, 999), s)
        assert Predicate.jaccard(0.67).matches((1, 2), s)
        assert not Predicate.jaccard(0.67).matches((1, 2, 999), s)


@pytest.fixture(scope="module")
def collection() -> SetCollection:
    rng = random.Random(SEED * 131 + 7)
    return SetCollection(
        [sorted(rng.sample(range(20), rng.randint(1, 6))) for _ in range(50)]
    )


@pytest.fixture(scope="module")
def index(collection) -> InvertedIndex:
    return InvertedIndex(collection)


@pytest.fixture(scope="module")
def queries(collection) -> list[tuple[int, ...]]:
    rng = random.Random(SEED * 257 + 1)
    stored = list(collection)
    out = [()]
    for _ in range(60):
        base = set(rng.choice(stored))
        if rng.random() < 0.4:
            base.add(rng.randint(0, 30))  # possibly out-of-vocabulary
        if rng.random() < 0.4 and len(base) > 1:
            base.discard(next(iter(base)))
        out.append(tuple(sorted(base)))
    return out


class TestInvertedIndexPredicates:
    def test_count_predicate_matches_brute_force(self, index, collection, queries):
        for predicate in DEFAULT_PREDICATES + (
            Predicate.overlap(1),
            Predicate.jaccard(0.3),
        ):
            for query in queries:
                expected = sum(
                    predicate.matches(query, stored) for stored in collection
                )
                got = index.count_predicate(predicate, query)
                assert got == expected, seed_note(
                    f"predicate={predicate.spec} query={query}"
                )

    def test_matching_positions_predicate_matches_brute_force(
        self, index, collection, queries
    ):
        for predicate in DEFAULT_PREDICATES:
            for query in queries:
                expected = [
                    position
                    for position, stored in enumerate(collection)
                    if predicate.matches(query, stored)
                ]
                got = index.matching_positions_predicate(predicate, query)
                assert list(got) == expected, seed_note(
                    f"predicate={predicate.spec} query={query}"
                )

    def test_subset_path_agrees_with_cardinality(self, index, queries):
        for query in queries:
            if query:
                assert index.count_predicate(SUBSET, query) == index.cardinality(
                    query
                )

    def test_overlap_counts_vector(self, index, collection):
        query = (0, 1, 2, 999)
        counts = index.overlap_counts(query)
        assert counts.dtype == np.int64 and len(counts) == len(collection)
        for position, stored in enumerate(collection):
            assert counts[position] == len(set(query) & set(stored))

    def test_set_size_reports_stored_sizes(self, index, collection):
        for position, stored in enumerate(collection):
            assert index.set_size(position) == len(stored)

    def test_accepts_spec_strings(self, index):
        assert index.count_predicate("superset", (0, 1, 2, 3, 4, 5)) == (
            index.count_predicate(SUPERSET, (0, 1, 2, 3, 4, 5))
        )
