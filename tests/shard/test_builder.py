"""ShardedBuilder: fault isolation, failure aggregation, guarded wrapping."""

from __future__ import annotations

import os

import pytest

import repro.shard.builder as builder_mod
from repro.reliability import (
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
)
from repro.shard import (
    TASKS,
    ShardBuildError,
    ShardedBloomFilter,
    ShardedBuilder,
    ShardedCardinalityEstimator,
    ShardedSetIndex,
)

from .conftest import make_builder


def _failing_dispatch(fail_shards):
    real = builder_mod._dispatch_build

    def dispatch(task, shard, model_config, train_config, options):
        if shard.shard_id in fail_shards:
            raise RuntimeError(f"injected failure on shard {shard.shard_id}")
        return real(task, shard, model_config, train_config, options)

    return dispatch


def _exit_worker(job):
    """Simulates a worker process dying outright (segfault/OOM-kill)."""
    os._exit(17)


class TestFailureSurfacing:
    def test_single_shard_failure_is_attributed(self, plans, monkeypatch):
        monkeypatch.setattr(builder_mod, "_dispatch_build", _failing_dispatch({1}))
        with pytest.raises(ShardBuildError) as excinfo:
            make_builder(plans[3]).build_index()
        assert excinfo.value.failures == [
            (1, "RuntimeError: injected failure on shard 1")
        ]
        assert "shard 1" in str(excinfo.value)

    def test_all_failures_are_collected_not_just_the_first(self, plans, monkeypatch):
        monkeypatch.setattr(builder_mod, "_dispatch_build", _failing_dispatch({0, 2}))
        with pytest.raises(ShardBuildError) as excinfo:
            make_builder(plans[3]).build_cardinality()
        assert [sid for sid, _ in excinfo.value.failures] == [0, 2]

    def test_failure_crosses_the_process_pool_boundary(self, plans, monkeypatch):
        monkeypatch.setattr(builder_mod, "_dispatch_build", _failing_dispatch({2}))
        with pytest.raises(ShardBuildError) as excinfo:
            make_builder(plans[3], workers=2).build_bloom()
        assert [sid for sid, _ in excinfo.value.failures] == [2]

    def test_dead_worker_process_surfaces_as_build_error(self, plans, monkeypatch):
        monkeypatch.setattr(builder_mod, "_train_shard", _exit_worker)
        with pytest.raises(ShardBuildError) as excinfo:
            make_builder(plans[3], workers=2).build_index()
        assert excinfo.value.failures[0][0] == -1
        assert "worker pool failed" in excinfo.value.failures[0][1]

    def test_healthy_shards_are_not_reported(self, plans, monkeypatch):
        monkeypatch.setattr(builder_mod, "_dispatch_build", _failing_dispatch(set()))
        router = make_builder(plans[2]).build_index()
        assert isinstance(router, ShardedSetIndex)
        assert len(router.parts) == 2


class TestAssembly:
    def test_build_all_returns_every_router(self, plans):
        routers = make_builder(plans[2]).build_all()
        assert set(routers) == set(TASKS)
        assert isinstance(routers["cardinality"], ShardedCardinalityEstimator)
        assert isinstance(routers["index"], ShardedSetIndex)
        assert isinstance(routers["bloom"], ShardedBloomFilter)

    def test_guarded_builder_wraps_each_shard(self, plans):
        builder = make_builder(plans[2], guarded=True)
        guard_types = {
            "cardinality": GuardedCardinalityEstimator,
            "index": GuardedSetIndex,
            "bloom": GuardedBloomFilter,
        }
        for task, guard_type in guard_types.items():
            router = builder.build(task)
            assert len(router.parts) == 2
            assert all(isinstance(part, guard_type) for part in router.parts)

    def test_guarded_routers_still_answer(self, plans, truth, collection):
        router = make_builder(plans[2], guarded=True).build_index()
        query = tuple(collection[0][:2])
        assert router.lookup(query) == truth.first_position(query)

    def test_rejects_unknown_task(self, plans):
        with pytest.raises(ValueError, match="unknown task"):
            make_builder(plans[2]).build("join")

    def test_rejects_bad_worker_count(self, plans):
        with pytest.raises(ValueError, match="workers"):
            make_builder(plans[2], workers=0)

    def test_default_workers_is_at_least_one(self):
        assert ShardedBuilder.default_workers() >= 1

    def test_per_shard_seeds_differ(self, plans):
        builder = make_builder(plans[3], base_seed=7)
        seeds = [job[3].seed for job in builder._jobs("index")]
        assert seeds == [7, 8, 9]
