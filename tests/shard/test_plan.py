"""ShardPlan: contiguity, balance, clamping, position arithmetic."""

from __future__ import annotations

import pytest

from repro.sets import SetCollection
from repro.shard import Shard, ShardPlan

from .conftest import SHARD_COUNTS


class TestContiguous:
    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_shards_tile_the_collection_in_order(self, collection, k):
        plan = ShardPlan.contiguous(collection, k)
        assert len(plan) == k
        offset = 0
        for shard_id, shard in enumerate(plan):
            assert shard.shard_id == shard_id
            assert shard.offset == offset
            for local, stored in enumerate(shard.collection):
                assert stored == collection[offset + local]
            offset = shard.end
        assert offset == len(collection)
        assert plan.num_sets == len(collection)

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_shards_are_balanced(self, collection, k):
        plan = ShardPlan.contiguous(collection, k)
        sizes = [len(shard) for shard in plan]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == len(collection)

    def test_more_shards_than_sets_clamps_to_one_set_each(self, collection):
        plan = ShardPlan.contiguous(collection, len(collection) + 50)
        assert len(plan) == len(collection)
        assert all(len(shard) == 1 for shard in plan)

    def test_single_shard_is_the_whole_collection(self, collection):
        plan = ShardPlan.contiguous(collection, 1)
        assert len(plan) == 1
        assert list(plan[0].collection) == list(collection)
        assert plan[0].offset == 0

    def test_vocab_is_preserved_on_subcollections(self):
        collection = SetCollection.from_token_sets([["a", "b"], ["b", "c"], ["a"]])
        plan = ShardPlan.contiguous(collection, 2)
        for shard in plan:
            assert shard.collection.vocab is collection.vocab

    def test_rejects_bad_inputs(self, collection):
        with pytest.raises(ValueError):
            ShardPlan.contiguous(collection, 0)
        with pytest.raises(ValueError):
            ShardPlan.contiguous(SetCollection([]), 2)


class TestPositions:
    def test_shard_of_position_round_trips(self, collection):
        plan = ShardPlan.contiguous(collection, 7)
        for position in range(len(collection)):
            shard = plan.shard_of_position(position)
            local = position - shard.offset
            assert shard.to_global(local) == position
            assert shard.collection[local] == collection[position]

    def test_shard_of_position_bounds(self, collection):
        plan = ShardPlan.contiguous(collection, 3)
        with pytest.raises(IndexError):
            plan.shard_of_position(-1)
        with pytest.raises(IndexError):
            plan.shard_of_position(len(collection))

    def test_to_global_rejects_out_of_shard_positions(self, collection):
        plan = ShardPlan.contiguous(collection, 3)
        with pytest.raises(IndexError):
            plan[0].to_global(len(plan[0]))

    def test_offsets_match_shards(self, collection):
        plan = ShardPlan.contiguous(collection, 3)
        assert plan.offsets() == tuple(shard.offset for shard in plan)

    def test_bisect_routing_matches_linear_scan_at_k1000(self):
        """Every shard boundary at K=1000: the O(log K) bisect lookup must
        agree with the O(K) linear reference on the first and last position
        of each shard (the off-by-one hot spots of boundary arithmetic)."""
        collection = SetCollection([[i % 7, (i % 11) + 7] for i in range(2500)])
        plan = ShardPlan.contiguous(collection, 1000)
        assert len(plan) == 1000

        def linear_reference(position: int) -> Shard:
            for shard in plan:
                if shard.offset <= position < shard.end:
                    return shard
            raise AssertionError(f"no shard covers {position}")

        boundary_positions = set()
        for shard in plan:
            boundary_positions.add(shard.offset)
            boundary_positions.add(shard.end - 1)
        for position in sorted(boundary_positions):
            assert plan.shard_of_position(position) is linear_reference(position)


class TestValidation:
    def test_rejects_non_tiling_shards(self, collection):
        sets = collection.sets()
        a = Shard(0, 0, SetCollection(sets[:10]))
        gap = Shard(1, 11, SetCollection(sets[11:], vocab=None))
        with pytest.raises(ValueError):
            ShardPlan(collection, [a, gap])

    def test_rejects_misnumbered_shards(self, collection):
        sets = collection.sets()
        a = Shard(1, 0, SetCollection(sets[:10]))
        with pytest.raises(ValueError):
            ShardPlan(collection, [a])

    def test_rejects_incomplete_cover(self, collection):
        sets = collection.sets()
        a = Shard(0, 0, SetCollection(sets[:10]))
        with pytest.raises(ValueError):
            ShardPlan(collection, [a])

    def test_rejects_empty_plan(self, collection):
        with pytest.raises(ValueError):
            ShardPlan(collection, [])
