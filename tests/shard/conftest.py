"""Shared fixtures for the sharding suite.

Training dominates test time, so per-shard structures are built once per
session (lazily, per ``(task, K)``) and shared.  Routers are cheap
wrappers over their parts: tests that mutate router-level state (auxiliary
overrides, insert filters) must re-wrap via :func:`fresh_router` instead
of dirtying the shared instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ModelConfig, TrainConfig
from repro.sets import InvertedIndex, SetCollection
from repro.shard import ShardedBuilder, ShardPlan

#: Shard counts exercised by the differential harness (includes K == 1 and
#: K == 7, which does not divide the collection evenly).
SHARD_COUNTS = (1, 2, 3, 7)

MAX_SUBSET_SIZE = 3


def _make_collection(seed: int = 11, n: int = 48, vocab: int = 26) -> SetCollection:
    rng = np.random.default_rng(seed)
    sets = []
    for _ in range(n):
        size = int(rng.integers(2, 6))
        sets.append(tuple(int(e) for e in rng.choice(vocab, size=size, replace=False)))
    return SetCollection(sets)


def small_model_config() -> ModelConfig:
    return ModelConfig(kind="lsm", embedding_dim=2, phi_hidden=(4,), rho_hidden=(4,))


def small_train_config() -> TrainConfig:
    return TrainConfig(epochs=2, batch_size=64, lr=5e-3)


def make_builder(plan: ShardPlan, **overrides) -> ShardedBuilder:
    """A builder with the suite's cheap defaults (override per test)."""
    kwargs = dict(
        workers=1,
        base_seed=0,
        model_config=small_model_config(),
        train_config=small_train_config(),
        max_subset_size=MAX_SUBSET_SIZE,
        max_training_samples=None,  # full enumeration: exactness guarantees
        num_negative_samples=200,
    )
    kwargs.update(overrides)
    return ShardedBuilder(plan, **kwargs)


def fresh_router(router):
    """A clean router over the same trained parts (no shared overrides)."""
    return type(router)(router.plan, router.parts)


def build_unsharded(shard, task, seed=0):
    """Reference build: one unsharded structure with the builder's exact
    per-shard seeding and options, for bit-identical K == 1 comparisons."""
    from dataclasses import replace

    from repro.shard.builder import _dispatch_build, _seeded

    loss = "bce" if task == "bloom" else "mse"
    return _dispatch_build(
        task,
        shard,
        _seeded(small_model_config(), seed),
        replace(small_train_config(), seed=seed, loss=loss),
        {
            "removal": None,
            "max_subset_size": MAX_SUBSET_SIZE,
            "max_training_samples": None,
            "num_negative_samples": 200,
            "error_range_length": 100,
            "threshold": 0.5,
        },
    )


@pytest.fixture(scope="session")
def collection() -> SetCollection:
    return _make_collection()


@pytest.fixture(scope="session")
def truth(collection) -> InvertedIndex:
    return InvertedIndex(collection)


@pytest.fixture(scope="session")
def plans(collection) -> dict[int, ShardPlan]:
    return {k: ShardPlan.contiguous(collection, k) for k in SHARD_COUNTS}


@pytest.fixture(scope="session")
def routers(plans):
    """Lazy session cache of built routers, keyed on ``(task, K)``."""
    cache: dict[tuple[str, int], object] = {}

    def get(task: str, num_shards: int):
        key = (task, num_shards)
        if key not in cache:
            cache[key] = make_builder(plans[num_shards]).build(task)
        return cache[key]

    return get


def subset_workload(collection, rng, num_queries=220, max_size=MAX_SUBSET_SIZE):
    """In-universe positive queries: subsets of stored sets, with repeats."""
    queries = []
    for _ in range(num_queries):
        base = collection[int(rng.integers(len(collection)))]
        size = int(rng.integers(1, min(max_size, len(base)) + 1))
        queries.append(tuple(sorted(rng.choice(base, size=size, replace=False))))
    queries.extend(queries[:20])  # duplicates exercise dedupe-and-scatter
    rng.shuffle(queries)
    return [tuple(int(e) for e in q) for q in queries]


def mixed_workload(collection, rng, num_queries=220):
    """Positives plus random element combinations (present or absent)."""
    vocab = collection.max_element_id() + 1
    queries = subset_workload(collection, rng, num_queries=num_queries // 2)
    for _ in range(num_queries - len(queries)):
        size = int(rng.integers(1, MAX_SUBSET_SIZE + 1))
        queries.append(
            tuple(sorted(int(e) for e in rng.choice(vocab, size=size, replace=False)))
        )
    rng.shuffle(queries)
    return queries


def hostile_workload(collection, rng):
    """The guarded-facade mix: valid, OOV, empty, oversized, malformed."""
    oov = collection.max_element_id() + 10_000
    oversized = tuple(range(max(len(s) for s in collection) + 1))
    hostile = [
        (),
        (oov,),
        (0, oov),
        oversized,
        ("not", "ints"),
        None,
    ]
    queries = mixed_workload(collection, rng, num_queries=60)
    for position, query in zip(
        rng.integers(0, len(queries), len(hostile) * 4), hostile * 4
    ):
        queries.insert(int(position), query)
    return queries
