"""Seed determinism: same seed ⇒ byte-identical ``save_state`` payloads.

Covers the sharded builder (including across worker counts — the process
pool must change *when* shards train, never *what* they train on) and the
unsharded structures, plus the serialization layer itself: archives embed
no wall-clock state, so re-saving identical weights is bit-identical.
"""

from __future__ import annotations

import zipfile

import pytest

from repro.nn.serialize import load_state, save_state

from .conftest import build_unsharded, make_builder


def _part_payloads(router, tmp_path, tag):
    payloads = []
    for shard_id, part in enumerate(router.parts):
        path = tmp_path / f"{tag}-{shard_id}.npz"
        save_state(part.model, path)
        payloads.append(path.read_bytes())
    return payloads


def _build_unsharded(plans, task, seed):
    return build_unsharded(plans[1][0], task, seed=seed)


class TestShardedDeterminism:
    @pytest.mark.parametrize("task", ["cardinality", "index"])
    def test_same_seed_builds_identical_parts(self, plans, tmp_path, task):
        first = make_builder(plans[2]).build(task)
        second = make_builder(plans[2]).build(task)
        assert _part_payloads(first, tmp_path, "a") == _part_payloads(
            second, tmp_path, "b"
        )

    def test_worker_count_does_not_change_weights(self, plans, tmp_path):
        inline = make_builder(plans[2], workers=1).build_cardinality()
        pooled = make_builder(plans[2], workers=2).build_cardinality()
        assert _part_payloads(inline, tmp_path, "w1") == _part_payloads(
            pooled, tmp_path, "w2"
        )

    def test_different_seeds_build_different_weights(self, plans, tmp_path):
        base = make_builder(plans[2], base_seed=0).build_cardinality()
        other = make_builder(plans[2], base_seed=1000).build_cardinality()
        assert _part_payloads(base, tmp_path, "s0") != _part_payloads(
            other, tmp_path, "s1"
        )

    def test_single_shard_matches_direct_unsharded_build(self, plans, tmp_path):
        sharded = make_builder(plans[1]).build_cardinality()
        direct = _build_unsharded(plans, "cardinality", seed=0)
        save_state(direct.model, tmp_path / "direct.npz")
        assert _part_payloads(sharded, tmp_path, "k1") == [
            (tmp_path / "direct.npz").read_bytes()
        ]


class TestUnshardedDeterminism:
    def test_same_seed_double_build_is_byte_identical(self, plans, tmp_path):
        first = _build_unsharded(plans, "cardinality", seed=3)
        second = _build_unsharded(plans, "cardinality", seed=3)
        save_state(first.model, tmp_path / "first.npz")
        save_state(second.model, tmp_path / "second.npz")
        assert (tmp_path / "first.npz").read_bytes() == (
            tmp_path / "second.npz"
        ).read_bytes()


class TestArchiveDeterminism:
    def test_resaving_the_same_weights_is_byte_identical(self, plans, tmp_path):
        model = _build_unsharded(plans, "cardinality", seed=5).model
        save_state(model, tmp_path / "a.npz")
        save_state(model, tmp_path / "b.npz")
        assert (tmp_path / "a.npz").read_bytes() == (tmp_path / "b.npz").read_bytes()

    def test_archive_embeds_no_wall_clock_timestamps(self, plans, tmp_path):
        model = _build_unsharded(plans, "cardinality", seed=5).model
        save_state(model, tmp_path / "weights.npz")
        with zipfile.ZipFile(tmp_path / "weights.npz") as archive:
            for info in archive.infolist():
                assert info.date_time == (1980, 1, 1, 0, 0, 0)

    def test_deterministic_archive_round_trips(self, plans, collection, tmp_path):
        estimator = _build_unsharded(plans, "cardinality", seed=5)
        save_state(estimator.model, tmp_path / "weights.npz")
        reload = _build_unsharded(plans, "cardinality", seed=6)
        load_state(reload.model, tmp_path / "weights.npz")
        query = tuple(collection[0][:2])
        # float32 archive dtype: answers agree to float32 precision.
        assert reload.estimate(query) == pytest.approx(
            estimator.estimate(query), rel=1e-3
        )
