"""Batch/single parity and update fan-out for the sharded routers.

Mirrors ``tests/core/test_batch_parity.py`` at the router level: the
serving subsystem drives everything through the ``*_many`` entry points,
so a sharded answer must never depend on which batch a query lands in.
The guarded facades run the same hostile workloads over sharded routers
as they do over raw structures — including the per-row fallback path
under injected model faults, which must survive the per-shard fan-out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (
    ALWAYS,
    FaultInjector,
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
)

from .conftest import fresh_router, hostile_workload, subset_workload


class TestShardedRawParity:
    def test_estimate_many_matches_single(self, routers, collection, rng):
        estimator = routers("cardinality", 3)
        queries = subset_workload(collection, rng, num_queries=120)
        batched = estimator.estimate_many(queries)
        singles = np.array([estimator.estimate(q) for q in queries])
        np.testing.assert_allclose(batched, singles, rtol=1e-7)

    def test_lookup_many_matches_single(self, routers, collection, rng):
        index = routers("index", 3)
        queries = subset_workload(collection, rng, num_queries=120)
        assert index.lookup_many(queries) == [index.lookup(q) for q in queries]

    def test_contains_many_matches_single(self, routers, collection, rng):
        bloom = routers("bloom", 3)
        queries = subset_workload(collection, rng, num_queries=120)
        batched = bloom.contains_many(queries)
        assert list(batched) == [bloom.contains(q) for q in queries]

    def test_duplicate_batch_shares_one_answer(self, routers, collection):
        estimator = routers("cardinality", 3)
        query = tuple(collection[0][:2])
        batched = estimator.estimate_many([query] * 64)
        assert np.all(batched == batched[0])
        assert estimator.estimate(query) == pytest.approx(float(batched[0]))


class TestGuardedOverShardedParity:
    """Two fresh facades over one sharded router: a single-query loop vs
    one batch call must give identical answers and health accounting."""

    def test_guarded_estimate_parity(self, routers, truth, collection, rng):
        queries = hostile_workload(collection, rng)
        router = routers("cardinality", 3)
        one = GuardedCardinalityEstimator(router, truth)
        many = GuardedCardinalityEstimator(router, truth)
        singles = np.array([one.estimate(q) for q in queries])
        batched = many.estimate_many(queries)
        np.testing.assert_allclose(batched, singles, rtol=1e-7)
        assert one.health.as_dict() == many.health.as_dict()

    def test_guarded_lookup_parity(self, routers, truth, collection, rng):
        queries = hostile_workload(collection, rng)
        router = routers("index", 3)
        one = GuardedSetIndex(router, truth)
        many = GuardedSetIndex(router, truth)
        singles = [one.lookup(q) for q in queries]
        batched = many.lookup_many(queries)
        assert batched == singles
        assert one.health.as_dict() == many.health.as_dict()

    def test_guarded_contains_parity(self, routers, truth, collection, rng):
        queries = hostile_workload(collection, rng)
        router = routers("bloom", 3)
        one = GuardedBloomFilter(router, truth)
        many = GuardedBloomFilter(router, truth)
        singles = [one.contains(q) for q in queries]
        batched = many.contains_many(queries)
        assert list(batched) == singles
        assert one.health.as_dict() == many.health.as_dict()


class TestUpdateFanout:
    """Router-level overrides: consulted before any shard fan-out, visible
    to both entry points, and isolated to the overridden query."""

    def test_record_update_overrides_one_row_only(self, routers, collection):
        clean = routers("cardinality", 3)
        router = fresh_router(clean)
        target = tuple(collection[0][:2])
        other = tuple(collection[1][:2])
        router.record_update(target, 7)
        batched = router.estimate_many([target, other, target])
        assert batched[0] == 7.0 and batched[2] == 7.0
        assert batched[1] == pytest.approx(clean.estimate(other))
        assert router.estimate(target) == 7.0

    def test_record_update_rejects_negative(self, routers):
        router = fresh_router(routers("cardinality", 3))
        with pytest.raises(ValueError):
            router.record_update((1, 2), -1)

    def test_insert_update_overrides_lookup(self, routers, truth, collection):
        clean = routers("index", 3)
        router = fresh_router(clean)
        target = tuple(collection[0][:2])
        other = tuple(collection[1][:2])
        router.insert_update(target, 41)
        assert router.lookup(target) == 41
        results = router.lookup_many([target, other])
        assert results[0] == 41
        assert results[1] == truth.first_position(other)

    def test_bloom_insert_is_visible_and_isolated(self, routers, collection):
        clean = routers("bloom", 3)
        router = fresh_router(clean)
        absent = (collection.max_element_id() + 3, collection.max_element_id() + 4)
        assert router.contains(absent) is False
        router.insert(absent)
        assert router.contains(absent) is True
        assert absent in router
        assert router.backup is not None
        assert router.backup.contains_set(set(absent))
        # Inserts must not perturb answers for other queries.
        probe = tuple(collection[0][:2])
        assert router.contains(probe) == clean.contains(probe)

    def test_updates_fire_notification_hooks(self, routers, collection):
        events = []
        router = fresh_router(routers("cardinality", 3))
        router.add_update_listener(lambda canonical: events.append(canonical))
        router.record_update((3, 1), 2)
        assert events == [(1, 3)]


@pytest.mark.faults
class TestPerRowFallbackUnderFanout:
    """With every shard's model emitting NaN, the guarded facade must fall
    back per row — while router-level auxiliary rows stay exact answers."""

    def test_estimate_rows_fall_back_independently(self, routers, truth, collection):
        router = fresh_router(routers("cardinality", 3))
        target = tuple(collection[0][:2])
        others = [tuple(collection[i][:2]) for i in (1, 2, 3)]
        router.record_update(target, 7)
        guarded = GuardedCardinalityEstimator(router, truth)
        with FaultInjector(nan_predictions=ALWAYS):
            batched = guarded.estimate_many([target, *others])
        assert batched[0] == 7.0
        for value, query in zip(batched[1:], others):
            assert value == float(truth.cardinality(query))
        assert guarded.health.total_fallbacks == len(others)
        assert guarded.health.model_answers == 1  # the auxiliary-backed row

    def test_lookup_rows_fall_back_independently(self, routers, truth, collection):
        router = fresh_router(routers("index", 3))
        target = tuple(collection[0][:2])
        others = [tuple(collection[i][:2]) for i in (1, 2, 3)]
        router.insert_update(target, 41)
        guarded = GuardedSetIndex(router, truth)
        with FaultInjector(nan_predictions=ALWAYS):
            batched = guarded.lookup_many([target, *others])
        assert batched[0] == 41
        assert batched[1:] == [truth.first_position(q) for q in others]
