"""Differential/metamorphic harness: sharded vs unsharded ground truth.

For every shard count K the routers must reproduce what a single structure
over the whole collection guarantees:

* **index** — the learned index is exact (bounded search + fallback scan),
  so ``ShardedSetIndex`` must return *exactly* the global first position
  from the exact inverted index, on every query;
* **bloom** — no false negatives: every stored subset (all are trained
  positives here, thanks to full enumeration) must be reported present;
  the router's answer must also equal the OR of per-shard answers;
* **cardinality** — estimates must equal the sum of per-shard estimates
  over the shards the query can touch (counts over disjoint slices add
  up), and at K == 1 the router must answer bit-identically to a directly
  built unsharded estimator with the same seed.

Edge cases ride along: empty, out-of-vocabulary, and oversized queries
(through the guarded facades, which define their semantics), K larger
than the collection, and fault injection on the shards' models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (
    FaultInjector,
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
)
from repro.shard import ShardPlan

from .conftest import (
    SHARD_COUNTS,
    build_unsharded,
    fresh_router,
    make_builder,
    mixed_workload,
    subset_workload,
)

NUM_QUERIES = 220  # >= 200 randomized queries per structure, per K


@pytest.mark.parametrize("k", SHARD_COUNTS)
class TestIndexDifferential:
    def test_sharded_lookup_matches_exact_first_position(
        self, routers, truth, collection, rng, k
    ):
        queries = mixed_workload(collection, rng, num_queries=NUM_QUERIES)
        index = routers("index", k)
        batched = index.lookup_many(queries)
        for query, got in zip(queries, batched):
            assert got == truth.first_position(query), (
                f"K={k} query {query}: sharded {got} != exact"
            )

    def test_single_lookup_agrees_with_batch(self, routers, collection, rng, k):
        queries = mixed_workload(collection, rng, num_queries=40)
        index = routers("index", k)
        assert [index.lookup(q) for q in queries] == index.lookup_many(queries)


@pytest.mark.parametrize("k", SHARD_COUNTS)
class TestBloomDifferential:
    def test_no_false_negatives_on_stored_subsets(
        self, routers, truth, collection, rng, k
    ):
        queries = subset_workload(collection, rng, num_queries=NUM_QUERIES)
        bloom = routers("bloom", k)
        answers = bloom.contains_many(queries)
        for query, answer in zip(queries, answers):
            assert truth.contains(query)
            assert answer, f"K={k}: false negative on stored subset {query}"

    def test_router_answer_is_the_or_of_shard_answers(
        self, routers, collection, rng, k
    ):
        queries = mixed_workload(collection, rng, num_queries=NUM_QUERIES)
        bloom = routers("bloom", k)
        batched = bloom.contains_many(queries)
        for query, got in zip(queries, batched):
            per_shard = [
                bool(part.contains_many([query])[0])
                for shard_id, part in enumerate(bloom.parts)
                if bloom._shard_can_match(shard_id, tuple(sorted(set(query))))
            ]
            assert bool(got) == any(per_shard)


@pytest.mark.parametrize("k", SHARD_COUNTS)
class TestCardinalityDifferential:
    def test_estimate_is_the_sum_of_shard_estimates(
        self, routers, collection, rng, k
    ):
        queries = mixed_workload(collection, rng, num_queries=NUM_QUERIES)
        estimator = routers("cardinality", k)
        batched = estimator.estimate_many(queries)
        for query, got in zip(queries, batched):
            canonical = tuple(sorted(set(query)))
            expected = sum(
                float(part.estimate_many([canonical])[0])
                for shard_id, part in enumerate(estimator.parts)
                if estimator._shard_can_match(shard_id, canonical)
            )
            assert got == pytest.approx(expected, rel=1e-9), f"K={k} query {query}"

    def test_estimates_are_finite_and_positive(self, routers, collection, rng, k):
        queries = subset_workload(collection, rng, num_queries=60)
        estimates = routers("cardinality", k).estimate_many(queries)
        assert np.all(np.isfinite(estimates))
        assert np.all(estimates >= 1.0)


class TestSingleShardEquivalence:
    """K == 1 routing must be a no-op: answers identical to a direct build."""

    @pytest.fixture(scope="class")
    def direct(self, plans):
        return lambda task: build_unsharded(plans[1][0], task, seed=0)

    def test_cardinality_identical_to_unsharded(
        self, routers, direct, collection, rng
    ):
        queries = subset_workload(collection, rng, num_queries=80)
        sharded = routers("cardinality", 1).estimate_many(queries)
        unsharded = direct("cardinality").estimate_many(queries)
        np.testing.assert_allclose(sharded, unsharded, rtol=0, atol=0)

    def test_index_identical_to_unsharded(self, routers, direct, collection, rng):
        queries = mixed_workload(collection, rng, num_queries=80)
        assert routers("index", 1).lookup_many(queries) == direct("index").lookup_many(
            queries
        )

    def test_bloom_identical_to_unsharded(self, routers, direct, collection, rng):
        queries = mixed_workload(collection, rng, num_queries=80)
        sharded = routers("bloom", 1).contains_many(queries)
        unsharded = direct("bloom").contains_many(queries)
        assert list(sharded) == [bool(a) for a in unsharded]


class TestEdgeCases:
    def test_k_larger_than_collection(self, collection, truth, rng):
        plan = ShardPlan.contiguous(collection, len(collection) + 10)
        index = make_builder(plan).build_index()
        queries = mixed_workload(collection, rng, num_queries=60)
        for query, got in zip(queries, index.lookup_many(queries)):
            assert got == truth.first_position(query)

    def test_empty_query_semantics(self, routers, collection):
        assert routers("index", 3).lookup(()) == 0
        assert routers("bloom", 3).contains(()) is True
        assert routers("cardinality", 3).estimate(()) == float(len(collection))

    def test_oov_query_semantics(self, routers, collection):
        oov = (collection.max_element_id() + 10_000,)
        assert routers("index", 3).lookup(oov) is None
        assert routers("bloom", 3).contains(oov) is False
        assert routers("cardinality", 3).estimate(oov) == 0.0

    def test_oversized_query_misses(self, routers, collection):
        oversized = tuple(range(max(len(s) for s in collection) + 1))
        assert routers("index", 3).lookup(oversized) is None

    def test_guarded_routers_define_hostile_semantics(
        self, routers, truth, collection
    ):
        estimator = GuardedCardinalityEstimator(
            fresh_router(routers("cardinality", 3)), truth
        )
        index = GuardedSetIndex(fresh_router(routers("index", 3)), truth)
        bloom = GuardedBloomFilter(fresh_router(routers("bloom", 3)), truth)
        oov = (collection.max_element_id() + 10_000,)
        assert estimator.estimate(()) == float(len(collection))
        assert estimator.estimate(oov) == 0.0
        assert estimator.estimate(("not", "ints")) == 0.0
        assert index.lookup(()) == 0
        assert index.lookup(oov) is None
        assert bloom.contains(()) is True
        assert bloom.contains(oov) is False
        assert bloom.contains(("not", "ints")) is False


@pytest.mark.faults
class TestFaultInjection:
    """No-false-negative invariant under model faults on the shards.

    Guarded per-shard parts fall back to their shard-local exact indexes
    when predictions go non-finite, so even NaN classifiers on *every*
    shard (a fortiori one) keep the OR exact for stored subsets.
    """

    def test_bloom_no_false_negatives_with_nan_shards(
        self, plans, truth, collection, rng
    ):
        bloom = make_builder(plans[3], guarded=True).build_bloom()
        queries = subset_workload(collection, rng, num_queries=NUM_QUERIES)
        with FaultInjector(nan_predictions=np.inf):
            answers = bloom.contains_many(queries)
        for query, answer in zip(queries, answers):
            assert truth.contains(query)
            assert answer, f"false negative under fault injection: {query}"

    def test_guarded_sharded_lookup_survives_nan_shards(
        self, plans, truth, collection, rng
    ):
        index = GuardedSetIndex(make_builder(plans[3]).build_index(), truth)
        queries = mixed_workload(collection, rng, num_queries=60)
        with FaultInjector(nan_predictions=np.inf):
            answers = index.lookup_many(queries)
        assert answers == [truth.first_position(q) for q in queries]
