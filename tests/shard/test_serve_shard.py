"""SetServer over sharded routers: the serving layer must not notice.

The routers expose the same ``*_many`` entry points, ``collection``
attribute, update notifications, and (for membership) ``backup`` view as
the unsharded structures, so every serving feature — kind detection,
batched dispatch, result caching with per-key invalidation, hot snapshot
swap (including unsharded → sharded), and shed-to-exact admission
control — must work unchanged.
"""

from __future__ import annotations

import pytest

from repro.serve import BatchPolicy, SetServer, detect_kind

from .conftest import build_unsharded, fresh_router, subset_workload


def _serial(kind, structure, queries):
    if kind == "cardinality":
        return [float(structure.estimate(q)) for q in queries]
    if kind == "index":
        return [structure.lookup(q) for q in queries]
    return [bool(structure.contains(q)) for q in queries]


class TestKindDetection:
    @pytest.mark.parametrize("task", ["cardinality", "index", "bloom"])
    def test_sharded_routers_are_servable_kinds(self, routers, task):
        assert detect_kind(routers(task, 2)) == task


class TestServedParity:
    @pytest.mark.parametrize("task", ["cardinality", "index", "bloom"])
    def test_served_answers_match_the_router(self, routers, collection, rng, task):
        router = routers(task, 3)
        queries = subset_workload(collection, rng, num_queries=36)
        serial = _serial(task, router, queries)
        with SetServer(router, cache_size=0) as server:
            served = server.query_many(queries)
        assert served == serial
        assert server.stats.requests_failed == 0


class TestSnapshotSwap:
    def test_swap_unsharded_to_sharded(self, routers, plans, collection, rng):
        unsharded = build_unsharded(plans[1][0], "cardinality", seed=0)
        sharded = routers("cardinality", 3)
        queries = subset_workload(collection, rng, num_queries=12)
        with SetServer(unsharded, cache_size=0) as server:
            before = server.query_many(queries)
            server.swap(sharded)
            after = server.query_many(queries)
        assert before == _serial("cardinality", unsharded, queries)
        assert after == _serial("cardinality", sharded, queries)
        assert server.stats.snapshot_swaps == 1

    def test_swap_rejects_kind_mismatch(self, routers):
        with SetServer(routers("cardinality", 2), cache_size=0) as server:
            with pytest.raises(TypeError):
                server.swap(routers("index", 2))


class TestCacheInvalidation:
    def test_record_update_invalidates_cached_sharded_answer(
        self, routers, collection
    ):
        router = fresh_router(routers("cardinality", 3))
        query = tuple(collection[0][:2])
        with SetServer(router, cache_size=256) as server:
            before = server.query(query)
            assert server.query(query) == before  # cached
            router.record_update(query, 41)
            after = server.query(query)
        assert after == 41.0
        assert server.cache.invalidations >= 1

    def test_bloom_insert_invalidates_cached_miss(self, routers, collection):
        router = fresh_router(routers("bloom", 3))
        absent = (collection.max_element_id() + 8, collection.max_element_id() + 9)
        with SetServer(router, cache_size=256) as server:
            assert server.query(absent) is False
            router.insert(absent)
            assert server.query(absent) is True


class TestShedToExact:
    def test_exact_index_derives_from_the_router_collection(self, routers, truth):
        router = routers("cardinality", 3)
        policy = BatchPolicy(max_queue=4, overflow="shed-to-exact")
        # No exact= passed: the server derives one from router.collection.
        server = SetServer(router, policy=policy, cache_size=0)
        workload = [tuple(router.collection[i][:2]) for i in range(12)]
        # Dispatcher not started: the queue fills, the rest must shed.
        futures = [server.submit(q) for q in workload]
        shed_rows = [
            row
            for row, f in enumerate(futures)
            if f.done() and row >= policy.max_queue
        ]
        assert server.stats.shed == len(workload) - policy.max_queue
        for row in shed_rows:
            assert futures[row].result(0.0) == float(truth.cardinality(workload[row]))
        server.start()
        for future in futures:
            future.result(timeout=30.0)
        server.close()
        assert server.stats.requests_failed == 0
