"""Setuptools shim.

The execution environment has no ``wheel`` package and no network access,
so modern (PEP 517) editable installs fail with ``invalid command
'bdist_wheel'``.  This file enables the legacy ``setup.py develop`` path:
``pip install -e . --no-build-isolation`` works out of the box.
Project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
