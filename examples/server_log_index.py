"""Server-log indexing: the hybrid learned set index vs a B+ tree.

The paper's RW scenario (§8.1.1): sets of file-access / login tokens from
company server logs, stored in arrival order.  The learned index answers
"first set containing this subset" queries; the traditional competitor is
a B+ tree over permutation-invariant set hashes (equality only).

Also demonstrates the paper's local-vs-global error-bound improvement
(§8.3.3) and the update path (§7.2).

Run:  python examples/server_log_index.py [num_sets]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.baselines import BPlusTree, commutative_set_hash
from repro.bench import Timer, mean_query_ms, print_table
from repro.core import (
    LearnedSetIndex,
    ModelConfig,
    OutlierRemovalConfig,
    TrainConfig,
)
from repro.datasets import generate_rw_like
from repro.sets import InvertedIndex, sample_query_workload


def main(num_sets: int = 4000) -> None:
    print(f"generating {num_sets} server-log sets ...")
    collection = generate_rw_like(num_sets, seed=11)
    truth = InvertedIndex(collection)
    queries = sample_query_workload(
        collection, 300, rng=np.random.default_rng(2), max_subset_size=4
    )

    print("training the hybrid learned index (CLSM + outlier structure) ...")
    with Timer() as build_timer:
        index = LearnedSetIndex.build(
            collection,
            model_config=ModelConfig(kind="clsm", embedding_dim=8, seed=1),
            train_config=TrainConfig(
                epochs=30, batch_size=1024, lr=5e-3, loss="mse", seed=1
            ),
            removal=OutlierRemovalConfig(percentile=90.0, at_epochs=(20,)),
            max_subset_size=4,
            max_training_samples=40_000,
            error_range_length=100,
        )
    correct = sum(index.lookup(q) == truth.first_position(q) for q in queries)
    print(
        f"  built in {build_timer.seconds:.1f}s; "
        f"{index.report.num_outliers} outliers in the auxiliary structure; "
        f"{correct}/{len(queries)} workload lookups exact"
    )

    # Local vs global error bounds: same model, very different scan costs.
    rows = []
    for label, use_local in (("local (range=100)", True), ("single global", False)):
        index.use_local_errors = use_local
        index.reset_stats()
        for query in queries:
            index.lookup(query)
        rows.append(
            [label, index.stats.mean_scan_length, index.bounds.mean_bound()
             if use_local else index.bounds.global_error]
        )
    index.use_local_errors = True
    print_table(
        ["error bounds", "mean sets scanned", "mean bound"],
        rows,
        title="local vs global error bounds (paper §8.3.3)",
    )

    # Traditional competitor: B+ tree over set hashes (equality search).
    with Timer() as bpt_timer:
        tree = BPlusTree(order=100)
        for position, stored in enumerate(collection):
            tree.insert(commutative_set_hash(stored), position)
    equality_queries = [collection[i] for i in range(0, len(collection), 7)][:300]
    print_table(
        ["structure", "build (s)", "memory (MB)", "ms/query"],
        [
            [
                "learned index (hybrid)",
                build_timer.seconds,
                index.total_bytes() / 1e6,
                mean_query_ms(index.lookup, queries[:150]),
            ],
            [
                "B+ tree (hash keys)",
                bpt_timer.seconds,
                _tree_megabytes(tree),
                mean_query_ms(
                    lambda q: tree.search(commutative_set_hash(q)),
                    equality_queries[:150],
                ),
            ],
        ],
        title="learned index vs B+ tree",
    )

    # Update path (§7.2): a subset moves; out-of-bound moves go to the aux.
    moved = queries[0]
    index.insert_update(moved, len(collection) - 1)
    print(
        f"\nupdate routed {'to auxiliary' if tuple(sorted(set(moved))) in index.auxiliary else 'nowhere (within bounds)'}; "
        f"auxiliary now holds {len(index.auxiliary)} subsets "
        f"({index.auxiliary_fraction:.1%} of trained)"
    )


def _tree_megabytes(tree: BPlusTree) -> float:
    from repro.nn.serialize import pickled_size_bytes

    return pickled_size_bytes(tree) / 1e6


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4000)
