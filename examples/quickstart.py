"""Quickstart: the paper's Figure 1 example, end to end.

Builds a tiny collection of hashtag sets and exercises all three learned
structures — cardinality estimator, set index, and Bloom filter — against
exact ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    InvertedIndex,
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    ModelConfig,
    SetCollection,
    TrainConfig,
)


def main() -> None:
    # Figure 1: four tweets of hashtags.  Real usage would load thousands
    # of sets; the API is identical.
    tweets = [
        ["#pizza", "#dinner", "#foodie"],
        ["#date", "#dinner"],
        ["#pizza", "#dinner", "#date"],
        ["#pizza", "#dinner", "#italian"],
    ]
    collection = SetCollection.from_token_sets(tweets)
    vocab = collection.vocab
    truth = InvertedIndex(collection)

    query = vocab.encode(["#pizza", "#dinner"])
    print(f"collection: {len(collection)} sets, {len(vocab)} unique hashtags")
    print(f"query Q = {{#pizza, #dinner}} -> ids {query}")
    print(f"exact cardinality: {truth.cardinality(query)} (T1, T3, T4)")
    print(f"exact first position: {truth.first_position(query)}")

    # Toy-size models train in well under a second.  MSE is the stabler
    # loss at this scale (the paper notes MSE/MAE as q-error alternatives).
    model = ModelConfig(kind="clsm", embedding_dim=4, seed=0)
    training = TrainConfig(epochs=200, lr=0.01, loss="mse", seed=0)

    estimator = LearnedCardinalityEstimator.build(
        collection, model_config=model, train_config=training
    )
    print(f"\nlearned cardinality estimate: {estimator.estimate(query):.2f}")

    index = LearnedSetIndex.build(
        collection, model_config=model, train_config=training, error_range_length=2
    )
    print(f"learned index lookup:         {index.lookup(query)}")

    bloom = LearnedBloomFilter.build(
        collection,
        model_config=model,
        train_config=TrainConfig(epochs=60, lr=0.01, loss="bce", seed=0),
        num_negative_samples=20,
    )
    present = vocab.encode(["#date", "#dinner"])
    absent = vocab.encode(["#foodie", "#italian"])
    print(f"membership {{#date, #dinner}}:    {bloom.contains(present)} (truth: True)")
    print(f"membership {{#foodie, #italian}}: {bloom.contains(absent)} (truth: False)")

    print(
        f"\nfootprints: estimator {estimator.total_bytes()} B, "
        f"index {index.total_bytes()} B, bloom filter {bloom.total_bytes()} B"
    )


if __name__ == "__main__":
    np.seterr(all="raise")  # fail loudly on numeric issues in the example
    main()
