"""Hashtag analytics: learned cardinality estimation over a tweet stream.

The paper's motivating scenario (§1): analysts gather statistics over
hashtag query logs.  This example builds a Tweets-like collection, trains
LSM/CLSM estimators (with and without the hybrid auxiliary), and compares
them against the exact all-subsets HashMap on accuracy, memory, and speed.
It closes with the serving path analysts would actually hit: string
hashtags decoded leniently (unseen tags are a defined miss, not a
``KeyError``) and answered through the guarded reliability facade.

Run:  python examples/hashtag_analytics.py [num_tweets]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.baselines import SubsetHashMap
from repro.bench import mean_query_ms, print_table
from repro.core import (
    LearnedCardinalityEstimator,
    ModelConfig,
    OutlierRemovalConfig,
    TrainConfig,
    mean_q_error,
)
from repro.datasets import generate_tweets_like
from repro.reliability import GuardedCardinalityEstimator
from repro.sets import InvertedIndex, Vocabulary, sample_query_workload


def main(num_tweets: int = 6000) -> None:
    print(f"generating {num_tweets} tweet hashtag sets ...")
    collection = generate_tweets_like(num_tweets, seed=14)
    stats = collection.stats()
    print(
        f"  {stats.num_sets} sets, {stats.num_unique_elements} unique hashtags, "
        f"hottest hashtag in {stats.max_cardinality} tweets"
    )

    truth = InvertedIndex(collection)
    queries = sample_query_workload(
        collection, 400, rng=np.random.default_rng(1), max_subset_size=4
    )
    exact = np.array([truth.cardinality(q) for q in queries])

    training = TrainConfig(epochs=30, batch_size=1024, lr=5e-3, loss="mse", seed=0)
    removal = OutlierRemovalConfig(percentile=90.0, at_epochs=(20,))

    rows = []
    last_estimator = None
    for kind in ("lsm", "clsm"):
        for hybrid in (False, True):
            estimator = LearnedCardinalityEstimator.build(
                collection,
                model_config=ModelConfig(kind=kind, embedding_dim=8, seed=0),
                train_config=training,
                removal=removal if hybrid else None,
                max_subset_size=4,
                max_training_samples=40_000,
            )
            last_estimator = estimator
            estimates = estimator.estimate_many(queries)
            label = kind.upper() + ("-Hybrid" if hybrid else "")
            rows.append(
                [
                    label,
                    mean_q_error(estimates, exact),
                    estimator.total_bytes() / 1e6,
                    mean_query_ms(estimator.estimate, queries[:200]),
                ]
            )

    hashmap = SubsetHashMap(collection, max_subset_size=4)
    rows.append(
        [
            "HashMap (exact)",
            1.0,
            hashmap.size_bytes() / 1e6,
            mean_query_ms(hashmap.cardinality, queries[:200]),
        ]
    )

    print_table(
        ["estimator", "mean q-error", "memory (MB)", "ms/query"],
        rows,
        title="hashtag cardinality estimation",
    )
    print(
        "\nTakeaway (paper §8.2): learned estimators are orders of magnitude "
        "smaller than the exact HashMap; the hybrid variants sharpen accuracy "
        "for a small memory overhead."
    )

    # -- robust serving: string queries through the reliability layer --------
    # Analysts type hashtags, not element ids.  Intern one tag name per id
    # (ids are assigned sequentially, so they line up with the collection),
    # decode queries leniently, and serve through the guarded facade.
    vocab = Vocabulary()
    for element_id in range(collection.max_element_id() + 1):
        vocab.add(f"#tag{element_id}")
    guarded = GuardedCardinalityEstimator.for_collection(last_estimator, collection)

    print("\nrobust string-query serving (guarded CLSM-Hybrid):")
    tag_queries = [
        ["#tag3", "#tag7"],
        ["#tag1", "#notatag"],   # unseen hashtag: defined miss
        ["#tag2", "#tag2"],      # duplicates collapse
        [],                      # empty query: matches every tweet
    ]
    for tokens in tag_queries:
        ids, unknown = vocab.encode_lenient(tokens)
        if unknown:
            answer, note = 0.0, f"miss (unseen: {', '.join(unknown)})"
        else:
            answer = guarded.estimate(ids)
            note = "guarded estimate"
        print(f"  {str(tokens):32s} -> {answer:8.1f}  [{note}]")
    print(f"  {guarded.health.report_line()}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6000)
