"""COUNT queries in the mini relational engine: the Table 12 scenario.

Imports a server-log collection into an hstore-style table and answers
``SELECT COUNT(*) WHERE set @> query`` three ways — sequential scan, GIN
(inverted) index, and a CLSM cardinality-estimator UDF — reporting latency,
memory, and build cost for each regime.

Run:  python examples/engine_count_queries.py [num_sets]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.bench import Timer, mean_query_ms, print_table
from repro.core import (
    LearnedCardinalityEstimator,
    ModelConfig,
    OutlierRemovalConfig,
    TrainConfig,
)
from repro.datasets import generate_rw_like
from repro.engine import SetQueryEngine, SetTable
from repro.sets import sample_query_workload


def main(num_sets: int = 5000) -> None:
    print(f"importing {num_sets} sets into the engine ...")
    collection = generate_rw_like(num_sets, seed=31)
    engine = SetQueryEngine(SetTable.from_collection(collection))
    queries = sample_query_workload(
        collection, 200, rng=np.random.default_rng(5), max_subset_size=3
    )

    # Regime 1: no index.
    seqscan_ms = mean_query_ms(
        lambda q: engine.count(q, plan="seqscan"), queries[:25]
    )

    # Regime 2: GIN index.
    with Timer() as gin_timer:
        gin = engine.create_gin_index()
    gin_ms = mean_query_ms(lambda q: engine.count(q, plan="gin"), queries)

    # Regime 3: learned estimator as a UDF.
    print("training the CLSM estimator UDF ...")
    with Timer() as train_timer:
        estimator = LearnedCardinalityEstimator.build(
            collection,
            model_config=ModelConfig(kind="clsm", embedding_dim=8, seed=0),
            train_config=TrainConfig(
                epochs=25, batch_size=1024, lr=5e-3, loss="mse", seed=0
            ),
            removal=OutlierRemovalConfig(percentile=90.0, at_epochs=(17,)),
            max_subset_size=3,
            max_training_samples=30_000,
        )
    engine.register_udf("clsm", estimator.estimate)
    udf_ms = mean_query_ms(lambda q: engine.count(q, plan="udf:clsm"), queries)

    print_table(
        ["metric", "w/o index", "w/ GIN index", "CLSM UDF"],
        [
            ["avg exec time (ms)", seqscan_ms, gin_ms, udf_ms],
            ["memory (MB)", "-", gin.size_bytes() / 1e6,
             estimator.total_bytes() / 1e6],
            ["build time (s)", "-", gin_timer.seconds, train_timer.seconds],
        ],
        title="COUNT queries, three regimes (paper Table 12)",
    )

    # Show one EXPLAIN-style decision.
    print(f"\nplanner default: {engine.explain()!r} (GIN exists)")
    sample = queries[0]
    exact = engine.count(sample, plan="gin")
    approx = engine.count(sample, plan="udf:clsm")
    print(
        f"query {sample}: exact={exact.count:.0f}, estimate={approx.count:.1f} "
        f"(plan {approx.plan}, exact={approx.is_exact})"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5000)
