"""Malicious-combination filtering with a learned set Bloom filter.

The paper's §7.1.2 use case: a stream of token sets must be filtered
against a corpus of known-benign combinations; negative training data (the
malicious combinations) is available up front.  The learned filter is
compared with a traditional Bloom filter on accuracy, memory, and the
no-false-negative guarantee.

Run:  python examples/membership_filter.py [num_sets]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.baselines import BloomFilter
from repro.bench import mean_query_ms, print_table
from repro.core import LearnedBloomFilter, ModelConfig, TrainConfig, binary_accuracy
from repro.datasets import generate_rw_like
from repro.sets import (
    InvertedIndex,
    enumerate_subsets,
    negative_membership_samples,
    positive_membership_samples,
)


def main(num_sets: int = 3000) -> None:
    print(f"generating {num_sets} benign token sets ...")
    collection = generate_rw_like(num_sets, seed=21)
    truth = InvertedIndex(collection)

    positives = positive_membership_samples(collection, max_subset_size=3)
    negatives = negative_membership_samples(
        collection, truth, num_samples=len(positives) // 2,
        max_subset_size=3, rng=np.random.default_rng(3),
    )
    print(f"  {len(positives)} benign subsets, {len(negatives)} malicious samples")

    # The sampler returns negatives sorted; shuffle before splitting so the
    # held-out half has the same element distribution as the trained half.
    shuffled = list(negatives)
    np.random.default_rng(4).shuffle(shuffled)
    split = len(shuffled) // 2
    train_negatives, test_negatives = shuffled[:split], shuffled[split:]

    print("training the learned filter (CLSM classifier + backup filter) ...")
    learned = LearnedBloomFilter.from_training_data(
        positives,
        train_negatives,
        max_element_id=collection.max_element_id(),
        model_config=ModelConfig(
            kind="clsm", embedding_dim=4, phi_hidden=(32,), rho_hidden=(16,), seed=2
        ),
        train_config=TrainConfig(epochs=40, batch_size=1024, lr=5e-3, loss="bce", seed=2),
    )

    # Traditional filter indexes every (bounded) subset of every set.
    traditional = BloomFilter(capacity=len(positives), fp_rate=0.01)
    for stored in collection:
        for subset in enumerate_subsets(stored, max_size=3):
            traditional.add_set(subset)

    # No false negatives, by construction, for both.
    assert all(learned.contains(p) for p in positives)
    assert all(traditional.contains_set(p) for p in positives)
    print("  zero false negatives confirmed for both filters")

    test_queries = list(positives[: len(test_negatives)]) + list(test_negatives)
    labels = np.concatenate(
        [np.ones(len(test_negatives)), np.zeros(len(test_negatives))]
    )
    learned_answers = learned.contains_many(test_queries).astype(float)
    traditional_answers = np.array(
        [traditional.contains_set(q) for q in test_queries], dtype=float
    )

    print_table(
        ["filter", "train acc", "held-out acc", "memory (KB)", "ms/query"],
        [
            [
                "learned (CLSM + backup)",
                learned.report.train_accuracy,
                binary_accuracy(learned_answers, labels),
                learned.total_bytes() / 1e3,
                mean_query_ms(learned.contains, test_queries[:200]),
            ],
            [
                "Bloom filter (fp=0.01)",
                1.0,
                binary_accuracy(traditional_answers, labels),
                traditional.size_bytes() / 1e3,
                mean_query_ms(traditional.contains_set, test_queries[:200]),
            ],
        ],
        title="membership filtering (train acc = Table 9's protocol)",
    )
    print(
        "\nTakeaway (paper §8.4): the compressed learned filter approaches the "
        "traditional filter's accuracy at a fraction of the memory; the backup "
        "filter guarantees no false negatives on indexed subsets.  Held-out "
        "accuracy depends on how adversarial the unseen negatives are — the "
        "paper makes the same caveat (the false-positive rate cannot be "
        "bounded without the complete negative universe)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3000)
