"""Contiguous shard plans over a :class:`SetCollection`.

Sharding splits the collection ``S = [X_1, ..., X_N]`` into K contiguous
slices so each shard can train its own (much smaller) learned structures in
parallel.  Contiguity is load-bearing: the set index answers *first
position containing the query*, and only contiguous shards let the router
resolve that globally — scan shards in plan order, and the first shard that
reports a hit holds the global first position (every earlier position lives
in an earlier shard).  Each shard records its global ``offset`` so local
positions translate back with one addition.

The same move mirrors the staging in Kraska et al.'s learned-index RMI and
ACE's workload partitioning: many small models over ranges instead of one
monolith over everything.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..sets.collection import SetCollection

__all__ = ["Shard", "ShardPlan"]


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the parent collection.

    ``collection[i]`` of this shard is the parent's ``collection[offset + i]``.
    """

    shard_id: int
    offset: int
    collection: SetCollection

    def __len__(self) -> int:
        return len(self.collection)

    @property
    def end(self) -> int:
        """One past the last global position this shard covers."""
        return self.offset + len(self.collection)

    def to_global(self, local_position: int) -> int:
        """Translate a shard-local position to a global one."""
        if not 0 <= local_position < len(self.collection):
            raise IndexError(
                f"local position {local_position} outside shard of "
                f"length {len(self.collection)}"
            )
        return self.offset + local_position

    def max_element_id(self) -> int:
        """Largest element id stored in this shard (its trained universe)."""
        return self.collection.max_element_id()


class ShardPlan:
    """A partition of one collection into contiguous, balanced shards.

    Build with :meth:`contiguous`; iterate to get :class:`Shard` objects in
    global position order.  The plan keeps a reference to the parent
    collection so routers can expose it (and guarded facades can derive
    their exact fallback from it).
    """

    def __init__(self, collection: SetCollection, shards: Sequence[Shard]):
        if not shards:
            raise ValueError("a shard plan needs at least one shard")
        expected = 0
        for shard_id, shard in enumerate(shards):
            if shard.shard_id != shard_id:
                raise ValueError("shards must be numbered 0..K-1 in order")
            if shard.offset != expected:
                raise ValueError(
                    f"shard {shard_id} starts at {shard.offset}, "
                    f"expected {expected}: shards must tile the collection"
                )
            if len(shard) == 0:
                raise ValueError("shards must be non-empty")
            expected = shard.end
        if expected != len(collection):
            raise ValueError(
                f"shards cover {expected} sets but the collection holds "
                f"{len(collection)}"
            )
        self.collection = collection
        self._shards = tuple(shards)
        self._offsets = tuple(shard.offset for shard in self._shards)

    @classmethod
    def contiguous(cls, collection: SetCollection, num_shards: int) -> "ShardPlan":
        """Split ``collection`` into ``num_shards`` balanced contiguous shards.

        ``num_shards`` is clamped to ``len(collection)`` (a shard cannot be
        empty), so asking for more shards than sets degrades gracefully to
        one set per shard.  Sizes differ by at most one: the first
        ``N mod K`` shards take the extra set.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if len(collection) == 0:
            raise ValueError("cannot shard an empty collection")
        k = min(num_shards, len(collection))
        base, extra = divmod(len(collection), k)
        shards: list[Shard] = []
        offset = 0
        sets = collection.sets()
        for shard_id in range(k):
            length = base + (1 if shard_id < extra else 0)
            sub = SetCollection(sets[offset : offset + length], vocab=collection.vocab)
            shards.append(Shard(shard_id=shard_id, offset=offset, collection=sub))
            offset += length
        return cls(collection, shards)

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._shards)

    def __iter__(self) -> Iterator[Shard]:
        return iter(self._shards)

    def __getitem__(self, shard_id: int) -> Shard:
        return self._shards[shard_id]

    @property
    def num_sets(self) -> int:
        """Total sets across all shards (== the parent collection size)."""
        return len(self.collection)

    def shard_of_position(self, position: int) -> Shard:
        """The shard holding global ``position`` (O(log K) bisect).

        Shards tile the collection in offset order, so the owning shard is
        the last one whose offset is <= ``position``.
        """
        if not 0 <= position < self.num_sets:
            raise IndexError(f"position {position} outside collection")
        return self._shards[bisect_right(self._offsets, position) - 1]

    def offsets(self) -> tuple[int, ...]:
        """Global start position of each shard, in shard order."""
        return self._offsets
