"""Sharded scale-out layer: partitioned training + scatter-gather serving.

The ROADMAP's production-scale step: partition a :class:`SetCollection`
into K contiguous shards (:mod:`repro.shard.plan`), train each shard's
learned structures in parallel processes (:mod:`repro.shard.builder`), and
route queries through scatter-gather combinators that preserve the
unsharded semantics exactly (:mod:`repro.shard.routers`) — sum for
cardinality, offset-corrected first hit for the index, OR for membership.
The routers speak the same single-query and ``*_many`` batch APIs as the
unsharded structures, so the serving, reliability, and engine layers work
over them unchanged.
"""

from .builder import ShardBuildError, ShardedBuilder, TASKS
from .plan import Shard, ShardPlan
from .routers import (
    ShardedBloomFilter,
    ShardedCardinalityEstimator,
    ShardedSetIndex,
)

__all__ = [
    "Shard",
    "ShardPlan",
    "ShardedBuilder",
    "ShardBuildError",
    "ShardedCardinalityEstimator",
    "ShardedSetIndex",
    "ShardedBloomFilter",
    "TASKS",
]
