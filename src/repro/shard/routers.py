"""Scatter-gather query routers over per-shard learned structures.

Each router holds one trained structure per shard (raw or guarded) and
recombines per-shard answers into the global answer the unsharded
structure would give:

* :class:`ShardedCardinalityEstimator` — cardinalities are counts over
  disjoint slices, so the global estimate is the **sum** of per-shard
  estimates;
* :class:`ShardedSetIndex` — shards are contiguous and scanned in plan
  order, so the **first shard that finds the query** holds the global
  first position (local position + shard offset); later shards are
  skipped (early exit);
* :class:`ShardedBloomFilter` — a subset is stored iff some shard stores
  it, so membership is the **OR** across shards; each shard's backup
  filter preserves its own no-false-negative guarantee, and OR preserves
  the global one.

All three expose the same ``*_many`` batch entry points as the unsharded
structures, so :class:`repro.serve.SetServer`, the guarded facades, and
the query engine serve sharded structures unchanged.

Shard skipping: each shard's trained universe ends at that shard's largest
element id.  A query containing a larger id cannot be a subset of any set
in that shard, so the router answers the shard's contribution exactly
(0 / not-found / absent) without touching its model — this both saves the
forward pass and keeps per-shard models from seeing ids outside their
embedding range.

Post-training updates target *global* answers that are not decomposable
onto one shard, so the routers keep their own override layers (mirroring
the unsharded structures' auxiliary maps): an exact auxiliary map for
cardinality and index updates, and a lazy insert Bloom filter for
membership inserts.  All updates fire the :class:`UpdateNotifier` hooks so
serving caches invalidate exactly as they do for unsharded structures.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Sequence

import numpy as np

from ..baselines.bloom import BloomFilter
from ..core.hooks import UpdateNotifier
from ..obs.trace import get_tracer
from ..sets.predicates import SUBSET, Predicate, as_predicate
from .plan import ShardPlan

__all__ = [
    "ShardedCardinalityEstimator",
    "ShardedSetIndex",
    "ShardedBloomFilter",
]


def _canonical(query: Iterable[int]) -> tuple[int, ...]:
    return tuple(sorted(set(query)))


def _part_ceiling(part: Any) -> int | None:
    """Largest element id a shard structure can answer for (None: unknown)."""
    probe = getattr(part, "max_known_id", None)
    if callable(probe):
        try:
            ceiling = probe()
        except Exception:
            return None
        return int(ceiling) if ceiling is not None else None
    return None


class _ShardedBase(UpdateNotifier):
    """Plan/parts bookkeeping shared by the three routers."""

    def __init__(self, plan: ShardPlan, parts: Sequence[Any]):
        if len(parts) != len(plan):
            raise ValueError(
                f"got {len(parts)} per-shard structures for a "
                f"{len(plan)}-shard plan"
            )
        self.plan = plan
        self.parts = list(parts)
        # Shard-skip ceilings: prefer what the structure reports (its model
        # embedding range), fall back to the shard's own data.
        self._ceilings = [
            ceiling if ceiling is not None else shard.max_element_id()
            for ceiling, shard in zip(map(_part_ceiling, parts), plan)
        ]
        self._fanout_lock = threading.Lock()
        self._fanout_queries = 0
        self._fanout_shard_calls = 0

    def __getstate__(self):
        state = super().__getstate__()
        state.pop("_fanout_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._fanout_lock = threading.Lock()

    def _record_fanout(self, queries: int, shard_calls: int) -> None:
        """Account one scatter-gather: ``queries`` routed, shards touched."""
        with self._fanout_lock:
            self._fanout_queries += queries
            self._fanout_shard_calls += shard_calls

    def fanout_stats(self) -> dict:
        """Scatter-gather telemetry (scraped into the server's registry)."""
        with self._fanout_lock:
            return {
                "num_shards": len(self.parts),
                "queries": self._fanout_queries,
                "shard_calls": self._fanout_shard_calls,
            }

    @property
    def num_shards(self) -> int:
        return len(self.parts)

    def with_parts(self, replacements: dict[int, Any]) -> "_ShardedBase":
        """A new router of the same type with some parts replaced.

        ``replacements`` maps shard ids to freshly trained per-shard
        structures; every other part is the *same object* as in this
        router.  Router-level mutation layers carry over: the auxiliary
        override map is copied (the straggler replay after a hot swap
        covers writes that race the copy) and the membership insert filter
        is shared (inserts are monotone, so both generations seeing them
        is safe).  This is the copy-and-swap half of targeted refresh —
        readers holding the old router never observe a torn parts list,
        and untouched parts stay byte-identical.
        """
        parts = list(self.parts)
        for shard_id, part in replacements.items():
            if not 0 <= shard_id < len(parts):
                raise IndexError(
                    f"shard id {shard_id} outside the {len(parts)}-shard plan"
                )
            parts[shard_id] = part
        clone = type(self)(self.plan, parts)
        auxiliary = getattr(self, "auxiliary", None)
        if auxiliary is not None:
            clone.auxiliary = dict(auxiliary)
        inserted = getattr(self, "_inserted", None)
        if inserted is not None:
            clone._inserted = inserted
        return clone

    @property
    def collection(self):
        """The parent collection the plan partitions."""
        return self.plan.collection

    def max_known_id(self) -> int:
        """Largest element id any shard can answer for (the global universe)."""
        return max(self._ceilings)

    def _shard_can_match(
        self,
        shard_id: int,
        canonical: tuple[int, ...],
        predicate: Predicate = SUBSET,
    ) -> bool:
        """False only when the query *provably* misses the shard.

        ``subset``: a query element larger than every element in the shard
        cannot be contained by any of its sets.  The other predicates only
        need a non-empty intersection (superset of a non-empty ``s``,
        overlap ``>= 1``, Jaccard ``> 0``), which is impossible exactly
        when even the *smallest* query element exceeds the shard ceiling.
        """
        if not canonical:
            return True
        if predicate.kind == "subset":
            return canonical[-1] <= self._ceilings[shard_id]
        return canonical[0] <= self._ceilings[shard_id]


class ShardedCardinalityEstimator(_ShardedBase):
    """Sum of per-shard cardinality estimates (disjoint slices add up).

    Per-shard estimators floor their estimates at 1 (the unsharded
    convention), so shards that cannot be skipped contribute at least 1
    each; shards skipped by the element-id ceiling contribute an exact 0.
    The empty query is answered exactly (every stored set contains it).
    """

    def __init__(self, plan: ShardPlan, parts: Sequence[Any]):
        super().__init__(plan, parts)
        self.auxiliary: dict[tuple[int, ...], int] = {}

    @property
    def supports_predicates(self) -> bool:
        """Non-subset predicates need every shard structure to route them."""
        return all(
            getattr(part, "supports_predicates", False) for part in self.parts
        )

    def estimate(self, query: Iterable[int], predicate=None) -> float:
        return float(self.estimate_many([query], predicate=predicate)[0])

    def estimate_many(
        self, queries: Sequence[Iterable[int]], predicate=None
    ) -> np.ndarray:
        """Vectorized estimates: one batched fan-out per shard.

        Queries are canonicalized and de-duplicated once at the router, so
        a batch of repeats costs each shard a single forward row (the
        shard's own dedupe then sees already-unique queries).  All four
        predicates are per-set tests, so counts stay additive over the
        plan's disjoint shards; only the skip rule changes
        (:meth:`_ShardedBase._shard_can_match`).
        """
        predicate = as_predicate(predicate)
        if predicate.kind != "subset" and not self.supports_predicates:
            raise ValueError(
                f"per-shard structures do not support predicate "
                f"{predicate.spec!r}; shard a PredicateCardinalitySuite"
            )
        canonicals = [_canonical(q) for q in queries]
        out = np.empty(len(canonicals), dtype=np.float64)
        unique_sets: list[tuple[int, ...]] = []
        unique_slot: dict[tuple[int, ...], int] = {}
        model_rows: list[int] = []
        model_slots: list[int] = []
        for row, canonical in enumerate(canonicals):
            if predicate.kind == "subset":
                # Router-level overrides are recorded subset counts.
                exact = self.auxiliary.get(canonical)
                if exact is not None:
                    out[row] = float(exact)
                    continue
            if not canonical:
                out[row] = float(predicate.empty_query_count(self.plan.num_sets))
                continue
            slot = unique_slot.get(canonical)
            if slot is None:
                slot = unique_slot[canonical] = len(unique_sets)
                unique_sets.append(canonical)
            model_rows.append(row)
            model_slots.append(slot)
        if unique_sets:
            totals = np.zeros(len(unique_sets), dtype=np.float64)
            with get_tracer().span(
                "shard_fanout", kind="cardinality",
                shards=len(self.parts), queries=len(unique_sets),
            ) as span:
                shard_calls = 0
                for shard_id, part in enumerate(self.parts):
                    rows = [
                        slot
                        for slot, canonical in enumerate(unique_sets)
                        if self._shard_can_match(shard_id, canonical, predicate)
                    ]
                    if not rows:
                        continue
                    shard_queries = [unique_sets[slot] for slot in rows]
                    if predicate.kind != "subset":
                        # Elements above the shard ceiling never occur in
                        # the shard, so they cannot change any intersection
                        # there; dropping them keeps the member model inside
                        # its per-shard embedding universe.  The skip rule
                        # guarantees at least one element survives.
                        ceiling = self._ceilings[shard_id]
                        shard_queries = [
                            tuple(e for e in q if e <= ceiling)
                            for q in shard_queries
                        ]
                    if predicate.kind == "subset" and not getattr(
                        part, "supports_predicates", False
                    ):
                        raw = part.estimate_many(shard_queries)
                    else:
                        raw = part.estimate_many(shard_queries, predicate=predicate)
                    totals[rows] += np.asarray(raw, dtype=np.float64)
                    shard_calls += 1
                span["attrs"]["shard_calls"] = shard_calls
            self._record_fanout(len(unique_sets), shard_calls)
            out[model_rows] = totals[model_slots]
        return out

    def estimate_many_keyed(
        self, items: Sequence[tuple[str, Iterable[int]]]
    ) -> np.ndarray:
        """Mixed ``(predicate_spec, query)`` batch: one fan-out per predicate."""
        out = np.empty(len(items), dtype=np.float64)
        groups: dict[str, tuple[list[int], list]] = {}
        for row, (spec, query) in enumerate(items):
            spec = as_predicate(spec).spec
            rows, group_queries = groups.setdefault(spec, ([], []))
            rows.append(row)
            group_queries.append(query)
        for spec, (rows, group_queries) in groups.items():
            out[rows] = self.estimate_many(group_queries, predicate=spec)
        return out

    def record_update(self, subset: Iterable[int], cardinality: int) -> None:
        """Record a post-training global cardinality for ``subset``.

        Global counts are not decomposable onto shards, so the override
        lives at the router (consulted before any fan-out), exactly like
        the unsharded estimator's auxiliary map.
        """
        if cardinality < 0:
            raise ValueError("cardinality cannot be negative")
        canonical = _canonical(subset)
        self.auxiliary[canonical] = int(cardinality)
        self._notify_update(canonical)


class ShardedSetIndex(_ShardedBase):
    """Global first position: first shard (in plan order) with a hit.

    Shards are contiguous, so positions in shard ``i`` all precede
    positions in shard ``i+1``; scanning shards in order with early exit
    therefore yields the *exact* global first position — provided each
    shard answers exhaustively within itself, which is why per-shard
    lookups always run with their fallback scan enabled regardless of the
    router-level ``fallback_scan`` flag (a shard-local window miss must
    not leak a later shard's position as the global minimum).
    """

    def __init__(self, plan: ShardPlan, parts: Sequence[Any]):
        super().__init__(plan, parts)
        self.auxiliary: dict[tuple[int, ...], int] = {}

    def lookup(self, query: Iterable[int], fallback_scan: bool = True) -> int | None:
        return self.lookup_many([query], fallback_scan)[0]

    def lookup_many(
        self, queries: Sequence[Iterable[int]], fallback_scan: bool = True
    ) -> list[int | None]:
        """Vectorized lookups: per-shard batched fan-out with early exit.

        ``fallback_scan`` is accepted for signature compatibility with the
        unsharded index; per-shard searches are always exhaustive (see the
        class docstring), so it does not change answers.
        """
        canonicals = [_canonical(q) for q in queries]
        results: list[int | None] = [None] * len(canonicals)
        pending: dict[tuple[int, ...], list[int]] = {}
        for row, canonical in enumerate(canonicals):
            exact = self.auxiliary.get(canonical)
            if exact is not None:
                results[row] = exact
                continue
            if not canonical:
                # The empty set is contained in every set: first position 0.
                results[row] = 0 if self.plan.num_sets else None
                continue
            pending.setdefault(canonical, []).append(row)
        routed = len(pending)
        with get_tracer().span(
            "shard_fanout", kind="index",
            shards=len(self.parts), queries=routed,
        ) as span:
            shard_calls = 0
            for shard_id, part in enumerate(self.parts):
                if not pending:
                    break
                shard_queries = [
                    canonical
                    for canonical in pending
                    if self._shard_can_match(shard_id, canonical)
                ]
                if not shard_queries:
                    continue
                found = part.lookup_many(shard_queries)
                shard_calls += 1
                offset = self.plan[shard_id].offset
                for canonical, local in zip(shard_queries, found):
                    if local is None:
                        continue
                    for row in pending.pop(canonical):
                        results[row] = int(local) + offset
            span["attrs"]["shard_calls"] = shard_calls
        self._record_fanout(routed, shard_calls)
        return results

    def insert_update(self, subset: Iterable[int], new_position: int) -> None:
        """Record a post-training global position for ``subset``.

        Stored at the router (consulted before the fan-out): a global
        position belongs to no single shard's local coordinate space.
        """
        canonical = _canonical(subset)
        self.auxiliary[canonical] = int(new_position)
        self._notify_update(canonical)

    @property
    def stats(self):
        """Aggregate per-shard lookup telemetry (sum of part counters)."""
        from ..core.index import LookupStats

        total = LookupStats()
        for part in self.parts:
            part_stats = getattr(part, "stats", None)
            inner = getattr(part, "index", None)
            if part_stats is None and inner is not None:
                part_stats = getattr(inner, "stats", None)
            if part_stats is None:
                continue
            total.lookups += part_stats.lookups
            total.auxiliary_hits += part_stats.auxiliary_hits
            total.sets_scanned += part_stats.sets_scanned
            total.not_found += part_stats.not_found
        return total


class _BackupUnion:
    """Read-only OR-view over the shards' backup filters (+ router inserts).

    Quacks like :class:`BloomFilter` for the one method consumers use
    (``contains_set``), so guarded facades and the serving layer treat a
    sharded membership structure exactly like an unsharded one.
    """

    def __init__(self, filters: Sequence[Any]):
        self._filters = list(filters)

    def contains_set(self, elements) -> bool:
        return any(f.contains_set(elements) for f in self._filters)

    def size_bytes(self) -> int:
        return sum(f.size_bytes() for f in self._filters)


class ShardedBloomFilter(_ShardedBase):
    """OR across per-shard membership answers.

    A subset is stored in the collection iff it is stored in some shard,
    and each per-shard filter admits no false negatives over its shard's
    indexed universe — so the OR admits no false negatives globally.
    False positives remain one-sided, as for any Bloom filter.
    """

    def __init__(self, plan: ShardPlan, parts: Sequence[Any]):
        super().__init__(plan, parts)
        self._inserted: BloomFilter | None = None

    def contains(self, query: Iterable[int]) -> bool:
        return bool(self.contains_many([query])[0])

    def __contains__(self, query: Iterable[int]) -> bool:
        return self.contains(query)

    def contains_many(self, queries: Sequence[Iterable[int]]) -> np.ndarray:
        """Vectorized membership: per-shard batched fan-out, early exit on hit."""
        canonicals = [_canonical(q) for q in queries]
        answers = np.zeros(len(canonicals), dtype=bool)
        pending: dict[tuple[int, ...], list[int]] = {}
        for row, canonical in enumerate(canonicals):
            if not canonical:
                # Vacuous truth: the empty set is in every stored set.
                answers[row] = self.plan.num_sets > 0
                continue
            if self._inserted is not None and self._inserted.contains_set(
                set(canonical)
            ):
                answers[row] = True
                continue
            pending.setdefault(canonical, []).append(row)
        routed = len(pending)
        with get_tracer().span(
            "shard_fanout", kind="bloom",
            shards=len(self.parts), queries=routed,
        ) as span:
            shard_calls = 0
            for shard_id, part in enumerate(self.parts):
                if not pending:
                    break
                shard_queries = [
                    canonical
                    for canonical in pending
                    if self._shard_can_match(shard_id, canonical)
                ]
                if not shard_queries:
                    continue
                found = part.contains_many(shard_queries)
                shard_calls += 1
                for canonical, hit in zip(shard_queries, found):
                    if not hit:
                        continue
                    for row in pending.pop(canonical):
                        answers[row] = True
            span["attrs"]["shard_calls"] = shard_calls
        self._record_fanout(routed, shard_calls)
        return answers

    def insert(self, subset: Iterable[int], expected_inserts: int = 1024) -> None:
        """Index a new subset without retraining any shard.

        Inserts land in a router-level Bloom filter (created lazily), the
        same degradation path the unsharded filter uses — the no-false-
        negative guarantee extends to inserted subsets immediately.
        """
        if self._inserted is None:
            self._inserted = BloomFilter(capacity=expected_inserts, fp_rate=0.01)
        self._inserted.add_set(set(subset))
        self._notify_update(_canonical(subset))

    @property
    def backup(self):
        """Union view over shard backups and router inserts (or ``None``).

        Mirrors ``LearnedBloomFilter.backup`` so guarded facades and the
        serving layer's shed path consult post-training inserts through
        the same attribute.
        """
        filters = []
        for part in self.parts:
            inner = getattr(part, "filter", part)
            part_backup = getattr(inner, "backup", None)
            if part_backup is not None:
                filters.append(part_backup)
        if self._inserted is not None:
            filters.append(self._inserted)
        return _BackupUnion(filters) if filters else None
