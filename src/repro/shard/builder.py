"""Parallel per-shard training of the learned structures.

One process per shard (bounded by ``workers``): shard training is
CPU-bound numpy with no shared state, so a process pool scales build time
with cores while keeping each shard's failure isolated.  Workers never
raise across the pool boundary — each returns ``(shard_id, structure,
error)`` and the parent collects *all* per-shard failures into one
:class:`ShardBuildError` instead of hanging on, or hiding behind, the
first crash.  A worker process that dies outright (OOM-kill, segfault)
surfaces as a ``BrokenProcessPool`` from the executor, again attributed to
its shard.

Determinism: shard ``i`` trains with seed ``base_seed + i`` (model init,
training shuffle, and sample enumeration all derive from it), so a build
is reproducible bit-for-bit regardless of ``workers`` — the pool only
changes *when* shards train, never *what* they train on.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Any, Sequence

import numpy as np

from ..core.cardinality import LearnedCardinalityEstimator
from ..core.config import ModelConfig
from ..core.hybrid import OutlierRemovalConfig
from ..core.index import LearnedSetIndex
from ..core.membership import LearnedBloomFilter
from ..core.predicate_suite import PredicateCardinalitySuite
from ..core.training import TrainConfig
from ..sets.predicates import DEFAULT_PREDICATES
from .plan import Shard, ShardPlan
from .routers import (
    ShardedBloomFilter,
    ShardedCardinalityEstimator,
    ShardedSetIndex,
)

__all__ = ["ShardedBuilder", "ShardBuildError", "TASKS"]

TASKS = ("cardinality", "index", "bloom")


class ShardBuildError(RuntimeError):
    """One or more shards failed to train; lists every failure."""

    def __init__(self, failures: Sequence[tuple[int, str]]):
        self.failures = list(failures)
        details = "; ".join(f"shard {sid}: {msg}" for sid, msg in self.failures)
        super().__init__(f"{len(self.failures)} shard build(s) failed: {details}")


def _seeded(config, seed: int):
    return replace(config, seed=seed)


def _dispatch_build(
    task: str,
    shard: Shard,
    model_config: ModelConfig,
    train_config: TrainConfig,
    options: dict[str, Any],
):
    """Train one shard's structure (runs inside the worker process)."""
    rng = np.random.default_rng(train_config.seed)
    if task == "cardinality":
        return LearnedCardinalityEstimator.build(
            shard.collection,
            model_config=model_config,
            train_config=train_config,
            removal=options.get("removal"),
            max_subset_size=options.get("max_subset_size", 4),
            max_training_samples=options.get("max_training_samples"),
            rng=rng,
        )
    if task == "index":
        return LearnedSetIndex.build(
            shard.collection,
            model_config=model_config,
            train_config=train_config,
            removal=options.get("removal"),
            max_subset_size=options.get("max_subset_size", 4),
            max_training_samples=options.get("max_training_samples"),
            error_range_length=options.get("error_range_length", 100),
            rng=rng,
        )
    if task == "bloom":
        return LearnedBloomFilter.build(
            shard.collection,
            model_config=model_config,
            train_config=train_config,
            max_subset_size=options.get("max_subset_size", 4),
            max_positive_samples=options.get("max_training_samples"),
            num_negative_samples=options.get("num_negative_samples"),
            threshold=options.get("threshold", 0.5),
            rng=rng,
        )
    if task == "predicate":
        return PredicateCardinalitySuite.build(
            shard.collection,
            predicates=options.get("predicates") or DEFAULT_PREDICATES,
            model_config=model_config,
            train_config=train_config,
            removal=options.get("removal"),
            num_samples=options.get("max_training_samples") or 512,
            max_subset_size=options.get("max_subset_size", 4),
            rng=rng,
        )
    raise ValueError(f"unknown task {task!r}; expected one of {TASKS}")


def _train_shard(job) -> tuple[int, Any, str | None]:
    """Pool entry point: never raises, always reports its shard id."""
    task, shard, model_config, train_config, options = job
    try:
        structure = _dispatch_build(task, shard, model_config, train_config, options)
        return shard.shard_id, structure, None
    except Exception as exc:
        return shard.shard_id, None, f"{type(exc).__name__}: {exc}"


class ShardedBuilder:
    """Trains all shards of a plan and assembles the scatter-gather routers.

    Parameters
    ----------
    plan:
        The :class:`ShardPlan` to train over.
    workers:
        Process-pool size; ``1`` trains inline in this process (same code
        path and seeds, so results are identical — only wall-clock
        changes).  Capped at the number of shards.
    base_seed:
        Shard ``i`` trains with seed ``base_seed + i``.
    guarded:
        Wrap every per-shard structure in its reliability facade (exact
        fallback over that shard's collection, per-shard health counters)
        before handing it to the router.
    model_config / train_config:
        Templates; their ``seed`` fields are overridden per shard.
    max_subset_size / max_training_samples / removal / ...:
        Forwarded to the per-task ``build`` classmethods.
    """

    def __init__(
        self,
        plan: ShardPlan,
        *,
        workers: int = 1,
        base_seed: int = 0,
        guarded: bool = False,
        model_config: ModelConfig | None = None,
        train_config: TrainConfig | None = None,
        removal: OutlierRemovalConfig | None = None,
        max_subset_size: int | None = 4,
        max_training_samples: int | None = None,
        num_negative_samples: int | None = None,
        error_range_length: int = 100,
        bloom_threshold: float = 0.5,
        predicates: Sequence = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.plan = plan
        self.workers = workers
        self.base_seed = base_seed
        self.guarded = guarded
        self.model_config = model_config or ModelConfig()
        self.train_config = train_config or TrainConfig()
        self._options = {
            "removal": removal,
            "max_subset_size": max_subset_size,
            "max_training_samples": max_training_samples,
            "num_negative_samples": num_negative_samples,
            "error_range_length": error_range_length,
            "threshold": bloom_threshold,
            "predicates": tuple(predicates) if predicates is not None else None,
        }

    # -- training --------------------------------------------------------------

    def _jobs(self, task: str):
        loss = "bce" if task == "bloom" else "mse"
        for shard in self.plan:
            seed = self.base_seed + shard.shard_id
            yield (
                task,
                shard,
                _seeded(self.model_config, seed),
                replace(self.train_config, seed=seed, loss=loss),
                self._options,
            )

    def _train_parts(self, task: str) -> list[Any]:
        jobs = list(self._jobs(task))
        if self.workers == 1 or len(jobs) == 1:
            outcomes = [_train_shard(job) for job in jobs]
        else:
            max_workers = min(self.workers, len(jobs))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                try:
                    outcomes = list(pool.map(_train_shard, jobs))
                except Exception as exc:  # a worker died outright
                    raise ShardBuildError(
                        [(-1, f"worker pool failed: {type(exc).__name__}: {exc}")]
                    ) from exc
        failures = [(sid, msg) for sid, _, msg in outcomes if msg is not None]
        if failures:
            raise ShardBuildError(sorted(failures))
        parts: list[Any] = [None] * len(jobs)
        for shard_id, structure, _ in outcomes:
            parts[shard_id] = structure
        if self.guarded:
            parts = [
                self._guard(task, part, shard.collection)
                for part, shard in zip(parts, self.plan)
            ]
        return parts

    @staticmethod
    def _guard(task: str, part: Any, collection):
        from ..reliability import (
            GuardedBloomFilter,
            GuardedCardinalityEstimator,
            GuardedPredicateSuite,
            GuardedSetIndex,
        )

        if task == "cardinality":
            return GuardedCardinalityEstimator.for_collection(part, collection)
        if task == "index":
            return GuardedSetIndex(part)
        if task == "predicate":
            return GuardedPredicateSuite.for_collection(part, collection)
        return GuardedBloomFilter.for_collection(part, collection)

    # -- public API ------------------------------------------------------------

    def build_cardinality(self) -> ShardedCardinalityEstimator:
        return ShardedCardinalityEstimator(self.plan, self._train_parts("cardinality"))

    def build_index(self) -> ShardedSetIndex:
        return ShardedSetIndex(self.plan, self._train_parts("index"))

    def build_bloom(self) -> ShardedBloomFilter:
        return ShardedBloomFilter(self.plan, self._train_parts("bloom"))

    def build_predicate_suite(self) -> ShardedCardinalityEstimator:
        """Per-shard :class:`PredicateCardinalitySuite` routers.

        The cardinality router serves them unchanged (counts stay additive
        under every predicate); its ``supports_predicates`` turns true
        because every part routes the whole family.
        """
        return ShardedCardinalityEstimator(self.plan, self._train_parts("predicate"))

    def build(self, task: str):
        """Train every shard for ``task`` and return the matching router."""
        if task == "cardinality":
            return self.build_cardinality()
        if task == "index":
            return self.build_index()
        if task == "bloom":
            return self.build_bloom()
        if task == "predicate":
            return self.build_predicate_suite()
        raise ValueError(
            f"unknown task {task!r}; expected one of {TASKS + ('predicate',)}"
        )

    def build_all(self) -> dict[str, Any]:
        """All three routers, keyed by task name."""
        return {task: self.build(task) for task in TASKS}

    @staticmethod
    def default_workers() -> int:
        """A sensible pool size for this machine (at least 1)."""
        return max(os.cpu_count() or 1, 1)
