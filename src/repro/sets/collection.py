"""The ordered collection of sets ``S = [X_1, ..., X_N]`` (paper §1.1).

The collection preserves insertion order (the paper stresses that sets are
stored in an *arbitrary, unsortable* order — that is what makes the learned
index hard), may contain duplicate sets, and each set holds distinct
elements.  Sets are stored as sorted int tuples: hashable, compact, and the
sorted order is an internal canonical form only — models never rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from .vocab import Vocabulary

__all__ = ["SetCollection", "CollectionStats"]


@dataclass(frozen=True)
class CollectionStats:
    """The Table 2 row for one dataset."""

    num_sets: int
    num_unique_elements: int
    max_cardinality: int
    min_set_size: int
    max_set_size: int

    def as_row(self) -> dict[str, int]:
        return {
            "n": self.num_sets,
            "uniq_elem": self.num_unique_elements,
            "max_card": self.max_cardinality,
            "min_size": self.min_set_size,
            "max_size": self.max_set_size,
        }


class SetCollection:
    """An ordered, duplicable collection of element-id sets.

    Parameters
    ----------
    sets:
        Iterable of iterables of non-negative ints.  Each inner iterable is
        de-duplicated and canonicalized to a sorted tuple.
    vocab:
        Optional :class:`Vocabulary` when the collection was built from
        string tokens; kept so queries can be posed as token sets.
    """

    def __init__(
        self,
        sets: Iterable[Iterable[int]],
        vocab: Vocabulary | None = None,
    ):
        self._sets: list[tuple[int, ...]] = []
        for raw in sets:
            canonical = tuple(sorted(set(int(e) for e in raw)))
            if not canonical:
                raise ValueError("sets must be non-empty")
            if canonical[0] < 0:
                raise ValueError("element ids must be non-negative")
            self._sets.append(canonical)
        self.vocab = vocab

    @classmethod
    def from_token_sets(cls, token_sets: Iterable[Iterable[str]]) -> "SetCollection":
        """Build a collection (and vocabulary) from string-token sets."""
        vocab = Vocabulary()
        encoded = [vocab.add_set(tokens) for tokens in token_sets]
        return cls(encoded, vocab=vocab)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._sets)

    def __getitem__(self, index: int) -> tuple[int, ...]:
        return self._sets[index]

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._sets)

    def sets(self) -> Sequence[tuple[int, ...]]:
        """The underlying list (do not mutate)."""
        return self._sets

    # -- element facts ---------------------------------------------------------

    def max_element_id(self) -> int:
        """Largest element id present (the compression divisor input)."""
        return max(s[-1] for s in self._sets)

    def element_frequencies(self) -> np.ndarray:
        """``freq[e]`` = number of sets containing element ``e``."""
        freq = np.zeros(self.max_element_id() + 1, dtype=np.int64)
        for s in self._sets:
            freq[list(s)] += 1
        return freq

    def stats(self) -> CollectionStats:
        """Compute the Table 2 statistics for this collection.

        ``max_cardinality`` follows the paper's definition: the largest
        cardinality of any single element, which upper-bounds the
        cardinality of every subset query (§4.2).
        """
        sizes = [len(s) for s in self._sets]
        frequencies = self.element_frequencies()
        return CollectionStats(
            num_sets=len(self._sets),
            num_unique_elements=int((frequencies > 0).sum()),
            max_cardinality=int(frequencies.max()),
            min_set_size=min(sizes),
            max_set_size=max(sizes),
        )

    # -- slow-path exact operations (ground truth; the inverted index in
    # -- :mod:`repro.sets.inverted` provides the fast path) -----------------

    def first_position(self, query: Iterable[int]) -> int | None:
        """First index ``i`` with ``query ⊆ S[i]`` by linear scan."""
        q = frozenset(query)
        for index, candidate in enumerate(self._sets):
            if q.issubset(candidate):
                return index
        return None

    def cardinality(self, query: Iterable[int]) -> int:
        """Number of sets containing ``query`` by linear scan."""
        q = frozenset(query)
        return sum(1 for candidate in self._sets if q.issubset(candidate))

    def contains_subset(self, query: Iterable[int]) -> bool:
        """Whether any stored set contains ``query``."""
        return self.first_position(query) is not None

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write one space-separated id line per set."""
        with open(path, "w", encoding="utf-8") as handle:
            for s in self._sets:
                handle.write(" ".join(map(str, s)))
                handle.write("\n")

    @classmethod
    def load(cls, path: str | Path) -> "SetCollection":
        sets = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    sets.append(tuple(int(tok) for tok in line.split()))
        return cls(sets)
