"""Set-collection substrate: storage, vocabulary, ground truth, workloads."""

from .collection import CollectionStats, SetCollection
from .inverted import InvertedIndex
from .predicates import DEFAULT_PREDICATES, SUBSET, SUPERSET, Predicate, as_predicate
from .subsets import (
    cardinality_training_pairs,
    enumerate_subsets,
    index_training_pairs,
    negative_membership_samples,
    positive_membership_samples,
    predicate_training_pairs,
    sample_predicate_workload,
    sample_query_workload,
)
from .vocab import Vocabulary

__all__ = [
    "SetCollection",
    "CollectionStats",
    "InvertedIndex",
    "Vocabulary",
    "Predicate",
    "as_predicate",
    "SUBSET",
    "SUPERSET",
    "DEFAULT_PREDICATES",
    "enumerate_subsets",
    "index_training_pairs",
    "cardinality_training_pairs",
    "positive_membership_samples",
    "negative_membership_samples",
    "sample_query_workload",
    "predicate_training_pairs",
    "sample_predicate_workload",
]
