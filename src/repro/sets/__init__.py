"""Set-collection substrate: storage, vocabulary, ground truth, workloads."""

from .collection import CollectionStats, SetCollection
from .inverted import InvertedIndex
from .subsets import (
    cardinality_training_pairs,
    enumerate_subsets,
    index_training_pairs,
    negative_membership_samples,
    positive_membership_samples,
    sample_query_workload,
)
from .vocab import Vocabulary

__all__ = [
    "SetCollection",
    "CollectionStats",
    "InvertedIndex",
    "Vocabulary",
    "enumerate_subsets",
    "index_training_pairs",
    "cardinality_training_pairs",
    "positive_membership_samples",
    "negative_membership_samples",
    "sample_query_workload",
]
