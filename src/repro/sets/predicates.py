"""The set-predicate family: subset, superset, overlap-count, Jaccard.

The paper's queries are subset-containment (``stored @> query``); ACE
(PAPERS.md) frames set-valued estimation over a broader predicate family.
This module is the single source of truth for those semantics — every
layer (exact baselines, training generators, engine plans, guarded
facades, serving caches, TCP/CLI surfaces) evaluates or names a predicate
through :class:`Predicate`.

The four kinds, for a query set ``q`` and a stored set ``s``:

* ``subset``    — ``q ⊆ s``  (PostgreSQL ``s @> q``; the paper's query);
* ``superset``  — ``s ⊆ q``  (PostgreSQL ``s <@ q``);
* ``overlap``   — ``|q ∩ s| >= k`` for an integer threshold ``k >= 1``;
* ``jaccard``   — ``|q ∩ s| / |q ∪ s| >= τ`` for ``0 < τ <= 1``.

Thresholded kinds are spelled ``overlap>=K`` / ``jaccard>=T`` in their
string form (:meth:`Predicate.parse` / :attr:`Predicate.spec`), which is
also the wire format on the TCP protocol and the first component of
serving-cache keys.

Defined degenerate semantics (shared by every layer):

* the **empty query** matches every stored set under ``subset`` (vacuous
  truth) and no stored set under the other three kinds — stored sets are
  non-empty, so none is contained in ``∅``, intersects it ``k >= 1``
  times, or reaches a positive Jaccard score;
* **unknown element ids** (never stored) can be part of a query: they
  contribute nothing to any intersection, never block ``superset``
  containment, and still enlarge the Jaccard union.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "Predicate",
    "SUBSET",
    "SUPERSET",
    "DEFAULT_PREDICATES",
    "as_predicate",
]

_KINDS = ("subset", "superset", "overlap", "jaccard")


@dataclass(frozen=True)
class Predicate:
    """One membership test between a query set and a stored set."""

    kind: str
    threshold: float | None = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown predicate kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.kind in ("subset", "superset"):
            if self.threshold is not None:
                raise ValueError(f"{self.kind} takes no threshold")
        elif self.kind == "overlap":
            if self.threshold is None or int(self.threshold) != self.threshold:
                raise ValueError("overlap needs an integer threshold k")
            if self.threshold < 1:
                raise ValueError("overlap threshold must be >= 1")
            object.__setattr__(self, "threshold", int(self.threshold))
        else:  # jaccard
            if self.threshold is None:
                raise ValueError("jaccard needs a threshold τ")
            threshold = float(self.threshold)
            if not 0.0 < threshold <= 1.0:
                raise ValueError("jaccard threshold must be in (0, 1]")
            object.__setattr__(self, "threshold", threshold)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def subset(cls) -> "Predicate":
        return cls("subset")

    @classmethod
    def superset(cls) -> "Predicate":
        return cls("superset")

    @classmethod
    def overlap(cls, k: int) -> "Predicate":
        return cls("overlap", int(k))

    @classmethod
    def jaccard(cls, tau: float) -> "Predicate":
        return cls("jaccard", float(tau))

    @classmethod
    def parse(cls, spec: str) -> "Predicate":
        """Parse ``subset`` / ``superset`` / ``overlap>=K`` / ``jaccard>=T``."""
        text = spec.strip().lower()
        if text == "subset":
            return cls.subset()
        if text == "superset":
            return cls.superset()
        kind, sep, raw = text.partition(">=")
        if sep and kind in ("overlap", "jaccard"):
            try:
                if kind == "overlap":
                    return cls.overlap(int(raw))
                return cls.jaccard(float(raw))
            except ValueError as exc:
                raise ValueError(f"bad predicate threshold in {spec!r}: {exc}") from None
        raise ValueError(
            f"cannot parse predicate {spec!r}; expected subset, superset, "
            "overlap>=K, or jaccard>=T"
        )

    # -- identity --------------------------------------------------------------

    @property
    def spec(self) -> str:
        """Canonical string form; round-trips through :meth:`parse`."""
        if self.kind == "overlap":
            return f"overlap>={self.threshold}"
        if self.kind == "jaccard":
            return f"jaccard>={self.threshold:g}"
        return self.kind

    def __str__(self) -> str:
        return self.spec

    # -- evaluation ------------------------------------------------------------

    def matches(self, query: Iterable[int], stored: Iterable[int]) -> bool:
        """Whether one stored set satisfies the predicate for ``query``."""
        q = frozenset(query)
        if self.kind == "subset":
            return q.issubset(stored)
        s = frozenset(stored)
        if self.kind == "superset":
            return s.issubset(q)
        intersection = len(q & s)
        if self.kind == "overlap":
            return intersection >= self.threshold
        union = len(q | s)
        return union > 0 and intersection / union >= self.threshold

    def empty_query_count(self, num_sets: int) -> int:
        """Exact COUNT for the empty query (see the module docstring)."""
        return int(num_sets) if self.kind == "subset" else 0


SUBSET = Predicate.subset()
SUPERSET = Predicate.superset()

# The predicate family exercised by default across training suites, the
# differential harness, and the conformance matrix.
DEFAULT_PREDICATES = (
    SUBSET,
    SUPERSET,
    Predicate.overlap(2),
    Predicate.jaccard(0.5),
)


def as_predicate(value) -> Predicate:
    """Coerce a :class:`Predicate`, spec string, or ``None`` (-> subset)."""
    if value is None:
        return SUBSET
    if isinstance(value, Predicate):
        return value
    if isinstance(value, str):
        return Predicate.parse(value)
    raise TypeError(f"cannot interpret {value!r} as a predicate")
