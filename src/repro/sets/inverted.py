"""Exact inverted index over a collection of sets.

Maps every element id to the sorted array of positions of the sets that
contain it.  Subset queries then reduce to sorted-list intersections, giving
exact answers for all three tasks:

* ``cardinality(q)`` — size of the intersection of the posting lists.
* ``first_position(q)`` — minimum of the intersection.
* ``contains(q)`` — non-emptiness, with early exit.

This serves two roles in the reproduction: the *ground truth oracle* used
to label training data and score learned models, and the GIN-style index of
the mini relational engine (Table 12).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .collection import SetCollection
from .predicates import as_predicate

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Element -> sorted posting list of set positions."""

    def __init__(self, collection: SetCollection):
        postings: dict[int, list[int]] = {}
        sizes = np.empty(len(collection), dtype=np.int64)
        for position, stored in enumerate(collection):
            sizes[position] = len(stored)
            for element in stored:
                postings.setdefault(element, []).append(position)
        # Positions were appended in increasing order, so lists are sorted.
        self._postings: dict[int, np.ndarray] = {
            element: np.asarray(positions, dtype=np.int64)
            for element, positions in postings.items()
        }
        self._set_sizes = sizes
        self._num_sets = len(collection)

    def __contains__(self, element: int) -> bool:
        return element in self._postings

    @property
    def num_sets(self) -> int:
        return self._num_sets

    def elements(self) -> list[int]:
        """All indexed element ids."""
        return list(self._postings)

    def posting(self, element: int) -> np.ndarray:
        """Sorted positions of sets containing ``element`` (empty if none)."""
        return self._postings.get(element, np.empty(0, dtype=np.int64))

    def document_frequency(self, element: int) -> int:
        return len(self.posting(element))

    # -- query evaluation ----------------------------------------------------

    def _intersection(self, query: Iterable[int]) -> np.ndarray:
        """Intersect posting lists, rarest first for early shrinkage."""
        lists = [self.posting(element) for element in set(query)]
        if not lists:
            raise ValueError("query must contain at least one element")
        lists.sort(key=len)
        result = lists[0]
        for other in lists[1:]:
            if len(result) == 0:
                break
            result = result[np.isin(result, other, assume_unique=True)]
        return result

    def matching_positions(self, query: Iterable[int]) -> np.ndarray:
        """All positions whose set contains every query element (sorted)."""
        return self._intersection(query)

    def cardinality(self, query: Iterable[int]) -> int:
        """Exact number of sets containing the query subset."""
        return int(len(self._intersection(query)))

    def first_position(self, query: Iterable[int]) -> int | None:
        """Exact first position of the query subset, or ``None``."""
        matches = self._intersection(query)
        return int(matches[0]) if len(matches) else None

    def contains(self, query: Iterable[int]) -> bool:
        return len(self._intersection(query)) > 0

    # -- predicate evaluation (superset / overlap / jaccard baselines) ---------

    def set_size(self, position: int) -> int:
        """Number of elements of the stored set at ``position``."""
        return int(self._set_sizes[position])

    def overlap_counts(self, query: Iterable[int]) -> np.ndarray:
        """``counts[i]`` = ``|query ∩ S[i]|`` for every stored position.

        Unknown element ids have empty posting lists and contribute
        nothing, which is exactly the defined OOV semantics.  Each posting
        list holds distinct positions, so the fancy-index accumulate adds
        at most one per element.
        """
        counts = np.zeros(self._num_sets, dtype=np.int64)
        for element in set(query):
            counts[self.posting(element)] += 1
        return counts

    def count_predicate(self, predicate, query: Iterable[int]) -> int:
        """Exact ``COUNT(*) WHERE predicate(query, set)`` for any predicate.

        This is the ground-truth oracle for the non-subset query family:
        the superset count compares per-position overlap against the
        stored set's size, overlap thresholds the same counts, and the
        Jaccard test derives the union size from ``|q| + |s| - |q ∩ s|``.
        The empty query gets the defined answer for its predicate.
        """
        predicate = as_predicate(predicate)
        q = set(query)
        if not q:
            return predicate.empty_query_count(self._num_sets)
        if predicate.kind == "subset":
            return int(len(self._intersection(q)))
        counts = self.overlap_counts(q)
        if predicate.kind == "superset":
            return int((counts == self._set_sizes).sum())
        if predicate.kind == "overlap":
            return int((counts >= predicate.threshold).sum())
        union = len(q) + self._set_sizes - counts
        return int((counts / union >= predicate.threshold).sum())

    def matching_positions_predicate(
        self, predicate, query: Iterable[int]
    ) -> np.ndarray:
        """Sorted positions whose set satisfies the predicate for ``query``."""
        predicate = as_predicate(predicate)
        q = set(query)
        if not q:
            if predicate.kind == "subset":
                return np.arange(self._num_sets, dtype=np.int64)
            return np.empty(0, dtype=np.int64)
        if predicate.kind == "subset":
            return self._intersection(q)
        counts = self.overlap_counts(q)
        if predicate.kind == "superset":
            mask = counts == self._set_sizes
        elif predicate.kind == "overlap":
            mask = counts >= predicate.threshold
        else:
            union = len(q) + self._set_sizes - counts
            mask = counts / union >= predicate.threshold
        return np.flatnonzero(mask).astype(np.int64)

    def max_element_cardinality(self) -> int:
        """Largest single-element cardinality — the scaler's upper bound.

        The paper (§4.2) uses the fact that a superset's cardinality never
        exceeds that of its elements, so this value bounds every query.
        """
        return max(len(posting) for posting in self._postings.values())
