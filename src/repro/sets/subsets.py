"""Subset enumeration and training-data generation (paper §7.1).

The regression tasks train on *subsets of the stored sets* labelled with
their cardinality or first index position; the membership task additionally
needs *negative* samples — element combinations that never co-occur.  The
paper caps enumeration at subset size 6 because, under skewed element
distributions, larger subsets are almost always singletons in frequency;
``max_subset_size`` is the corresponding knob here, and ``max_samples``
optionally subsamples the enumerated universe to keep CPU training cheap.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

import numpy as np

from .collection import SetCollection
from .inverted import InvertedIndex
from .predicates import as_predicate

__all__ = [
    "enumerate_subsets",
    "index_training_pairs",
    "cardinality_training_pairs",
    "positive_membership_samples",
    "negative_membership_samples",
    "sample_query_workload",
    "predicate_training_pairs",
    "sample_predicate_workload",
]


def enumerate_subsets(
    elements: Sequence[int], max_size: int | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield all non-empty subsets of ``elements`` up to ``max_size``.

    Elements are assumed distinct; subsets come out in increasing-size,
    lexicographic order and as sorted tuples (the canonical form used
    throughout).
    """
    ordered = sorted(elements)
    limit = len(ordered) if max_size is None else min(max_size, len(ordered))
    for size in range(1, limit + 1):
        yield from itertools.combinations(ordered, size)


def index_training_pairs(
    collection: SetCollection,
    max_subset_size: int | None = None,
    max_samples: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[list[tuple[int, ...]], np.ndarray]:
    """All distinct subsets with their *first* position in the collection.

    A single pass in storage order guarantees the recorded position is the
    first occurrence (paper §4.1).  When ``max_samples`` is given, a uniform
    subsample is drawn (the learned index then only guarantees lookups for
    trained subsets — the benches use the same subsample as the workload).
    """
    first_position: dict[tuple[int, ...], int] = {}
    for position, stored in enumerate(collection):
        for subset in enumerate_subsets(stored, max_subset_size):
            if subset not in first_position:
                first_position[subset] = position
    subsets = list(first_position.keys())
    positions = np.fromiter(first_position.values(), dtype=np.int64, count=len(subsets))
    if max_samples is not None and len(subsets) > max_samples:
        rng = rng or np.random.default_rng()
        keep = rng.choice(len(subsets), size=max_samples, replace=False)
        keep.sort()
        subsets = [subsets[i] for i in keep]
        positions = positions[keep]
    return subsets, positions


def cardinality_training_pairs(
    collection: SetCollection,
    max_subset_size: int | None = None,
    max_samples: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[list[tuple[int, ...]], np.ndarray]:
    """All distinct subsets with their number of occurrences.

    Cardinalities are counted exactly during the same enumeration pass
    (each stored set contributes one occurrence to each of its subsets), so
    no second scan over the collection is needed.
    """
    counts: dict[tuple[int, ...], int] = {}
    for stored in collection:
        for subset in enumerate_subsets(stored, max_subset_size):
            counts[subset] = counts.get(subset, 0) + 1
    subsets = list(counts.keys())
    cardinalities = np.fromiter(counts.values(), dtype=np.int64, count=len(subsets))
    if max_samples is not None and len(subsets) > max_samples:
        rng = rng or np.random.default_rng()
        keep = rng.choice(len(subsets), size=max_samples, replace=False)
        keep.sort()
        subsets = [subsets[i] for i in keep]
        cardinalities = cardinalities[keep]
    return subsets, cardinalities


def positive_membership_samples(
    collection: SetCollection,
    max_subset_size: int | None = None,
    max_samples: int | None = None,
    rng: np.random.Generator | None = None,
) -> list[tuple[int, ...]]:
    """Distinct subsets present in the collection (label 1 for the filter)."""
    subsets, _ = cardinality_training_pairs(
        collection, max_subset_size, max_samples, rng
    )
    return subsets


def negative_membership_samples(
    collection: SetCollection,
    index: InvertedIndex,
    num_samples: int,
    max_subset_size: int = 4,
    rng: np.random.Generator | None = None,
    max_attempts_factor: int = 50,
    frequency_weighted: bool = False,
) -> list[tuple[int, ...]]:
    """Element combinations that do NOT co-occur in any stored set.

    The paper notes (§7.1.2) that the complete negative universe is
    combinatorial, so training uses a sample restricted to subsets up to a
    predefined size.  Candidates combine *existing* element ids and are
    verified against the exact inverted index.

    By default elements are drawn uniformly over the vocabulary, mirroring
    the paper's "combinations of elements not appearing [together] in the
    original sets" — under skew these mostly involve tail elements, which
    is what lets small classifiers reach Table 9's accuracies.  Setting
    ``frequency_weighted=True`` instead draws elements by frequency,
    producing *adversarial* negatives that look like plausible queries; the
    ablation bench shows how sharply this degrades the learned filter.
    """
    rng = rng or np.random.default_rng()
    frequencies = collection.element_frequencies()
    population = np.flatnonzero(frequencies)
    if frequency_weighted:
        weights = frequencies[population] / frequencies[population].sum()
    else:
        weights = None
    negatives: set[tuple[int, ...]] = set()
    attempts = 0
    max_attempts = max_attempts_factor * num_samples
    while len(negatives) < num_samples and attempts < max_attempts:
        attempts += 1
        size = int(rng.integers(2, max_subset_size + 1))
        if size > len(population):
            break
        candidate = tuple(
            sorted(rng.choice(population, size=size, replace=False, p=weights))
        )
        if candidate in negatives:
            continue
        if index.cardinality(candidate) == 0:
            negatives.add(candidate)
    return sorted(negatives)


def _perturbed_query(
    collection: SetCollection,
    population: np.ndarray,
    rng: np.random.Generator,
    max_subset_size: int,
    max_extra_elements: int,
) -> tuple[int, ...]:
    """One query for the non-subset predicates: a perturbed stored set.

    Start from a random subset of a random stored set (so intersections
    with the collection are plentiful), then with probability 1/2 mix in
    up to ``max_extra_elements`` other vocabulary elements — these widen
    Jaccard unions, complete supersets of *other* stored sets, and keep
    the label distribution away from the all-zero corner.
    """
    stored = collection[int(rng.integers(0, len(collection)))]
    cap = min(len(stored), max_subset_size)
    size = int(rng.integers(1, cap + 1))
    chosen = rng.choice(len(stored), size=size, replace=False)
    query = {stored[i] for i in chosen}
    if max_extra_elements > 0 and rng.random() < 0.5:
        extra = int(rng.integers(1, max_extra_elements + 1))
        extra = min(extra, len(population))
        query.update(int(e) for e in rng.choice(population, size=extra, replace=False))
    return tuple(sorted(query))


def predicate_training_pairs(
    collection: SetCollection,
    predicate,
    index: InvertedIndex | None = None,
    num_samples: int = 2000,
    max_subset_size: int | None = 6,
    max_extra_elements: int = 3,
    rng: np.random.Generator | None = None,
) -> tuple[list[tuple[int, ...]], np.ndarray]:
    """Training corpus ``(queries, counts)`` for one predicate.

    ``subset`` delegates to :func:`cardinality_training_pairs` (the
    paper's enumeration); the other predicates have no useful enumeration
    (any element combination is a legal query), so distinct queries are
    *sampled* as perturbed stored sets and labelled by the exact
    :class:`InvertedIndex` predicate oracle.
    """
    predicate = as_predicate(predicate)
    if predicate.kind == "subset":
        return cardinality_training_pairs(
            collection,
            max_subset_size=max_subset_size,
            max_samples=num_samples,
            rng=rng,
        )
    rng = rng or np.random.default_rng()
    index = index if index is not None else InvertedIndex(collection)
    population = np.flatnonzero(collection.element_frequencies())
    cap = max_subset_size if max_subset_size is not None else max(
        len(stored) for stored in collection
    )
    labelled: dict[tuple[int, ...], int] = {}
    attempts = 0
    max_attempts = 50 * num_samples
    while len(labelled) < num_samples and attempts < max_attempts:
        attempts += 1
        query = _perturbed_query(collection, population, rng, cap, max_extra_elements)
        if query in labelled:
            continue
        labelled[query] = index.count_predicate(predicate, query)
    queries = list(labelled.keys())
    counts = np.fromiter(labelled.values(), dtype=np.int64, count=len(queries))
    return queries, counts


def sample_predicate_workload(
    collection: SetCollection,
    predicate,
    num_queries: int,
    rng: np.random.Generator | None = None,
    max_subset_size: int | None = 6,
    max_extra_elements: int = 3,
) -> list[tuple[int, ...]]:
    """Evaluation workload drawn like the predicate's training corpus."""
    predicate = as_predicate(predicate)
    if predicate.kind == "subset":
        return sample_query_workload(
            collection, num_queries, rng=rng, max_subset_size=max_subset_size
        )
    rng = rng or np.random.default_rng()
    population = np.flatnonzero(collection.element_frequencies())
    cap = max_subset_size if max_subset_size is not None else max(
        len(stored) for stored in collection
    )
    return [
        _perturbed_query(collection, population, rng, cap, max_extra_elements)
        for _ in range(num_queries)
    ]


def sample_query_workload(
    collection: SetCollection,
    num_queries: int,
    rng: np.random.Generator | None = None,
    max_subset_size: int | None = None,
) -> list[tuple[int, ...]]:
    """Positive query workload: random subsets of random stored sets.

    Mirrors the paper's workload construction ("subsets of the original
    sets having both few and many elements"): the subset size is uniform
    in ``[1, min(|X|, max_subset_size)]``.
    """
    rng = rng or np.random.default_rng()
    queries: list[tuple[int, ...]] = []
    n = len(collection)
    for _ in range(num_queries):
        stored = collection[int(rng.integers(0, n))]
        cap = len(stored) if max_subset_size is None else min(len(stored), max_subset_size)
        size = int(rng.integers(1, cap + 1))
        chosen = rng.choice(len(stored), size=size, replace=False)
        queries.append(tuple(sorted(stored[i] for i in chosen)))
    return queries
