"""String <-> integer vocabulary for set elements.

The learned models operate on dense integer ids; real data (hashtags, log
tokens) arrives as strings.  :class:`Vocabulary` provides a stable bijection
plus frequency bookkeeping, which the dataset statistics (Table 2) and the
compression divisor computation rely on.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

__all__ = ["Vocabulary"]


class Vocabulary:
    """Bidirectional mapping between element tokens and dense integer ids.

    Ids are assigned in first-seen order starting at 0, so ``max_id`` equals
    ``len(vocab) - 1`` — the quantity the compression divisor is derived
    from.
    """

    def __init__(self):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._frequencies: Counter[int] = Counter()

    def add(self, token: str) -> int:
        """Intern ``token`` (counting one occurrence) and return its id."""
        existing = self._token_to_id.get(token)
        if existing is None:
            existing = len(self._id_to_token)
            self._token_to_id[token] = existing
            self._id_to_token.append(token)
        self._frequencies[existing] += 1
        return existing

    def add_set(self, tokens: Iterable[str]) -> tuple[int, ...]:
        """Intern a whole set; returns the sorted, de-duplicated id tuple."""
        return tuple(sorted({self.add(token) for token in tokens}))

    def id_of(self, token: str) -> int:
        """Return the id of ``token``; raises ``KeyError`` if unknown."""
        return self._token_to_id[token]

    def token_of(self, element_id: int) -> str:
        return self._id_to_token[element_id]

    def encode(self, tokens: Iterable[str]) -> tuple[int, ...]:
        """Encode known tokens to a sorted id tuple (KeyError if unknown)."""
        return tuple(sorted({self._token_to_id[token] for token in tokens}))

    def encode_lenient(
        self, tokens: Iterable[str]
    ) -> tuple[tuple[int, ...], tuple[str, ...]]:
        """Encode known tokens; unknown ones are returned, not raised.

        Returns ``(ids, unknown_tokens)``: the sorted id tuple of the
        recognized tokens plus the unrecognized tokens in first-seen order
        (de-duplicated).  A query containing an unseen token can never
        match a stored set, so callers treat non-empty ``unknown_tokens``
        as a defined miss instead of an uncaught ``KeyError``.
        """
        ids: set[int] = set()
        unknown: dict[str, None] = {}
        for token in tokens:
            element_id = self._token_to_id.get(token)
            if element_id is None:
                unknown[token] = None
            else:
                ids.add(element_id)
        return tuple(sorted(ids)), tuple(unknown)

    def decode(self, element_ids: Iterable[int]) -> frozenset[str]:
        return frozenset(self._id_to_token[i] for i in element_ids)

    def frequency(self, element_id: int) -> int:
        """How many times the element was interned via :meth:`add`."""
        return self._frequencies[element_id]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    @property
    def max_id(self) -> int:
        """Largest assigned id (−1 when empty)."""
        return len(self._id_to_token) - 1
