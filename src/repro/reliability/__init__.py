"""Reliability layer: guarded serving, health accounting, fault injection.

The learned structures in :mod:`repro.core` are only deployable when
wrapped in guarantees (Kraska et al.; Rae et al.); this package provides
them:

* :mod:`repro.reliability.guarded` — facades pairing each learned
  structure with its exact auxiliary so queries fail *soft*;
* :mod:`repro.reliability.health` — per-structure fallback counters;
* :mod:`repro.reliability.faults` — test-only fault injection hooks wired
  into the predict, training, and serialize paths.
"""

from .faults import ALWAYS, FaultInjector, active_injector
from .guarded import (
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedEstimator,
    GuardedPredicateSuite,
    GuardedSetIndex,
    REASON_EMPTY,
    REASON_INVALID_PREDICTION,
    REASON_MALFORMED,
    REASON_MODEL_ERROR,
    REASON_OOV,
    REASON_OVERSIZED,
    REASON_WINDOW_MISS,
)
from .health import HealthCounters

__all__ = [
    "ALWAYS",
    "FaultInjector",
    "active_injector",
    "HealthCounters",
    "GuardedEstimator",
    "GuardedCardinalityEstimator",
    "GuardedPredicateSuite",
    "GuardedSetIndex",
    "GuardedBloomFilter",
    "REASON_MALFORMED",
    "REASON_EMPTY",
    "REASON_OVERSIZED",
    "REASON_OOV",
    "REASON_MODEL_ERROR",
    "REASON_INVALID_PREDICTION",
    "REASON_WINDOW_MISS",
]
