"""Test-only fault injection for the reliability layer.

Production code calls the module-level ``corrupt_*`` hooks at exactly the
points where real deployments fail: model predictions (NaN weights, numeric
blow-ups), training losses (divergence), and weight files (truncated or
bit-rotted archives).  When no injector is installed the hooks are
near-free pass-throughs; tests install a :class:`FaultInjector` — it is a
context manager — to force those failures and then assert that the guarded
structures degrade to exact answers instead of raising.

The hooks are also plain module attributes, so tests that need bespoke
failure shapes can monkeypatch them directly::

    monkeypatch.setattr(faults, "corrupt_prediction", lambda v: float("inf"))
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

__all__ = [
    "ALWAYS",
    "FaultInjector",
    "active_injector",
    "corrupt_prediction",
    "corrupt_predictions",
    "corrupt_loss",
    "corrupt_state_file",
]

#: Budget value meaning "fire on every call, forever".
ALWAYS = math.inf

_active: "FaultInjector | None" = None


class FaultInjector:
    """Forces failures into the predict, training, and serialize paths.

    Each ``*`` budget counts how many more times that fault fires
    (:data:`ALWAYS` never runs out):

    ``nan_predictions``
        Model predictions are replaced with NaN.
    ``nan_losses``
        Per-batch training losses are replaced with NaN (the Trainer's
        divergence-recovery path must kick in).
    ``truncate_saves``
        Weight files written by ``save_state`` are truncated to
        ``truncate_to_bytes`` bytes after the atomic rename, simulating
        at-rest corruption that ``load_state`` must detect.

    The ``*_corrupted`` counters record how many faults actually fired.
    """

    def __init__(
        self,
        *,
        nan_predictions: float = 0,
        nan_losses: float = 0,
        truncate_saves: float = 0,
        truncate_to_bytes: int = 8,
    ):
        self.nan_predictions = float(nan_predictions)
        self.nan_losses = float(nan_losses)
        self.truncate_saves = float(truncate_saves)
        self.truncate_to_bytes = int(truncate_to_bytes)
        self.predictions_corrupted = 0
        self.losses_corrupted = 0
        self.saves_corrupted = 0

    # -- budget bookkeeping --------------------------------------------------

    def _consume(self, budget_name: str) -> bool:
        budget = getattr(self, budget_name)
        if budget <= 0:
            return False
        if math.isfinite(budget):
            setattr(self, budget_name, budget - 1)
        return True

    # -- fault application ---------------------------------------------------

    def prediction(self, value: float) -> float:
        if self._consume("nan_predictions"):
            self.predictions_corrupted += 1
            return float("nan")
        return value

    def predictions(self, values: np.ndarray) -> np.ndarray:
        out = np.array(values, dtype=np.float64, copy=True)
        for row in range(len(out)):
            if not self._consume("nan_predictions"):
                break
            out[row] = np.nan
            self.predictions_corrupted += 1
        return out

    def loss(self, value: float) -> float:
        if self._consume("nan_losses"):
            self.losses_corrupted += 1
            return float("nan")
        return value

    def state_file(self, path) -> None:
        if self._consume("truncate_saves"):
            path = Path(path)
            data = path.read_bytes()
            path.write_bytes(data[: self.truncate_to_bytes])
            self.saves_corrupted += 1

    # -- installation --------------------------------------------------------

    def install(self) -> "FaultInjector":
        global _active
        _active = self
        return self

    def uninstall(self) -> None:
        global _active
        if _active is self:
            _active = None

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()


def active_injector() -> "FaultInjector | None":
    """The currently installed injector, or ``None`` in production."""
    return _active


# -- hooks called from production code (identity when no injector) ----------

def corrupt_prediction(value: float) -> float:
    """Hook in the single-query predict paths."""
    return value if _active is None else _active.prediction(value)


def corrupt_predictions(values: np.ndarray) -> np.ndarray:
    """Hook in the batched predict paths."""
    return values if _active is None else _active.predictions(values)


def corrupt_loss(value: float) -> float:
    """Hook in the Trainer's per-batch loss path."""
    return value if _active is None else _active.loss(value)


def corrupt_state_file(path) -> None:
    """Hook after ``save_state`` finishes writing ``path``."""
    if _active is not None:
        _active.state_file(path)
