"""Guarded serving facades: learned structures that fail *soft*.

The paper's hybrid design (§6) pairs every learned structure with an exact
auxiliary; this module turns that pairing into a runtime guarantee.  Each
facade wraps one learned structure together with a paired exact structure
(an :class:`~repro.sets.inverted.InvertedIndex` over the same collection,
plus the Bloom filter's own backup filter) and serves queries through three
lines of defence:

1. **query validation** — empty, oversized, out-of-vocabulary, and
   malformed queries get defined answers instead of ``KeyError`` /
   ``IndexError``;
2. **prediction validation** — NaN, infinite, and out-of-range model
   outputs are rejected before they can poison an answer;
3. **exact fallback** — any rejected prediction or exception in the model
   path is answered by the paired exact structure.

Every event is recorded in per-structure :class:`HealthCounters`.

Failure semantics (the documented contract):

===================  =============  ==============  ===============
query                cardinality    index lookup    bloom contains
===================  =============  ==============  ===============
empty set            ``N`` (all)    ``0`` (first)   ``True``\\*
oversized query      ``0.0``        ``None``        backup / False
OOV element          ``0.0``        ``None``        backup / False
malformed query      ``0.0``        ``None``        ``False``
model failure        exact count    exact position  exact answer
===================  =============  ==============  ===============

\\* the empty set is a subset of every stored set (vacuous truth), so the
answers are the mathematically exact ones for a non-empty collection.
Oversized and OOV queries cannot be subsets of any stored set, so the miss
answers are exact too; the Bloom facade still consults its backup filter
first because post-training inserts may lie outside the trained universe.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..sets.inverted import InvertedIndex
from .health import HealthCounters

__all__ = [
    "GuardedEstimator",
    "GuardedCardinalityEstimator",
    "GuardedSetIndex",
    "GuardedBloomFilter",
    "REASON_MALFORMED",
    "REASON_EMPTY",
    "REASON_OVERSIZED",
    "REASON_OOV",
    "REASON_MODEL_ERROR",
    "REASON_INVALID_PREDICTION",
    "REASON_WINDOW_MISS",
]

# Fallback / short-circuit reasons recorded in the health counters.
REASON_MALFORMED = "malformed_query"
REASON_EMPTY = "empty_query"
REASON_OVERSIZED = "oversized_query"
REASON_OOV = "oov_query"
REASON_MODEL_ERROR = "model_error"
REASON_INVALID_PREDICTION = "invalid_prediction"
REASON_WINDOW_MISS = "window_miss"


def _max_known_id(model) -> int | None:
    """Largest element id the wrapped model can embed (None if unknown)."""
    if hasattr(model, "vocab_size"):
        return model.vocab_size - 1
    if hasattr(model, "compressor"):
        return model.compressor.max_value
    return None


class GuardedEstimator:
    """Shared validation and health machinery for the guarded facades.

    Parameters
    ----------
    model:
        The wrapped learned structure's model (used to derive the trained
        id universe for OOV detection).
    exact:
        The paired exact structure — an :class:`InvertedIndex` over the
        same collection the learned structure was built from.
    max_query_size:
        Queries with more elements than this cannot be subsets of any
        stored set and short-circuit to the miss answer; ``None`` disables
        the check.
    """

    structure_name = "structure"

    def __init__(self, model, exact: InvertedIndex, max_query_size: int | None = None):
        self.exact = exact
        self.max_query_size = max_query_size
        self._id_ceiling = _max_known_id(model)
        self.health = HealthCounters(self.structure_name)

    # -- query validation ----------------------------------------------------

    @staticmethod
    def _canonicalize(query: Iterable) -> tuple[int, ...] | None:
        """Sorted de-duplicated id tuple, or ``None`` for malformed input."""
        try:
            return tuple(sorted({int(element) for element in query}))
        except (TypeError, ValueError):
            return None

    def _validate(self, canonical: tuple[int, ...] | None) -> str | None:
        """Reason a query must not reach the model, or ``None`` if it may."""
        if canonical is None:
            return REASON_MALFORMED
        if not canonical:
            return REASON_EMPTY
        if canonical[0] < 0:
            return REASON_OOV
        if self._id_ceiling is not None and canonical[-1] > self._id_ceiling:
            return REASON_OOV
        if self.max_query_size is not None and len(canonical) > self.max_query_size:
            return REASON_OVERSIZED
        return None


def _max_stored_size(collection) -> int:
    return max(len(stored) for stored in collection)


class GuardedCardinalityEstimator(GuardedEstimator):
    """Reliability facade over :class:`LearnedCardinalityEstimator`."""

    structure_name = "cardinality"

    def __init__(self, estimator, exact: InvertedIndex, max_query_size: int | None = None):
        super().__init__(estimator.model, exact, max_query_size)
        self.estimator = estimator

    @classmethod
    def for_collection(cls, estimator, collection) -> "GuardedCardinalityEstimator":
        """Pair ``estimator`` with an exact inverted index over ``collection``."""
        return cls(
            estimator,
            InvertedIndex(collection),
            max_query_size=_max_stored_size(collection),
        )

    def estimate(self, query: Iterable[int]) -> float:
        """Cardinality estimate that never raises on any query."""
        self.health.record_query()
        canonical = self._canonicalize(query)
        reason = self._validate(canonical)
        if reason == REASON_EMPTY:
            # The empty set is contained in every stored set.
            self.health.record_short_circuit(reason)
            return float(self.exact.num_sets)
        if reason is not None:
            self.health.record_short_circuit(reason)
            return 0.0
        try:
            value = self.estimator.estimate(canonical)
        except Exception:
            return self._exact(canonical, REASON_MODEL_ERROR)
        if not math.isfinite(value) or value < 0.0 or value > self.exact.num_sets:
            return self._exact(canonical, REASON_INVALID_PREDICTION)
        self.health.record_model_answer()
        return float(value)

    def estimate_many(self, queries: Sequence[Iterable[int]]) -> np.ndarray:
        return np.asarray([self.estimate(q) for q in queries], dtype=np.float64)

    def _exact(self, canonical: tuple[int, ...], reason: str) -> float:
        self.health.record_fallback(reason)
        return float(self.exact.cardinality(canonical))


class GuardedSetIndex(GuardedEstimator):
    """Reliability facade over :class:`LearnedSetIndex`."""

    structure_name = "index"

    def __init__(self, index, exact: InvertedIndex | None = None,
                 max_query_size: int | None = None):
        if exact is None:
            exact = InvertedIndex(index.collection)
        if max_query_size is None:
            max_query_size = _max_stored_size(index.collection)
        super().__init__(index.model, exact, max_query_size)
        self.index = index

    def lookup(self, query: Iterable[int]) -> int | None:
        """First position containing ``query``; never raises, always exact.

        The learned index answers within its error window; a window miss,
        a non-finite prediction, or any exception falls back to the exact
        inverted index instead of the unguarded full-collection rescan.
        """
        self.health.record_query()
        canonical = self._canonicalize(query)
        reason = self._validate(canonical)
        if reason == REASON_EMPTY:
            # Empty query: contained in every set, so the first position.
            self.health.record_short_circuit(reason)
            return 0 if self.exact.num_sets else None
        if reason is not None:
            self.health.record_short_circuit(reason)
            return None
        try:
            estimate = self.index.predict_position(canonical)
        except Exception:
            return self._exact(canonical, REASON_MODEL_ERROR)
        if not math.isfinite(estimate):
            return self._exact(canonical, REASON_INVALID_PREDICTION)
        try:
            found = self.index.lookup(canonical, fallback_scan=False)
        except Exception:
            return self._exact(canonical, REASON_MODEL_ERROR)
        if found is None:
            return self._exact(canonical, REASON_WINDOW_MISS)
        self.health.record_model_answer()
        return found

    def _exact(self, canonical: tuple[int, ...], reason: str) -> int | None:
        self.health.record_fallback(reason)
        return self.exact.first_position(canonical)


class GuardedBloomFilter(GuardedEstimator):
    """Reliability facade over :class:`LearnedBloomFilter`.

    Preserves the no-false-negative guarantee even when the classifier
    produces NaN scores: a non-finite score is answered by the exact
    inverted index (with the backup filter consulted for post-training
    inserts), so an indexed subset can never be reported absent.
    """

    structure_name = "bloom"

    def __init__(self, filter_, exact: InvertedIndex,
                 max_query_size: int | None = None):
        super().__init__(filter_.model, exact, max_query_size)
        self.filter = filter_

    @classmethod
    def for_collection(cls, filter_, collection) -> "GuardedBloomFilter":
        return cls(
            filter_,
            InvertedIndex(collection),
            max_query_size=_max_stored_size(collection),
        )

    def contains(self, query: Iterable[int]) -> bool:
        self.health.record_query()
        canonical = self._canonicalize(query)
        reason = self._validate(canonical)
        if reason == REASON_MALFORMED:
            self.health.record_short_circuit(reason)
            return False
        if reason == REASON_EMPTY:
            self.health.record_short_circuit(reason)
            return self.exact.num_sets > 0
        if reason is not None:
            # OOV / oversized subsets cannot be members of the trained
            # universe, but post-training inserts live in the backup filter.
            self.health.record_short_circuit(reason)
            return self._backup_contains(canonical)
        try:
            score = self.filter.score(canonical)
        except Exception:
            return self._exact(canonical, REASON_MODEL_ERROR)
        if not math.isfinite(score):
            return self._exact(canonical, REASON_INVALID_PREDICTION)
        self.health.record_model_answer()
        if score >= self.filter.threshold:
            return True
        return self._backup_contains(canonical)

    def __contains__(self, query: Iterable[int]) -> bool:
        return self.contains(query)

    def contains_many(self, queries: Sequence[Iterable[int]]) -> np.ndarray:
        return np.asarray([self.contains(q) for q in queries], dtype=bool)

    def _backup_contains(self, canonical: tuple[int, ...]) -> bool:
        backup = self.filter.backup
        return backup.contains_set(set(canonical)) if backup is not None else False

    def _exact(self, canonical: tuple[int, ...], reason: str) -> bool:
        self.health.record_fallback(reason)
        if self.exact.contains(canonical):
            return True
        return self._backup_contains(canonical)
