"""Guarded serving facades: learned structures that fail *soft*.

The paper's hybrid design (§6) pairs every learned structure with an exact
auxiliary; this module turns that pairing into a runtime guarantee.  Each
facade wraps one learned structure together with a paired exact structure
(an :class:`~repro.sets.inverted.InvertedIndex` over the same collection,
plus the Bloom filter's own backup filter) and serves queries through three
lines of defence:

1. **query validation** — empty, oversized, out-of-vocabulary, and
   malformed queries get defined answers instead of ``KeyError`` /
   ``IndexError``;
2. **prediction validation** — NaN, infinite, and out-of-range model
   outputs are rejected before they can poison an answer;
3. **exact fallback** — any rejected prediction or exception in the model
   path is answered by the paired exact structure.

Every event is recorded in per-structure :class:`HealthCounters`.

Failure semantics (the documented contract):

===================  =============  ==============  ===============
query                cardinality    index lookup    bloom contains
===================  =============  ==============  ===============
empty set            ``N`` (all)    ``0`` (first)   ``True``\\*
oversized query      ``0.0``        ``None``        backup / False
OOV element          ``0.0``        ``None``        backup / False
malformed query      ``0.0``        ``None``        ``False``
model failure        exact count    exact position  exact answer
===================  =============  ==============  ===============

\\* the empty set is a subset of every stored set (vacuous truth), so the
answers are the mathematically exact ones for a non-empty collection.
Oversized and OOV queries cannot be subsets of any stored set, so the miss
answers are exact too; the Bloom facade still consults its backup filter
first because post-training inserts may lie outside the trained universe.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..sets.inverted import InvertedIndex
from .health import HealthCounters

__all__ = [
    "GuardedEstimator",
    "GuardedCardinalityEstimator",
    "GuardedPredicateSuite",
    "GuardedSetIndex",
    "GuardedBloomFilter",
    "REASON_MALFORMED",
    "REASON_EMPTY",
    "REASON_OVERSIZED",
    "REASON_OOV",
    "REASON_MODEL_ERROR",
    "REASON_INVALID_PREDICTION",
    "REASON_WINDOW_MISS",
]

# Fallback / short-circuit reasons recorded in the health counters.
REASON_MALFORMED = "malformed_query"
REASON_EMPTY = "empty_query"
REASON_OVERSIZED = "oversized_query"
REASON_OOV = "oov_query"
REASON_MODEL_ERROR = "model_error"
REASON_INVALID_PREDICTION = "invalid_prediction"
REASON_WINDOW_MISS = "window_miss"


def _max_known_id(structure) -> int | None:
    """Largest element id the wrapped structure can answer for.

    Structures that know their universe (including the sharded routers)
    report it through ``max_known_id()``; otherwise it is derived from the
    underlying model's embedding range.  ``None`` disables OOV detection.
    """
    probe = getattr(structure, "max_known_id", None)
    if callable(probe):
        try:
            ceiling = probe()
        except Exception:
            ceiling = None
        if ceiling is not None:
            return int(ceiling)
    model = getattr(structure, "model", structure)
    if hasattr(model, "vocab_size"):
        return model.vocab_size - 1
    if hasattr(model, "compressor"):
        return model.compressor.max_value
    return None


class GuardedEstimator:
    """Shared validation and health machinery for the guarded facades.

    Parameters
    ----------
    model:
        The wrapped learned structure's model (used to derive the trained
        id universe for OOV detection).
    exact:
        The paired exact structure — an :class:`InvertedIndex` over the
        same collection the learned structure was built from.
    max_query_size:
        Queries with more elements than this cannot be subsets of any
        stored set and short-circuit to the miss answer; ``None`` disables
        the check.
    """

    structure_name = "structure"

    def __init__(self, model, exact: InvertedIndex, max_query_size: int | None = None):
        self.exact = exact
        self.max_query_size = max_query_size
        self._id_ceiling = _max_known_id(model)
        self.health = HealthCounters(self.structure_name)

    def max_known_id(self) -> int | None:
        """The wrapped structure's trained id universe (None if unknown)."""
        return self._id_ceiling

    # -- query validation ----------------------------------------------------

    @staticmethod
    def _canonicalize(query: Iterable) -> tuple[int, ...] | None:
        """Sorted de-duplicated id tuple, or ``None`` for malformed input."""
        try:
            return tuple(sorted({int(element) for element in query}))
        except (TypeError, ValueError):
            return None

    def _validate(self, canonical: tuple[int, ...] | None) -> str | None:
        """Reason a query must not reach the model, or ``None`` if it may."""
        if canonical is None:
            return REASON_MALFORMED
        if not canonical:
            return REASON_EMPTY
        if canonical[0] < 0:
            return REASON_OOV
        if self._id_ceiling is not None and canonical[-1] > self._id_ceiling:
            return REASON_OOV
        if self.max_query_size is not None and len(canonical) > self.max_query_size:
            return REASON_OVERSIZED
        return None


def _max_stored_size(collection) -> int:
    return max(len(stored) for stored in collection)


class GuardedCardinalityEstimator(GuardedEstimator):
    """Reliability facade over :class:`LearnedCardinalityEstimator`."""

    structure_name = "cardinality"

    def __init__(self, estimator, exact: InvertedIndex, max_query_size: int | None = None):
        super().__init__(estimator, exact, max_query_size)
        self.estimator = estimator

    @classmethod
    def for_collection(cls, estimator, collection) -> "GuardedCardinalityEstimator":
        """Pair ``estimator`` with an exact inverted index over ``collection``."""
        return cls(
            estimator,
            InvertedIndex(collection),
            max_query_size=_max_stored_size(collection),
        )

    def estimate(self, query: Iterable[int]) -> float:
        """Cardinality estimate that never raises on any query."""
        self.health.record_query()
        canonical = self._canonicalize(query)
        reason = self._validate(canonical)
        if reason == REASON_EMPTY:
            # The empty set is contained in every stored set.
            self.health.record_short_circuit(reason)
            return float(self.exact.num_sets)
        if reason is not None:
            self.health.record_short_circuit(reason)
            return 0.0
        try:
            value = self.estimator.estimate(canonical)
        except Exception:
            return self._exact(canonical, REASON_MODEL_ERROR)
        if not math.isfinite(value) or value < 0.0 or value > self.exact.num_sets:
            return self._exact(canonical, REASON_INVALID_PREDICTION)
        self.health.record_model_answer()
        return float(value)

    def estimate_many(self, queries: Sequence[Iterable[int]]) -> np.ndarray:
        """Vectorized :meth:`estimate`: one model call, per-query fallback.

        Valid queries share a single :meth:`estimate_many` forward pass on
        the wrapped estimator; each returned prediction is then validated
        individually, so one NaN row falls back to the exact structure
        without dragging its batchmates with it.  If the batched model call
        itself raises, every query in the batch is answered exactly (and
        each is counted as a ``model_error`` fallback).
        """
        out = np.empty(len(queries), dtype=np.float64)
        model_rows: list[int] = []
        model_sets: list[tuple[int, ...]] = []
        for row, query in enumerate(queries):
            self.health.record_query()
            canonical = self._canonicalize(query)
            reason = self._validate(canonical)
            if reason == REASON_EMPTY:
                self.health.record_short_circuit(reason)
                out[row] = float(self.exact.num_sets)
            elif reason is not None:
                self.health.record_short_circuit(reason)
                out[row] = 0.0
            else:
                model_rows.append(row)
                model_sets.append(canonical)
        if not model_rows:
            return out
        try:
            values = np.asarray(
                self.estimator.estimate_many(model_sets), dtype=np.float64
            )
            if len(values) != len(model_sets):
                raise ValueError("batched estimate returned a short result")
        except Exception:
            for row, canonical in zip(model_rows, model_sets):
                out[row] = self._exact(canonical, REASON_MODEL_ERROR)
            return out
        for row, canonical, value in zip(model_rows, model_sets, values):
            if not math.isfinite(value) or value < 0.0 or value > self.exact.num_sets:
                out[row] = self._exact(canonical, REASON_INVALID_PREDICTION)
            else:
                self.health.record_model_answer()
                out[row] = float(value)
        return out

    def _exact(self, canonical: tuple[int, ...], reason: str) -> float:
        self.health.record_fallback(reason)
        return float(self.exact.cardinality(canonical))


class GuardedPredicateSuite(GuardedEstimator):
    """Reliability facade over :class:`PredicateCardinalitySuite`.

    Per-predicate failure semantics (``subset`` keeps the contract of
    :class:`GuardedCardinalityEstimator`; the other kinds differ where
    the mathematics differ):

    * **empty query** — ``N`` under subset (vacuous truth), ``0`` under
      superset/overlap/jaccard (stored sets are non-empty); both are the
      exact defined answers, served as short-circuits.
    * **OOV elements** — an exact subset miss (``0.0``); under the other
      kinds unknown ids do *not* force a miss (they never block superset
      containment and merely enlarge the Jaccard union), so the query is
      answered by the exact index, which implements precisely those
      semantics via empty posting lists.
    * **oversized query** — an exact subset miss; under the other kinds a
      huge query *helps* matching, so it is answered exactly rather than
      shown to a model that never trained on that size.
    * **model failure / invalid prediction** — exact predicate count.
    """

    structure_name = "predicate_cardinality"
    supports_predicates = True

    def __init__(self, suite, exact: InvertedIndex, max_query_size: int | None = None):
        super().__init__(suite, exact, max_query_size)
        self.suite = suite

    @classmethod
    def for_collection(cls, suite, collection) -> "GuardedPredicateSuite":
        return cls(
            suite,
            InvertedIndex(collection),
            max_query_size=_max_stored_size(collection),
        )

    def estimate(self, query: Iterable[int], predicate=None) -> float:
        """Predicate-conditioned estimate that never raises on any query."""
        return float(self.estimate_many([query], predicate=predicate)[0])

    def estimate_many(
        self, queries: Sequence[Iterable[int]], predicate=None
    ) -> np.ndarray:
        from ..sets.predicates import as_predicate

        predicate = as_predicate(predicate)
        spec = predicate.spec
        return self.estimate_many_keyed([(spec, query) for query in queries])

    def estimate_many_keyed(
        self, items: Sequence[tuple[str, Iterable[int]]]
    ) -> np.ndarray:
        """Mixed ``(predicate_spec, query)`` batch with per-row fallback.

        Valid rows share one :meth:`estimate_many_keyed` pass on the
        wrapped suite; every prediction is then validated individually,
        so a NaN row falls back to the exact predicate count without
        dragging its batchmates with it.
        """
        from ..sets.predicates import as_predicate

        out = np.empty(len(items), dtype=np.float64)
        model_rows: list[int] = []
        model_items: list[tuple] = []
        for row, (spec, query) in enumerate(items):
            self.health.record_query()
            try:
                predicate = as_predicate(spec)
            except (TypeError, ValueError):
                self.health.record_short_circuit(REASON_MALFORMED)
                out[row] = 0.0
                continue
            canonical = self._canonicalize(query)
            reason = self._validate(canonical)
            if reason == REASON_MALFORMED:
                self.health.record_short_circuit(reason)
                out[row] = 0.0
            elif reason == REASON_EMPTY:
                self.health.record_short_circuit(reason)
                out[row] = float(predicate.empty_query_count(self.exact.num_sets))
            elif reason is not None and predicate.kind == "subset":
                # OOV / oversized queries are exact subset misses.
                self.health.record_short_circuit(reason)
                out[row] = 0.0
            elif reason is not None:
                # Under the other predicates neither condition is a miss;
                # the exact index implements the defined OOV semantics.
                out[row] = self._exact(predicate, canonical, reason)
            else:
                model_rows.append(row)
                model_items.append((predicate, canonical))
        if not model_rows:
            return out
        keyed = [(predicate.spec, canonical) for predicate, canonical in model_items]
        try:
            values = np.asarray(
                self.suite.estimate_many_keyed(keyed), dtype=np.float64
            )
            if len(values) != len(keyed):
                raise ValueError("batched estimate returned a short result")
        except Exception:
            for row, (predicate, canonical) in zip(model_rows, model_items):
                out[row] = self._exact(predicate, canonical, REASON_MODEL_ERROR)
            return out
        for row, (predicate, canonical), value in zip(model_rows, model_items, values):
            if not math.isfinite(value) or value < 0.0 or value > self.exact.num_sets:
                out[row] = self._exact(predicate, canonical, REASON_INVALID_PREDICTION)
            else:
                self.health.record_model_answer()
                out[row] = float(value)
        return out

    def _exact(self, predicate, canonical: tuple[int, ...], reason: str) -> float:
        self.health.record_fallback(reason)
        return float(self.exact.count_predicate(predicate, canonical))


class GuardedSetIndex(GuardedEstimator):
    """Reliability facade over :class:`LearnedSetIndex`."""

    structure_name = "index"

    def __init__(self, index, exact: InvertedIndex | None = None,
                 max_query_size: int | None = None):
        if exact is None:
            exact = InvertedIndex(index.collection)
        if max_query_size is None:
            max_query_size = _max_stored_size(index.collection)
        super().__init__(index, exact, max_query_size)
        self.index = index

    def lookup(self, query: Iterable[int]) -> int | None:
        """First position containing ``query``; never raises, always exact.

        The learned index answers within its error window; a window miss,
        a non-finite prediction, or any exception falls back to the exact
        inverted index instead of the unguarded full-collection rescan.
        """
        self.health.record_query()
        canonical = self._canonicalize(query)
        reason = self._validate(canonical)
        if reason == REASON_EMPTY:
            # Empty query: contained in every set, so the first position.
            self.health.record_short_circuit(reason)
            return 0 if self.exact.num_sets else None
        if reason is not None:
            self.health.record_short_circuit(reason)
            return None
        if not hasattr(self.index, "predict_position"):
            # Sharded routers resolve positions internally (per-shard error
            # bounds + exhaustive shard scans) and expose no raw estimate.
            return self._direct_lookup(canonical)
        try:
            estimate = self.index.predict_position(canonical)
        except Exception:
            return self._exact(canonical, REASON_MODEL_ERROR)
        if not math.isfinite(estimate):
            return self._exact(canonical, REASON_INVALID_PREDICTION)
        try:
            found = self.index.lookup_with_estimate(
                canonical, estimate, fallback_scan=False
            )
        except Exception:
            return self._exact(canonical, REASON_MODEL_ERROR)
        if found is None:
            return self._exact(canonical, REASON_WINDOW_MISS)
        self.health.record_model_answer()
        return found

    def lookup_many(self, queries: Sequence[Iterable[int]]) -> list[int | None]:
        """Vectorized :meth:`lookup`: one prediction pass, per-query search.

        Position estimates for all valid queries come from one
        :meth:`predict_positions` call; each query is then resolved through
        the index's bounded search individually, preserving the single-query
        fallback reasons (non-finite prediction, window miss, model error).
        """
        results: list[int | None] = [None] * len(queries)
        model_rows: list[int] = []
        model_sets: list[tuple[int, ...]] = []
        for row, query in enumerate(queries):
            self.health.record_query()
            canonical = self._canonicalize(query)
            reason = self._validate(canonical)
            if reason == REASON_EMPTY:
                self.health.record_short_circuit(reason)
                results[row] = 0 if self.exact.num_sets else None
            elif reason is not None:
                self.health.record_short_circuit(reason)
                results[row] = None
            else:
                model_rows.append(row)
                model_sets.append(canonical)
        if not model_rows:
            return results
        if not hasattr(self.index, "predict_positions"):
            try:
                found_list = self.index.lookup_many(model_sets)
                if len(found_list) != len(model_sets):
                    raise ValueError("batched lookup returned a short result")
            except Exception:
                for row, canonical in zip(model_rows, model_sets):
                    results[row] = self._exact(canonical, REASON_MODEL_ERROR)
                return results
            for row, canonical, found in zip(model_rows, model_sets, found_list):
                if found is None:
                    results[row] = self._exact(canonical, REASON_WINDOW_MISS)
                else:
                    self.health.record_model_answer()
                    results[row] = found
            return results
        try:
            estimates = self.index.predict_positions(model_sets)
            if len(estimates) != len(model_sets):
                raise ValueError("batched prediction returned a short result")
        except Exception:
            for row, canonical in zip(model_rows, model_sets):
                results[row] = self._exact(canonical, REASON_MODEL_ERROR)
            return results
        for row, canonical, estimate in zip(model_rows, model_sets, estimates):
            if not math.isfinite(estimate):
                results[row] = self._exact(canonical, REASON_INVALID_PREDICTION)
                continue
            try:
                found = self.index.lookup_with_estimate(
                    canonical, float(estimate), fallback_scan=False
                )
            except Exception:
                results[row] = self._exact(canonical, REASON_MODEL_ERROR)
                continue
            if found is None:
                results[row] = self._exact(canonical, REASON_WINDOW_MISS)
            else:
                self.health.record_model_answer()
                results[row] = found
        return results

    def _direct_lookup(self, canonical: tuple[int, ...]) -> int | None:
        """Model path for indexes without a raw-estimate API (sharded)."""
        try:
            found = self.index.lookup(canonical)
        except Exception:
            return self._exact(canonical, REASON_MODEL_ERROR)
        if found is None:
            return self._exact(canonical, REASON_WINDOW_MISS)
        self.health.record_model_answer()
        return found

    def _exact(self, canonical: tuple[int, ...], reason: str) -> int | None:
        self.health.record_fallback(reason)
        return self.exact.first_position(canonical)


class GuardedBloomFilter(GuardedEstimator):
    """Reliability facade over :class:`LearnedBloomFilter`.

    Preserves the no-false-negative guarantee even when the classifier
    produces NaN scores: a non-finite score is answered by the exact
    inverted index (with the backup filter consulted for post-training
    inserts), so an indexed subset can never be reported absent.
    """

    structure_name = "bloom"

    def __init__(self, filter_, exact: InvertedIndex,
                 max_query_size: int | None = None):
        super().__init__(filter_, exact, max_query_size)
        self.filter = filter_

    @classmethod
    def for_collection(cls, filter_, collection) -> "GuardedBloomFilter":
        return cls(
            filter_,
            InvertedIndex(collection),
            max_query_size=_max_stored_size(collection),
        )

    def contains(self, query: Iterable[int]) -> bool:
        self.health.record_query()
        canonical = self._canonicalize(query)
        reason = self._validate(canonical)
        if reason == REASON_MALFORMED:
            self.health.record_short_circuit(reason)
            return False
        if reason == REASON_EMPTY:
            self.health.record_short_circuit(reason)
            return self.exact.num_sets > 0
        if reason is not None:
            # OOV / oversized subsets cannot be members of the trained
            # universe, but post-training inserts live in the backup filter.
            self.health.record_short_circuit(reason)
            return self._backup_contains(canonical)
        if not hasattr(self.filter, "score"):
            # Sharded routers answer membership directly (their parts and
            # backup filters are consulted internally).
            return self._direct_contains(canonical)
        try:
            score = self.filter.score(canonical)
        except Exception:
            return self._exact(canonical, REASON_MODEL_ERROR)
        if not math.isfinite(score):
            return self._exact(canonical, REASON_INVALID_PREDICTION)
        self.health.record_model_answer()
        if score >= self.filter.threshold:
            return True
        return self._backup_contains(canonical)

    def __contains__(self, query: Iterable[int]) -> bool:
        return self.contains(query)

    def contains_many(self, queries: Sequence[Iterable[int]]) -> np.ndarray:
        """Vectorized :meth:`contains`: one scoring pass, per-query fallback.

        Valid queries share one :meth:`score_many` forward pass; each score
        is validated individually (a NaN row falls back to the exact index
        alone) and sub-threshold rows consult the backup filter, exactly as
        the single-query path does.
        """
        answers = np.zeros(len(queries), dtype=bool)
        model_rows: list[int] = []
        model_sets: list[tuple[int, ...]] = []
        for row, query in enumerate(queries):
            self.health.record_query()
            canonical = self._canonicalize(query)
            reason = self._validate(canonical)
            if reason == REASON_MALFORMED:
                self.health.record_short_circuit(reason)
                answers[row] = False
            elif reason == REASON_EMPTY:
                self.health.record_short_circuit(reason)
                answers[row] = self.exact.num_sets > 0
            elif reason is not None:
                self.health.record_short_circuit(reason)
                answers[row] = self._backup_contains(canonical)
            else:
                model_rows.append(row)
                model_sets.append(canonical)
        if not model_rows:
            return answers
        if not hasattr(self.filter, "score_many"):
            try:
                found = self.filter.contains_many(model_sets)
                if len(found) != len(model_sets):
                    raise ValueError("batched membership returned a short result")
            except Exception:
                for row, canonical in zip(model_rows, model_sets):
                    answers[row] = self._exact(canonical, REASON_MODEL_ERROR)
                return answers
            for row, hit in zip(model_rows, found):
                self.health.record_model_answer()
                answers[row] = bool(hit)
            return answers
        try:
            scores = np.asarray(self.filter.score_many(model_sets), dtype=np.float64)
            if len(scores) != len(model_sets):
                raise ValueError("batched scoring returned a short result")
        except Exception:
            for row, canonical in zip(model_rows, model_sets):
                answers[row] = self._exact(canonical, REASON_MODEL_ERROR)
            return answers
        for row, canonical, score in zip(model_rows, model_sets, scores):
            if not math.isfinite(score):
                answers[row] = self._exact(canonical, REASON_INVALID_PREDICTION)
                continue
            self.health.record_model_answer()
            if score >= self.filter.threshold:
                answers[row] = True
            else:
                answers[row] = self._backup_contains(canonical)
        return answers

    def _direct_contains(self, canonical: tuple[int, ...]) -> bool:
        """Model path for filters without a raw-score API (sharded)."""
        try:
            answer = bool(self.filter.contains(canonical))
        except Exception:
            return self._exact(canonical, REASON_MODEL_ERROR)
        self.health.record_model_answer()
        return answer

    def _backup_contains(self, canonical: tuple[int, ...]) -> bool:
        backup = self.filter.backup
        return backup.contains_set(set(canonical)) if backup is not None else False

    def _exact(self, canonical: tuple[int, ...], reason: str) -> bool:
        self.health.record_fallback(reason)
        if self.exact.contains(canonical):
            return True
        return self._backup_contains(canonical)
