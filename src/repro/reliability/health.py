"""Per-structure health accounting for guarded serving.

Every guarded facade owns one :class:`HealthCounters` instance and records
where each query was answered: by the model, by the paired exact structure
(and *why* it fell back), or by a defined short-circuit for queries the
model should never see (empty, oversized, out-of-vocabulary, malformed).
Operators read :meth:`report_line` — the CLI prints it after every guarded
query — or :meth:`as_dict` for programmatic scraping.

The counts are stored in a :class:`repro.obs.MetricsRegistry` (reasons as
``reason`` labels), so a served guarded structure contributes
``repro_health_*`` series to the same Prometheus exposition as the
serving-layer counters.  The public surface — ``queries``,
``model_answers``, the :class:`collections.Counter` views, ``healthy``,
``report_line``, ``as_dict`` — is unchanged.
"""

from __future__ import annotations

from collections import Counter

from ..obs.metrics import MetricsRegistry

__all__ = ["HealthCounters"]


class HealthCounters:
    """Counters describing how a guarded structure has been answering.

    ``model_answers`` are the happy path; ``exact_fallbacks`` count answers
    the paired exact structure produced after a model failure (keyed by
    reason); ``short_circuits`` count queries answered by definition
    without touching model or exact structure (also keyed by reason).
    """

    def __init__(self, structure: str,
                 registry: MetricsRegistry | None = None):
        self.structure = structure
        self._init_metrics(registry if registry is not None else MetricsRegistry())

    def _init_metrics(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._queries = registry.counter(
            "repro_health_queries_total",
            "Queries answered by the guarded structure",
            labelnames=("structure",),
        ).labels(structure=self.structure)
        self._model_answers = registry.counter(
            "repro_health_model_answers_total",
            "Queries the model answered itself",
            labelnames=("structure",),
        ).labels(structure=self.structure)
        self._fallbacks = registry.counter(
            "repro_health_exact_fallbacks_total",
            "Queries answered by the paired exact structure, by reason",
            labelnames=("structure", "reason"),
        )
        self._short_circuits = registry.counter(
            "repro_health_short_circuits_total",
            "Queries answered by definition without model or exact, by reason",
            labelnames=("structure", "reason"),
        )

    # -- pickling (guarded structures are pickled whole) ----------------------

    def __getstate__(self):
        return {
            "structure": self.structure,
            "queries": self.queries,
            "model_answers": self.model_answers,
            "exact_fallbacks": dict(self.exact_fallbacks),
            "short_circuits": dict(self.short_circuits),
        }

    def __setstate__(self, state):
        self.structure = state["structure"]
        self._init_metrics(MetricsRegistry())
        self._queries.inc(state["queries"])
        self._model_answers.inc(state["model_answers"])
        for reason, count in state["exact_fallbacks"].items():
            self.record_fallback(reason, count)
        for reason, count in state["short_circuits"].items():
            self.record_short_circuit(reason, count)

    # -- recording -----------------------------------------------------------

    def record_query(self) -> None:
        self._queries.inc()

    def record_model_answer(self) -> None:
        self._model_answers.inc()

    def record_fallback(self, reason: str, count: int = 1) -> None:
        self._fallbacks.labels(structure=self.structure, reason=reason).inc(count)

    def record_short_circuit(self, reason: str, count: int = 1) -> None:
        self._short_circuits.labels(
            structure=self.structure, reason=reason
        ).inc(count)

    # -- aggregates ----------------------------------------------------------

    @property
    def queries(self) -> int:
        return int(self._queries.value)

    @property
    def model_answers(self) -> int:
        return int(self._model_answers.value)

    def _reason_counter(self, family) -> Counter:
        counts = Counter()
        for labels, child in family.items():
            if labels.get("structure") != self.structure:
                continue
            value = int(child.value)
            if value:
                counts[labels["reason"]] = value
        return counts

    @property
    def exact_fallbacks(self) -> Counter:
        """Fallback reason -> count (zero-valued reasons omitted)."""
        return self._reason_counter(self._fallbacks)

    @property
    def short_circuits(self) -> Counter:
        """Short-circuit reason -> count (zero-valued reasons omitted)."""
        return self._reason_counter(self._short_circuits)

    @property
    def total_fallbacks(self) -> int:
        return sum(self.exact_fallbacks.values())

    @property
    def total_short_circuits(self) -> int:
        return sum(self.short_circuits.values())

    @property
    def fallback_fraction(self) -> float:
        """Share of queries the model failed to answer itself."""
        queries = self.queries
        return self.total_fallbacks / queries if queries else 0.0

    def healthy(self, max_fallback_fraction: float = 0.5) -> bool:
        """Whether the model is still carrying its share of the traffic.

        A structure answering most queries through the exact fallback has
        effectively degenerated to the traditional structure and should be
        retrained (the §7.2 trigger, applied to serving health).
        """
        return self.fallback_fraction <= max_fallback_fraction

    # -- reporting -----------------------------------------------------------

    def report_line(self) -> str:
        """One-line operator summary (printed by the CLI's guarded mode)."""
        reasons = self.exact_fallbacks + self.short_circuits
        detail = (
            ",".join(f"{reason}:{count}" for reason, count in sorted(reasons.items()))
            or "none"
        )
        return (
            f"[health] {self.structure}: queries={self.queries} "
            f"model={self.model_answers} exact_fallback={self.total_fallbacks} "
            f"short_circuit={self.total_short_circuits} reasons={detail}"
        )

    def as_dict(self) -> dict:
        return {
            "structure": self.structure,
            "queries": self.queries,
            "model_answers": self.model_answers,
            "exact_fallbacks": dict(self.exact_fallbacks),
            "short_circuits": dict(self.short_circuits),
            "fallback_fraction": self.fallback_fraction,
        }

    def reset(self) -> None:
        self._queries.reset()
        self._model_answers.reset()
        self._fallbacks.reset()
        self._short_circuits.reset()
