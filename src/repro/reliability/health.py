"""Per-structure health accounting for guarded serving.

Every guarded facade owns one :class:`HealthCounters` instance and records
where each query was answered: by the model, by the paired exact structure
(and *why* it fell back), or by a defined short-circuit for queries the
model should never see (empty, oversized, out-of-vocabulary, malformed).
Operators read :meth:`report_line` — the CLI prints it after every guarded
query — or :meth:`as_dict` for programmatic scraping.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["HealthCounters"]


@dataclass
class HealthCounters:
    """Counters describing how a guarded structure has been answering.

    ``model_answers`` are the happy path; ``exact_fallbacks`` count answers
    the paired exact structure produced after a model failure (keyed by
    reason); ``short_circuits`` count queries answered by definition
    without touching model or exact structure (also keyed by reason).
    """

    structure: str
    queries: int = 0
    model_answers: int = 0
    exact_fallbacks: Counter = field(default_factory=Counter)
    short_circuits: Counter = field(default_factory=Counter)

    # -- recording -----------------------------------------------------------

    def record_query(self) -> None:
        self.queries += 1

    def record_model_answer(self) -> None:
        self.model_answers += 1

    def record_fallback(self, reason: str) -> None:
        self.exact_fallbacks[reason] += 1

    def record_short_circuit(self, reason: str) -> None:
        self.short_circuits[reason] += 1

    # -- aggregates ----------------------------------------------------------

    @property
    def total_fallbacks(self) -> int:
        return sum(self.exact_fallbacks.values())

    @property
    def total_short_circuits(self) -> int:
        return sum(self.short_circuits.values())

    @property
    def fallback_fraction(self) -> float:
        """Share of queries the model failed to answer itself."""
        return self.total_fallbacks / self.queries if self.queries else 0.0

    def healthy(self, max_fallback_fraction: float = 0.5) -> bool:
        """Whether the model is still carrying its share of the traffic.

        A structure answering most queries through the exact fallback has
        effectively degenerated to the traditional structure and should be
        retrained (the §7.2 trigger, applied to serving health).
        """
        return self.fallback_fraction <= max_fallback_fraction

    # -- reporting -----------------------------------------------------------

    def report_line(self) -> str:
        """One-line operator summary (printed by the CLI's guarded mode)."""
        reasons = Counter(self.exact_fallbacks) + Counter(self.short_circuits)
        detail = (
            ",".join(f"{reason}:{count}" for reason, count in sorted(reasons.items()))
            or "none"
        )
        return (
            f"[health] {self.structure}: queries={self.queries} "
            f"model={self.model_answers} exact_fallback={self.total_fallbacks} "
            f"short_circuit={self.total_short_circuits} reasons={detail}"
        )

    def as_dict(self) -> dict:
        return {
            "structure": self.structure,
            "queries": self.queries,
            "model_answers": self.model_answers,
            "exact_fallbacks": dict(self.exact_fallbacks),
            "short_circuits": dict(self.short_circuits),
            "fallback_fraction": self.fallback_fraction,
        }

    def reset(self) -> None:
        self.queries = 0
        self.model_answers = 0
        self.exact_fallbacks.clear()
        self.short_circuits.clear()
