"""Trend reporting over the scenario bench trajectory.

``results/BENCH_scenarios.json`` is append-only — every soak run adds one
JSON line per (scenario, seed).  A single run passing its SLOs says
nothing about *trajectory*: a p99 that drifts from 20% of budget to 95%
of budget across five runs is a regression in the making that the binary
pass flag hides until the day it flips.  :func:`scenario_trend` diffs the
latest record against the previous record with the same (scenario, seed,
fast) key and flags:

* pass -> fail transitions (the alarm already went off);
* SLO-margin drift — the fraction of p99 budget consumed grew by more
  than ``drift_threshold`` between consecutive runs;
* margin exhaustion — the latest run consumed over 90% of its p99
  budget, even if drift between the last two runs was small.

The report is pure data; the CLI (``repro scenario trend``) renders it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .grade import DEFAULT_RESULTS_PATH
from .spec import get_scenario

__all__ = ["scenario_trend", "load_records"]

#: Latest run consuming more than this fraction of an SLO budget is
#: flagged even without drift between the last two runs.
NEAR_LIMIT_FRACTION = 0.9


def load_records(path: str | Path | None = None) -> tuple[list[dict], int]:
    """Parse the JSONL trajectory; returns ``(records, skipped_lines)``.

    Unparseable lines are counted rather than fatal: one torn append from
    a crashed soak run must not brick trend reporting forever.
    """
    target = Path(path) if path is not None else DEFAULT_RESULTS_PATH
    records: list[dict] = []
    skipped = 0
    with target.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(record, dict) or "scenario" not in record:
                skipped += 1
                continue
            records.append(record)
    return records, skipped


def _slo_consumption(record: dict) -> dict[str, float]:
    """Fraction of each bounded SLO budget a run consumed (0 = idle,
    1 = at the limit, >1 = violating)."""
    try:
        slo = get_scenario(record["scenario"]).slo
    except (KeyError, TypeError):
        return {}
    obs = record.get("observations") or {}
    consumed: dict[str, float] = {}
    if slo.max_p99_ms and obs.get("p99_ms") is not None:
        consumed["p99_ms"] = float(obs["p99_ms"]) / float(slo.max_p99_ms)
    if slo.min_cache_hit_rate and obs.get("cache_hit_rate") is not None:
        # Invert: consumption = how much of the allowed *shortfall* from a
        # perfect hit rate has been eaten.
        budget = 1.0 - float(slo.min_cache_hit_rate)
        if budget > 0:
            consumed["cache_hit_rate"] = (
                1.0 - float(obs["cache_hit_rate"])
            ) / budget
    if slo.max_pending_deltas_after and obs.get("pending_deltas_after") is not None:
        consumed["pending_deltas_after"] = float(
            obs["pending_deltas_after"]
        ) / float(slo.max_pending_deltas_after)
    return consumed


def scenario_trend(
    path: str | Path | None = None,
    drift_threshold: float = 0.2,
) -> dict[str, Any]:
    """Diff the two most recent runs per (scenario, seed, fast) key.

    Returns ``{"keys": {...}, "flags": [...], "ok": bool, ...}`` where
    ``ok`` means no key regressed to failure, drifted by more than
    ``drift_threshold`` of an SLO budget, or sits above
    ``NEAR_LIMIT_FRACTION`` of one.
    """
    records, skipped = load_records(path)
    series: dict[tuple, list[dict]] = {}
    for record in records:
        key = (
            str(record.get("scenario")),
            record.get("seed"),
            bool(record.get("fast")),
        )
        series.setdefault(key, []).append(record)

    keys: dict[str, dict] = {}
    flags: list[str] = []
    for (scenario, seed, fast), runs in sorted(
        series.items(), key=lambda item: (item[0][0], str(item[0][1]), item[0][2])
    ):
        label = f"{scenario}/seed={seed}" + ("/fast" if fast else "")
        latest = runs[-1]
        previous = runs[-2] if len(runs) > 1 else None
        latest_slo = _slo_consumption(latest)
        entry: dict[str, Any] = {
            "runs": len(runs),
            "passed": bool(latest.get("passed")),
            "slo_consumption": latest_slo,
            "drift": {},
        }
        key_flags: list[str] = []
        if previous is not None:
            if previous.get("passed") and not latest.get("passed"):
                key_flags.append(
                    f"{label}: regressed pass -> fail "
                    f"({latest.get('violations')})"
                )
            for metric, consumed in latest_slo.items():
                before = _slo_consumption(previous).get(metric)
                if before is None:
                    continue
                drift = consumed - before
                entry["drift"][metric] = drift
                if drift > drift_threshold:
                    key_flags.append(
                        f"{label}: {metric} drifted from "
                        f"{before:.0%} to {consumed:.0%} of SLO budget"
                    )
        for metric, consumed in latest_slo.items():
            if consumed > NEAR_LIMIT_FRACTION and bool(latest.get("passed")):
                key_flags.append(
                    f"{label}: {metric} at {consumed:.0%} of SLO budget"
                )
        if not latest.get("passed") and previous is None:
            key_flags.append(f"{label}: latest run failed its SLOs")
        entry["flags"] = key_flags
        flags.extend(key_flags)
        keys[label] = entry

    return {
        "records": len(records),
        "skipped_lines": skipped,
        "drift_threshold": drift_threshold,
        "keys": keys,
        "flags": flags,
        "ok": not flags,
    }
