"""Workload synthesis for scenario runs.

Generates the three ingredient streams a scenario mixes:

* a **query pool** of stored subsets (in-universe positives) sampled per
  seed, read through a Zipf distribution whose skew ``alpha`` the runner
  interpolates over time (drift sharpens the head) and whose rank->entry
  mapping can rotate (drift moves the head);
* a **hot-key** overlay: a fixed handful of pool entries that a flash
  crowd hammers with probability ``hot_fraction``;
* **insert streams**: element combinations stored in *no* set (so exact
  truth stays unshadowed) for index overrides, and a mix of in-universe
  combos and out-of-universe sets for Bloom inserts — the same shapes the
  maintenance soak uses, promoted to a reusable generator.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..sets import InvertedIndex, SetCollection

__all__ = [
    "VOCAB",
    "make_collection",
    "stored_subsets",
    "absent_combos",
    "ZipfQueryStream",
    "index_insert_stream",
    "bloom_insert_stream",
]

#: Element-universe size for scenario collections; small enough that tiny
#: models train in CI, large enough that absent combinations are plentiful.
VOCAB = 26


def make_collection(rng: np.random.Generator, num_sets: int = 32) -> SetCollection:
    """A seed-deterministic collection of small sets over :data:`VOCAB`."""
    sets = []
    for _ in range(num_sets):
        size = int(rng.integers(2, 6))
        sets.append(tuple(int(e) for e in rng.choice(VOCAB, size=size, replace=False)))
    return SetCollection(sets)


def stored_subsets(
    collection: SetCollection,
    rng: np.random.Generator,
    max_size: int,
    count: int,
) -> list[tuple[int, ...]]:
    """In-universe positives: subsets of stored sets, sized 1..max_size."""
    subsets = []
    for _ in range(count):
        base = collection[int(rng.integers(len(collection)))]
        size = int(rng.integers(1, min(max_size, len(base)) + 1))
        subsets.append(
            tuple(sorted(int(e) for e in rng.choice(base, size=size, replace=False)))
        )
    return subsets


def absent_combos(
    truth: InvertedIndex,
    rng: np.random.Generator,
    count: int,
    max_size: int = 3,
) -> list[tuple[int, ...]]:
    """In-universe element combinations stored in no set (insert targets)."""
    combos: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    while len(combos) < count:
        size = int(rng.integers(2, max_size + 1))
        combo = tuple(sorted(int(e) for e in rng.choice(VOCAB, size=size, replace=False)))
        if combo in seen or truth.first_position(combo) is not None:
            continue
        seen.add(combo)
        combos.append(combo)
    return combos


class ZipfQueryStream:
    """Zipf-skewed reads over a fixed pool, with drift and hot-key knobs.

    ``alpha`` is supplied per draw (the runner interpolates it across
    steps); ``rotation`` shifts the rank->pool mapping so the hot head
    moves without changing the pool.  Hot-key draws bypass the Zipf ranks
    entirely and hit the first ``hot_keys`` pool entries.
    """

    def __init__(
        self,
        pool: list[tuple[int, ...]],
        rng: np.random.Generator,
        hot_fraction: float = 0.0,
        hot_keys: int = 3,
    ):
        if not pool:
            raise ValueError("query pool cannot be empty")
        self.pool = pool
        self.rng = rng
        self.hot_fraction = float(hot_fraction)
        self.hot_keys = min(int(hot_keys), len(pool))
        self._ranks = np.arange(1, len(pool) + 1, dtype=np.float64)

    def draw(
        self, count: int, alpha: float, rotation: int = 0
    ) -> list[tuple[int, ...]]:
        weights = self._ranks ** -max(alpha, 1e-6)
        weights /= weights.sum()
        indices = self.rng.choice(len(self.pool), size=count, p=weights)
        queries = []
        for index in indices:
            if self.hot_fraction and self.rng.random() < self.hot_fraction:
                queries.append(self.pool[int(self.rng.integers(self.hot_keys))])
            else:
                queries.append(self.pool[(int(index) + rotation) % len(self.pool)])
        return queries


def index_insert_stream(
    truth: InvertedIndex, rng: np.random.Generator, count: int
) -> Iterator[tuple[tuple[int, ...], int]]:
    """(combo, position) overrides targeting combos stored nowhere."""
    return iter(
        (combo, 1000 + offset)
        for offset, combo in enumerate(absent_combos(truth, rng, count))
    )


def bloom_insert_stream(
    truth: InvertedIndex, rng: np.random.Generator, count: int
) -> Iterator[tuple[int, ...]]:
    """Membership inserts: in-universe combos mixed with out-of-universe
    sets (the latter exercise the backup-filter path)."""
    in_universe = absent_combos(truth, rng, count // 2)
    out_of_universe = [
        (VOCAB + 100 + offset, VOCAB + 400 + offset)
        for offset in range(count - len(in_universe))
    ]
    return iter(in_universe + out_of_universe)
