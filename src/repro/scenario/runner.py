"""Scenario runner: drive the full stack through one declarative scenario.

For every run the runner stands up the same stack the maintenance soak
proved out — a K-sharded, guarded index and Bloom filter behind concurrent
:class:`~repro.serve.SetServer` instances with auto-refresh enabled — and
drives it with the scenario's workload mix while recording every
observation the SLO grader needs:

* correctness: every gathered answer is checked against exact truth
  (Bloom false negatives, index mismatches are *counted*, not asserted —
  grading is the grader's job);
* latency: the servers' own p50/p99 reservoirs;
* maintenance: refresh counts, failures, backoff skips, breaker state,
  delta backlog;
* degradation: degrade activations, requests served on the exact path,
  whether the server recovered;
* fault storms: a :class:`~repro.reliability.FaultInjector` installed
  over the spec's step window, with per-window deltas for refresh
  failures, wrong answers, and snapshot versions so "the old generation
  kept serving" is a measured fact.

Each server gets its own tracer and metrics registry (two servers must
never share one — idempotent registration would silently merge their
counters into one stream).
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from ..core import LearnedCardinalityEstimator, ModelConfig, TrainConfig
from ..maintain import (
    BackgroundRefresher,
    StalenessPolicy,
    default_rebuilder,
    mutate_through,
)
from ..obs.trace import Tracer
from ..reliability import (
    ALWAYS,
    FaultInjector,
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
)
from ..serve import SetServer
from ..sets import InvertedIndex
from ..shard import ShardedBuilder, ShardPlan
from .spec import ScenarioSpec
from .workload import (
    ZipfQueryStream,
    bloom_insert_stream,
    index_insert_stream,
    make_collection,
    stored_subsets,
)

__all__ = ["run_scenario", "NUM_SHARDS"]

NUM_SHARDS = 3

_MODEL_CONFIG = ModelConfig(kind="lsm", embedding_dim=2, phi_hidden=(4,), rho_hidden=(4,))
_TRAIN_CONFIG = TrainConfig(epochs=1, batch_size=64, lr=5e-3)


def _build_structures(collection, truth, seed: int):
    plan = ShardPlan.contiguous(collection, NUM_SHARDS)

    def build(task: str, max_subset_size: int):
        return ShardedBuilder(
            plan,
            workers=1,
            base_seed=seed % 1000,
            model_config=_MODEL_CONFIG,
            train_config=_TRAIN_CONFIG,
            max_subset_size=max_subset_size,
            num_negative_samples=50,
        ).build(task)

    # The index and Bloom filter exercise the sharded scatter-gather path;
    # the cardinality estimator stays unsharded so the guard sees raw model
    # scores — that is the path where fault injection surfaces as health
    # fallbacks and the server's graceful degradation can engage.
    estimator = LearnedCardinalityEstimator.build(
        collection,
        model_config=_MODEL_CONFIG,
        train_config=_TRAIN_CONFIG,
        max_subset_size=3,
    )
    return {
        "index": GuardedSetIndex(build("index", 3), truth),
        "bloom": GuardedBloomFilter(build("bloom", 2), truth),
        "cardinality": GuardedCardinalityEstimator(estimator, truth),
    }


def _make_injector(plan) -> FaultInjector:
    return FaultInjector(
        nan_predictions=ALWAYS if plan.nan_predictions else 0,
        nan_losses=ALWAYS if plan.nan_losses else 0,
    )


def run_scenario(
    spec: ScenarioSpec,
    seed: int,
    fast: bool = False,
    log: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run one scenario at one seed; returns the observation record.

    The record is JSON-ready and grader-ready — it contains counts and
    measured facts only, no pass/fail judgement.
    """
    if fast:
        spec = spec.fast()
    say = log if log is not None else (lambda _msg: None)
    started = time.monotonic()
    rng = np.random.default_rng(seed)
    collection = make_collection(rng)
    truth = InvertedIndex(collection)
    structures = _build_structures(collection, truth, seed)

    servers: dict[str, SetServer] = {}
    refreshers: dict[str, BackgroundRefresher] = {}
    for kind, structure in structures.items():
        servers[kind] = SetServer(
            structure,
            cache_size=spec.cache_size,
            tracer=Tracer(),
            degrade_window=spec.degrade_window,
            degrade_probe_every=4,
        ).start()
    for kind, server in servers.items():
        refreshers[kind] = BackgroundRefresher(
            server,
            default_rebuilder(
                server.structure,
                collection=collection,
                model_config=_MODEL_CONFIG,
                train_config=_TRAIN_CONFIG,
                max_subset_size=2 if kind == "bloom" else 3,
                num_negative_samples=50,
            ),
            policy=StalenessPolicy(
                max_deltas=spec.max_deltas,
                max_aux_fraction=None,
                min_interval_s=spec.min_refresh_interval_s,
            ),
            interval_s=0.05,
            backoff_base_s=0.05,
            backoff_max_s=0.5,
            breaker_failures=2,
            breaker_cooldown_s=0.25,
        ).start()

    pools = {
        "index": stored_subsets(collection, rng, 3, spec.query_pool_size),
        "bloom": stored_subsets(collection, rng, 2, spec.query_pool_size),
        "cardinality": stored_subsets(collection, rng, 3, spec.query_pool_size),
    }
    streams = {
        kind: ZipfQueryStream(
            pool, rng, hot_fraction=spec.hot_fraction, hot_keys=spec.hot_keys
        )
        for kind, pool in pools.items()
    }
    total_writes = spec.steps * spec.writes_per_step + 8
    index_inserts = index_insert_stream(truth, rng, total_writes)
    bloom_inserts = bloom_insert_stream(truth, rng, total_writes)
    inserted_positions: dict[tuple[int, ...], int] = {}
    inserted_members: list[tuple[int, ...]] = []

    plan = spec.fault_plan
    storm_start = int(spec.steps * plan.start_frac) if plan else None
    storm_end = int(spec.steps * plan.end_frac) if plan else None
    injector: FaultInjector | None = None

    obs: dict[str, Any] = {
        "ops": 0,
        "bloom_checks": 0,
        "index_checks": 0,
        "cardinality_checks": 0,
        "false_negatives": 0,
        "index_mismatches": 0,
        "invalid_cardinalities": 0,
        "mismatch_examples": [],
        "gather_errors": 0,
        "breaker_opened": False,
        "storm_checks": 0,
        "storm_wrong_answers": 0,
        "storm_refresh_failures": 0,
        "storm_failed_requests": 0,
        "post_storm_refreshes": 0,
        "snapshot_version_at_storm_start": None,
        "recovered": True,
    }
    storm_marks: dict[str, Any] = {}
    alpha_start, alpha_end = spec.zipf_alpha
    rotation_stride = max(spec.query_pool_size // spec.steps, 1)

    def _note_mismatch(kind: str, query: tuple[int, ...], got, want) -> None:
        if len(obs["mismatch_examples"]) < 8:
            obs["mismatch_examples"].append(
                {"kind": kind, "query": list(query), "got": repr(got), "want": repr(want)}
            )

    def _check(kind: str, query: tuple[int, ...], answer: Any, in_storm: bool) -> None:
        if in_storm:
            obs["storm_checks"] += 1
        if kind == "cardinality":
            # Cardinality is approximate by contract; the served invariant
            # is that every answer is a finite non-negative float (the
            # guard's fallback must absorb corrupted scores).
            obs["cardinality_checks"] += 1
            if not (np.isfinite(answer) and answer >= 0.0):
                obs["invalid_cardinalities"] += 1
                if in_storm:
                    obs["storm_wrong_answers"] += 1
                _note_mismatch(kind, query, answer, "finite >= 0")
            return
        if kind == "bloom":
            obs["bloom_checks"] += 1
            if not bool(answer):
                obs["false_negatives"] += 1
                if in_storm:
                    obs["storm_wrong_answers"] += 1
                _note_mismatch(kind, query, answer, True)
            return
        obs["index_checks"] += 1
        expected = inserted_positions.get(query, None)
        if expected is None:
            expected = truth.first_position(query)
        if answer != expected:
            obs["index_mismatches"] += 1
            if in_storm:
                obs["storm_wrong_answers"] += 1
            _note_mismatch(kind, query, answer, expected)

    try:
        for step in range(spec.steps):
            frac = step / max(spec.steps - 1, 1)
            alpha = alpha_start + (alpha_end - alpha_start) * frac
            rotation = step * rotation_stride if spec.rotate_ranks else 0
            in_storm = plan is not None and storm_start <= step < storm_end

            if plan is not None and step == storm_start:
                injector = _make_injector(plan).install()
                storm_marks = {
                    "failures": sum(r.failures for r in refreshers.values()),
                    "failed": sum(s.stats.requests_failed for s in servers.values()),
                    "versions": {k: s.snapshot.version for k, s in servers.items()},
                }
                obs["snapshot_version_at_storm_start"] = dict(storm_marks["versions"])
                say(f"  step {step}: fault storm begins")
            if injector is not None and step == storm_end:
                injector.uninstall()
                injector = None
                obs["storm_refresh_failures"] = (
                    sum(r.failures for r in refreshers.values())
                    - storm_marks["failures"]
                )
                obs["storm_failed_requests"] = (
                    sum(s.stats.requests_failed for s in servers.values())
                    - storm_marks["failed"]
                )
                storm_marks["refreshes_at_end"] = sum(
                    r.refreshes for r in refreshers.values()
                )
                say(f"  step {step}: fault storm ends")

            batch: list[tuple[str, tuple[int, ...], Any]] = []
            for kind, server in servers.items():
                queries = streams[kind].draw(spec.queries_per_step, alpha, rotation)
                if kind == "index":
                    queries.extend(list(inserted_positions)[-3:])
                elif kind == "bloom":
                    queries.extend(inserted_members[-3:])
                for query in queries:
                    batch.append((kind, query, server.submit(query)))

            for _ in range(spec.writes_per_step):
                try:
                    combo, position = next(index_inserts)
                except StopIteration:
                    break
                mutate_through(
                    servers["index"],
                    lambda inner, c=combo, p=position: inner.insert_update(c, p),
                )
                inserted_positions[combo] = position
                obs["ops"] += 1
            for _ in range(spec.writes_per_step):
                try:
                    member = next(bloom_inserts)
                except StopIteration:
                    break
                canonical = tuple(sorted(member))
                mutate_through(
                    servers["bloom"], lambda inner, c=canonical: inner.insert(c)
                )
                inserted_members.append(canonical)
                obs["ops"] += 1

            for kind, query, future in batch:
                try:
                    answer = future.result(timeout=60.0)
                except Exception:
                    obs["gather_errors"] += 1
                    continue
                obs["ops"] += 1
                _check(kind, query, answer, in_storm)

            if any(r.breaker_state != "closed" for r in refreshers.values()):
                obs["breaker_opened"] = True
            if spec.step_sleep_s:
                time.sleep(spec.step_sleep_s)

        if injector is not None:  # storm window ran to the final step
            injector.uninstall()
            injector = None
            obs["storm_refresh_failures"] = (
                sum(r.failures for r in refreshers.values()) - storm_marks["failures"]
            )
            obs["storm_failed_requests"] = (
                sum(s.stats.requests_failed for s in servers.values())
                - storm_marks["failed"]
            )
            storm_marks["refreshes_at_end"] = sum(
                r.refreshes for r in refreshers.values()
            )

        # -- settle: wait out in-flight refreshes and recovery ---------------
        deadline = time.monotonic() + spec.settle_timeout_s

        def _settled() -> bool:
            if obs["breaker_opened"] is False and any(
                r.breaker_state != "closed" for r in refreshers.values()
            ):
                obs["breaker_opened"] = True
            total = sum(r.refreshes for r in refreshers.values())
            if plan is not None:
                baseline = storm_marks.get("refreshes_at_end", 0)
                refreshes_seen = total - baseline
            else:
                refreshes_seen = total
            if (spec.slo.min_refreshes or 0) > refreshes_seen:
                return False
            if spec.slo.max_pending_deltas_after is not None and any(
                r.collect_state().pending_deltas > spec.slo.max_pending_deltas_after
                for r in refreshers.values()
            ):
                return False
            if plan is not None and any(s.degraded for s in servers.values()):
                return False
            return True

        while time.monotonic() < deadline and not _settled():
            time.sleep(0.1)

        # -- final verification pass on the settled stack --------------------
        for kind, server in servers.items():
            max_size = 2 if kind == "bloom" else 3
            for query in stored_subsets(collection, rng, max_size, 24):
                try:
                    _check(kind, query, server.query(query, timeout=60.0), False)
                    obs["ops"] += 1
                except Exception:
                    obs["gather_errors"] += 1
        for combo in list(inserted_positions)[-12:]:
            try:
                _check("index", combo, servers["index"].query(combo, timeout=60.0), False)
                obs["ops"] += 1
            except Exception:
                obs["gather_errors"] += 1
        for member in inserted_members[-12:]:
            try:
                _check("bloom", member, servers["bloom"].query(member, timeout=60.0), False)
                obs["ops"] += 1
            except Exception:
                obs["gather_errors"] += 1

        # -- fold in server / maintainer telemetry ---------------------------
        percentiles = [s.stats.latency_percentiles_ms() for s in servers.values()]
        obs["p50_ms"] = max(p["p50_ms"] for p in percentiles)
        obs["p99_ms"] = max(p["p99_ms"] for p in percentiles)
        cache_totals = [s.cache.as_dict() for s in servers.values()]
        lookups = sum(c["hits"] + c["misses"] for c in cache_totals)
        obs["cache_hit_rate"] = (
            sum(c["hits"] for c in cache_totals) / lookups if lookups else 0.0
        )
        obs["failed_requests"] = sum(s.stats.requests_failed for s in servers.values())
        obs["refreshes"] = sum(r.refreshes for r in refreshers.values())
        obs["refresh_failures"] = sum(r.failures for r in refreshers.values())
        obs["backoff_skips"] = sum(r.backoff_skips for r in refreshers.values())
        obs["replayed_deltas"] = sum(r.replayed for r in refreshers.values())
        obs["pending_deltas_after"] = max(
            r.collect_state().pending_deltas for r in refreshers.values()
        )
        obs["degrade_activations"] = sum(
            s.degrade_activations for s in servers.values()
        )
        obs["degraded_served"] = sum(
            s.stats_dict()["degraded_served"] for s in servers.values()
        )
        obs["recovered"] = not any(s.degraded for s in servers.values())
        if plan is not None:
            obs["post_storm_refreshes"] = obs["refreshes"] - storm_marks.get(
                "refreshes_at_end", 0
            )
            versions = storm_marks.get("versions", {})
            obs["old_generation_served"] = (
                obs["storm_wrong_answers"] == 0
                and obs["storm_failed_requests"] == 0
                and all(
                    servers[k].snapshot.version >= v for k, v in versions.items()
                )
            )
        obs["snapshot_versions"] = {
            kind: server.snapshot.version for kind, server in servers.items()
        }
        obs["wall_s"] = round(time.monotonic() - started, 3)
        return obs
    finally:
        if injector is not None:
            injector.uninstall()
        for refresher in refreshers.values():
            refresher.close()
            refresher.delta.detach_all()
        for server in servers.values():
            server.maintainer = None
            server.close()
