"""Declarative robustness scenarios with SLO grading.

The scenario suite promotes the hand-rolled maintenance soak into a
first-class robustness harness: :mod:`~repro.scenario.spec` declares the
workload shapes and their SLOs, :mod:`~repro.scenario.workload`
synthesizes the skewed/drifting/hot/faulty streams,
:mod:`~repro.scenario.runner` drives the full served + sharded + guarded
+ auto-refresh stack through them, and :mod:`~repro.scenario.grade`
turns observations into explicit SLO violations and one JSON line per
run in ``results/BENCH_scenarios.json``.

Entry points: ``repro scenario list`` / ``repro scenario run`` (CLI) and
:func:`run_scenario` + :func:`grade` (programmatic).
"""

from .grade import (
    DEFAULT_RESULTS_PATH,
    append_record,
    grade,
    make_record,
    scenario_registry,
)
from .runner import NUM_SHARDS, run_scenario
from .spec import (
    FAST_SUBSET,
    SCENARIOS,
    SLO,
    FaultPlan,
    ScenarioSpec,
    get_scenario,
    scenario_names,
)
from .trend import load_records, scenario_trend
from .workload import (
    VOCAB,
    ZipfQueryStream,
    absent_combos,
    bloom_insert_stream,
    index_insert_stream,
    make_collection,
    stored_subsets,
)

__all__ = [
    "DEFAULT_RESULTS_PATH",
    "FAST_SUBSET",
    "NUM_SHARDS",
    "SCENARIOS",
    "SLO",
    "VOCAB",
    "FaultPlan",
    "ScenarioSpec",
    "ZipfQueryStream",
    "absent_combos",
    "append_record",
    "bloom_insert_stream",
    "get_scenario",
    "grade",
    "index_insert_stream",
    "load_records",
    "make_collection",
    "make_record",
    "run_scenario",
    "scenario_names",
    "scenario_registry",
    "scenario_trend",
    "stored_subsets",
]
