"""Declarative robustness scenarios and their SLOs.

A :class:`ScenarioSpec` describes one hostile workload shape — how many
steps to drive, how reads are skewed (time-varying Zipf), how many writes
ride along, whether a fault storm fires mid-run — plus the :class:`SLO`
the run must satisfy.  The specs are pure data: the
:mod:`repro.scenario.runner` interprets them against the full served +
sharded + guarded + auto-refresh stack, and :mod:`repro.scenario.grade`
checks the observations against the SLO.

The built-in suite (:data:`SCENARIOS`) covers the failure modes the paper
stack must survive in production:

* ``read-heavy`` — skewed repeat reads; the cache must absorb them and
  tail latency must stay flat;
* ``write-heavy`` — sustained inserts must trip the staleness policy,
  refresh in the background, and drain the delta backlog;
* ``drift`` — the Zipf head rotates and sharpens over time while writes
  accumulate (ACE's motivation: set workloads are skewed *and* moving);
* ``hot-key`` — a flash crowd hammers a handful of keys; the cache must
  serve the crowd;
* ``fault-storm`` — mid-run, every model prediction goes NaN and every
  training loss diverges: guarded fallbacks must keep answers exact, the
  server must degrade to the exact path, failed refreshes must back off
  and trip the breaker, and the old generation must keep serving until a
  post-storm refresh recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "SLO",
    "FaultPlan",
    "ScenarioSpec",
    "SCENARIOS",
    "FAST_SUBSET",
    "get_scenario",
    "scenario_names",
]


@dataclass(frozen=True)
class FaultPlan:
    """Mid-run fault storm: an installed ``FaultInjector`` window.

    The storm runs over ``[start_frac, end_frac)`` of the scenario's
    steps.  During it, the chosen fault budgets are unlimited
    (:data:`repro.reliability.ALWAYS`).
    """

    start_frac: float = 0.33
    end_frac: float = 0.66
    nan_predictions: bool = True
    nan_losses: bool = True

    def __post_init__(self):
        if not 0.0 <= self.start_frac < self.end_frac <= 1.0:
            raise ValueError("fault window must satisfy 0 <= start < end <= 1")


@dataclass(frozen=True)
class SLO:
    """Pass/fail thresholds graded after a scenario run.

    ``None`` disables a check.  The hard invariants (zero Bloom false
    negatives, index exactness, zero torn snapshots) default to enabled
    because no scenario is allowed to trade them away.
    """

    max_p99_ms: float | None = 750.0
    max_false_negatives: int = 0
    max_index_mismatches: int = 0
    max_failed_requests: int = 0
    min_cache_hit_rate: float | None = None
    min_refreshes: int | None = None
    max_pending_deltas_after: int | None = None
    min_refresh_failures: int | None = None
    require_backoff_engaged: bool = False
    require_breaker_opened: bool = False
    require_old_generation_serving: bool = False
    min_degrade_activations: int | None = None


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative robustness scenario."""

    name: str
    description: str
    steps: int = 30
    queries_per_step: int = 10
    writes_per_step: int = 0
    #: Zipf skew over the query pool, linearly interpolated start -> end.
    zipf_alpha: tuple[float, float] = (1.1, 1.1)
    #: Rotate the rank->query mapping over time (the hot head moves).
    rotate_ranks: bool = False
    #: Fraction of reads hammering the fixed hot-key set.
    hot_fraction: float = 0.0
    hot_keys: int = 3
    query_pool_size: int = 40
    #: Staleness trip point for the auto-refresh policy.
    max_deltas: int = 40
    min_refresh_interval_s: float = 0.3
    cache_size: int = 256
    degrade_window: int = 16
    #: Wall-clock pacing per step; fault scenarios need real time to pass
    #: so backoff windows and breaker cooldowns are exercised.
    step_sleep_s: float = 0.0
    settle_timeout_s: float = 90.0
    fault_plan: FaultPlan | None = None
    slo: SLO = field(default_factory=SLO)

    def __post_init__(self):
        if self.steps < 4:
            raise ValueError("steps must be >= 4")
        if self.queries_per_step < 1:
            raise ValueError("queries_per_step must be >= 1")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")

    def fast(self) -> "ScenarioSpec":
        """A scaled-down variant for CI smoke runs (same invariants)."""
        return replace(
            self,
            steps=max(self.steps // 3, 8),
            queries_per_step=max(self.queries_per_step // 2, 4),
            # Scale the trip point with the op count, or a scenario that
            # trips the staleness policy at full scale never would here.
            max_deltas=max(self.max_deltas // 3, 8),
            settle_timeout_s=min(self.settle_timeout_s, 60.0),
            step_sleep_s=min(self.step_sleep_s, 0.15),
        )


def _build_suite() -> dict[str, ScenarioSpec]:
    suite = [
        ScenarioSpec(
            name="read-heavy",
            description="Skewed repeat reads, no writes: the cache must "
            "absorb the head and tail latency must stay flat.",
            steps=36,
            queries_per_step=16,
            writes_per_step=0,
            zipf_alpha=(1.1, 1.1),
            slo=SLO(max_p99_ms=500.0, min_cache_hit_rate=0.3),
        ),
        ScenarioSpec(
            name="write-heavy",
            description="Sustained inserts: the staleness policy must trip, "
            "refresh in the background, and drain the backlog.",
            steps=30,
            queries_per_step=6,
            writes_per_step=4,
            slo=SLO(min_refreshes=1, max_pending_deltas_after=40),
        ),
        ScenarioSpec(
            name="drift",
            description="Time-varying Zipf skew (sharpening head, rotating "
            "ranks) plus writes: drift must trip the staleness policy.",
            steps=36,
            queries_per_step=10,
            writes_per_step=3,
            zipf_alpha=(0.6, 1.8),
            rotate_ranks=True,
            slo=SLO(min_refreshes=1),
        ),
        ScenarioSpec(
            name="hot-key",
            description="Flash crowd on a handful of keys: the cache must "
            "serve the crowd without touching the model.",
            steps=30,
            queries_per_step=16,
            writes_per_step=0,
            zipf_alpha=(1.3, 1.3),
            hot_fraction=0.85,
            slo=SLO(max_p99_ms=500.0, min_cache_hit_rate=0.5),
        ),
        ScenarioSpec(
            name="fault-storm",
            description="Mid-run NaN storm over predictions and training "
            "losses: answers must stay exact via guarded fallback, the "
            "server must degrade gracefully, failed refreshes must back "
            "off and open the breaker, and the old generation must keep "
            "serving until a post-storm refresh recovers.",
            steps=36,
            queries_per_step=10,
            writes_per_step=4,
            max_deltas=24,
            min_refresh_interval_s=0.2,
            cache_size=0,  # health counters must see every read
            degrade_window=8,  # a full fallback window fits inside the storm
            step_sleep_s=0.25,
            fault_plan=FaultPlan(),
            slo=SLO(
                max_p99_ms=2000.0,
                min_refreshes=1,
                min_refresh_failures=1,
                require_backoff_engaged=True,
                require_breaker_opened=True,
                require_old_generation_serving=True,
                min_degrade_activations=1,
            ),
        ),
    ]
    return {spec.name: spec for spec in suite}


#: The built-in scenario suite, keyed by name.
SCENARIOS: dict[str, ScenarioSpec] = _build_suite()

#: The CI smoke subset: one cheap happy-path shape, one maintenance shape,
#: and the fault storm (the grader's raison d'être gates CI).
FAST_SUBSET: tuple[str, ...] = ("read-heavy", "write-heavy", "fault-storm")


def scenario_names() -> list[str]:
    """Names of the built-in scenarios, in suite order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a built-in scenario by name (KeyError names the suite)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None
