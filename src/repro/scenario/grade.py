"""SLO grading and the scenario bench trajectory sink.

:func:`grade` turns one run's observation record into an explicit list of
violations — every violation names the SLO bound and the observed value,
so a failed CI run reads like a diagnosis, not a boolean.  Each graded
run increments the module's ``repro_scenario_*`` metrics
(:func:`scenario_registry`) and can be appended as one JSON line to
``results/BENCH_scenarios.json`` (:func:`append_record`), the same
one-line-per-run trajectory convention the other ``BENCH_*`` files use,
so robustness regressions are diffable across PRs.

Each SLO traces to a source guarantee (see DESIGN.md): Bloom false
negatives to the paper's no-false-negative invariant, index mismatches to
Algorithm 2's locally-bounded error contract, torn snapshots to the
snapshot holder's atomicity, refresh/backoff/breaker bounds to the
maintenance subsystem's "the old generation keeps serving" promise.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from ..obs.metrics import MetricsRegistry
from .spec import ScenarioSpec

__all__ = [
    "DEFAULT_RESULTS_PATH",
    "append_record",
    "grade",
    "make_record",
    "scenario_registry",
]

DEFAULT_RESULTS_PATH = Path("results") / "BENCH_scenarios.json"

_REGISTRY = MetricsRegistry()
_RUNS = _REGISTRY.counter(
    "repro_scenario_runs_total", "Scenario runs graded"
)
_PASSED = _REGISTRY.counter(
    "repro_scenario_passed_total", "Scenario runs that met every SLO"
)
_FAILED = _REGISTRY.counter(
    "repro_scenario_failed_total", "Scenario runs with at least one violation"
)
_VIOLATIONS = _REGISTRY.counter(
    "repro_scenario_violations_total", "Individual SLO violations observed"
)


def scenario_registry() -> MetricsRegistry:
    """The registry holding the ``repro_scenario_*`` grading metrics."""
    return _REGISTRY


def grade(spec: ScenarioSpec, obs: dict[str, Any]) -> list[str]:
    """Check one run's observations against the spec's SLO.

    Returns the list of violations (empty = pass).  For fault-storm
    scenarios, ``min_refreshes`` is evaluated against the *post-storm*
    refresh count — a refresh that landed before the storm proves
    nothing about recovery.
    """
    slo = spec.slo
    violations: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            violations.append(message)

    check(
        obs["false_negatives"] <= slo.max_false_negatives,
        f"bloom false negatives: {obs['false_negatives']} > "
        f"{slo.max_false_negatives} (no-false-negative invariant)",
    )
    check(
        obs["index_mismatches"] <= slo.max_index_mismatches,
        f"index mismatches: {obs['index_mismatches']} > "
        f"{slo.max_index_mismatches} (Algorithm 2 exactness contract)",
    )
    check(
        obs.get("invalid_cardinalities", 0) == 0,
        f"non-finite/negative cardinalities served: "
        f"{obs.get('invalid_cardinalities', 0)} (guard fallback contract)",
    )
    torn = obs["failed_requests"] + obs["gather_errors"]
    check(
        torn <= slo.max_failed_requests,
        f"failed/torn requests: {torn} > {slo.max_failed_requests} "
        "(snapshot atomicity)",
    )
    if slo.max_p99_ms is not None:
        check(
            obs["p99_ms"] <= slo.max_p99_ms,
            f"p99 latency: {obs['p99_ms']:.1f}ms > {slo.max_p99_ms:.1f}ms",
        )
    if slo.min_cache_hit_rate is not None:
        check(
            obs["cache_hit_rate"] >= slo.min_cache_hit_rate,
            f"cache hit rate: {obs['cache_hit_rate']:.3f} < "
            f"{slo.min_cache_hit_rate:.3f}",
        )
    if slo.min_refreshes is not None:
        refreshes = (
            obs.get("post_storm_refreshes", obs["refreshes"])
            if spec.fault_plan is not None
            else obs["refreshes"]
        )
        label = "post-storm refreshes" if spec.fault_plan else "refreshes"
        check(
            refreshes >= slo.min_refreshes,
            f"{label}: {refreshes} < {slo.min_refreshes}",
        )
    if slo.max_pending_deltas_after is not None:
        check(
            obs["pending_deltas_after"] <= slo.max_pending_deltas_after,
            f"pending deltas after settle: {obs['pending_deltas_after']} > "
            f"{slo.max_pending_deltas_after}",
        )
    if slo.min_refresh_failures is not None:
        check(
            obs["refresh_failures"] >= slo.min_refresh_failures,
            f"refresh failures: {obs['refresh_failures']} < "
            f"{slo.min_refresh_failures} (storm never bit)",
        )
    if slo.require_backoff_engaged:
        check(
            obs["backoff_skips"] >= 1,
            "failure backoff never suppressed a tripped policy evaluation",
        )
    if slo.require_breaker_opened:
        check(bool(obs["breaker_opened"]), "refresh circuit breaker never opened")
    if slo.require_old_generation_serving:
        check(
            bool(obs.get("old_generation_served")),
            "old generation did not keep serving through the storm "
            f"(wrong={obs['storm_wrong_answers']}, "
            f"failed={obs['storm_failed_requests']})",
        )
    if slo.min_degrade_activations is not None:
        check(
            obs["degrade_activations"] >= slo.min_degrade_activations,
            f"degrade activations: {obs['degrade_activations']} < "
            f"{slo.min_degrade_activations} (server never shed to exact)",
        )

    _RUNS.inc()
    if violations:
        _FAILED.inc()
        _VIOLATIONS.inc(len(violations))
    else:
        _PASSED.inc()
    return violations


def make_record(
    spec: ScenarioSpec,
    seed: int,
    obs: dict[str, Any],
    violations: list[str],
    fast: bool = False,
) -> dict[str, Any]:
    """The one-JSON-line-per-run record appended to the bench trajectory."""
    return {
        "bench": "scenarios",
        "scenario": spec.name,
        "seed": seed,
        "fast": fast,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "passed": not violations,
        "violations": violations,
        "observations": obs,
    }


def append_record(record: dict[str, Any], path: Path | str | None = None) -> Path:
    """Append one run record as a JSON line (creating parents as needed)."""
    target = Path(path) if path is not None else DEFAULT_RESULTS_PATH
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return target
