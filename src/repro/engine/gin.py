"""GIN-style index over a :class:`SetTable`.

PostgreSQL answers ``hstore @> query`` predicates with a GIN (generalized
inverted) index; this wrapper provides the same capability — and the same
memory cost profile, which is the second column of Table 12 — on top of the
exact inverted index from :mod:`repro.sets.inverted`.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from ..nn.serialize import pickled_size_bytes
from ..sets.inverted import InvertedIndex
from ..sets.predicates import SUBSET, as_predicate
from .table import SetTable

__all__ = ["GinIndex"]


class GinIndex:
    """Inverted index on the set column of a table."""

    def __init__(self, table: SetTable):
        started = time.perf_counter()
        self._inverted = InvertedIndex(table.to_collection())
        self.build_seconds = time.perf_counter() - started
        self.table = table
        self._size_bytes: int | None = None

    def count_contains(self, query: Iterable[int]) -> int:
        """``COUNT(*) WHERE set @> query`` via posting-list intersection."""
        return self._inverted.cardinality(query)

    def count_matching(self, query: Iterable[int], predicate=SUBSET) -> int:
        """``COUNT(*)`` under any predicate, on the posting lists.

        Subset stays the classic rarest-first intersection; superset /
        overlap / Jaccard run the per-position overlap-count algorithm of
        :meth:`InvertedIndex.count_predicate` (one posting-list pass per
        query element, then a vectorized size comparison).
        """
        return self._inverted.count_predicate(as_predicate(predicate), query)

    def matching_rows(self, query: Iterable[int], predicate=SUBSET) -> np.ndarray:
        predicate = as_predicate(predicate)
        if predicate.kind == "subset":
            return self._inverted.matching_positions(query)
        return self._inverted.matching_positions_predicate(predicate, query)

    def size_bytes(self) -> int:
        """Serialized size of the posting lists (the index's footprint).

        The postings are immutable after construction (a rebuild goes
        through ``create_gin_index``, which makes a fresh instance), so
        the footprint is computed once and cached — repeated calls used
        to materialize and re-pickle every posting list each time.
        """
        if self._size_bytes is None:
            self._size_bytes = pickled_size_bytes(
                {e: self._inverted.posting(e) for e in self._inverted.elements()}
            )
        return self._size_bytes
