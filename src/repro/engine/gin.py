"""GIN-style index over a :class:`SetTable`.

PostgreSQL answers ``hstore @> query`` predicates with a GIN (generalized
inverted) index; this wrapper provides the same capability — and the same
memory cost profile, which is the second column of Table 12 — on top of the
exact inverted index from :mod:`repro.sets.inverted`.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from ..nn.serialize import pickled_size_bytes
from ..sets.inverted import InvertedIndex
from .table import SetTable

__all__ = ["GinIndex"]


class GinIndex:
    """Inverted index on the set column of a table."""

    def __init__(self, table: SetTable):
        started = time.perf_counter()
        self._inverted = InvertedIndex(table.to_collection())
        self.build_seconds = time.perf_counter() - started
        self.table = table

    def count_contains(self, query: Iterable[int]) -> int:
        """``COUNT(*) WHERE set @> query`` via posting-list intersection."""
        return self._inverted.cardinality(query)

    def matching_rows(self, query: Iterable[int]) -> np.ndarray:
        return self._inverted.matching_positions(query)

    def size_bytes(self) -> int:
        """Serialized size of the posting lists (the index's footprint)."""
        return pickled_size_bytes(
            {e: self._inverted.posting(e) for e in self._inverted.elements()}
        )
