"""An hstore-style table: rows carrying a set-valued attribute.

Stands in for the paper's PostgreSQL 13 + ``hstore`` setup (§8.5.3): the
RW collection is imported as a table whose set column holds element ids,
and ``COUNT(*) WHERE sets @> query`` is answered by the engine in
:mod:`repro.engine.query`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..nn.serialize import pickled_size_bytes
from ..sets.collection import SetCollection

__all__ = ["SetTable"]


class SetTable:
    """Append-only table of ``(row_id, element_id_set)`` rows."""

    def __init__(self, name: str = "sets"):
        self.name = name
        self._rows: list[tuple[int, ...]] = []

    @classmethod
    def from_collection(cls, collection: SetCollection, name: str = "sets") -> "SetTable":
        table = cls(name)
        for stored in collection:
            table.insert(stored)
        return table

    def insert(self, elements: Iterable[int]) -> int:
        """Insert a row; returns its row id."""
        canonical = tuple(sorted(set(int(e) for e in elements)))
        if not canonical:
            raise ValueError("the set attribute cannot be empty")
        self._rows.append(canonical)
        return len(self._rows) - 1

    def row(self, row_id: int) -> tuple[int, ...]:
        return self._rows[row_id]

    def scan(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Full-table scan yielding ``(row_id, set)``."""
        return enumerate(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def max_element_id(self) -> int:
        return max(s[-1] for s in self._rows)

    def heap_bytes(self) -> int:
        """Approximate on-heap size of the stored rows."""
        return pickled_size_bytes(self._rows)

    def to_collection(self) -> SetCollection:
        """View the table as a :class:`SetCollection` (row order preserved)."""
        return SetCollection(self._rows)
