"""User-defined function registry.

The paper implements its cardinality estimator as a PostgreSQL UDF
(§8.5.3); the mini engine mirrors that: a UDF is a named callable the query
planner can route a COUNT query to instead of executing it exactly.

A UDF may additionally expose a *batch* path: :class:`ServedUdf` wraps a
:class:`repro.serve.SetServer` so a ``udf:`` plan executed over many
queries at once rides the server's micro-batcher instead of looping
single-query model calls.

Predicates: a plain callable is assumed to implement the paper's subset
semantics only; a UDF that understands the full predicate family
advertises it with a truthy ``supports_predicates`` attribute and accepts
a ``predicate`` keyword.  Routing a non-subset predicate to a UDF without
that attribute is a :class:`ValueError`, not a silently wrong answer.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..sets.predicates import SUBSET, Predicate, as_predicate

__all__ = ["ServedUdf", "UdfRegistry", "invoke_udf", "invoke_udf_many"]

Udf = Callable[[tuple[int, ...]], float]


def invoke_udf(
    function: Udf, canonical: tuple[int, ...], predicate: Predicate = SUBSET
) -> float:
    """Call one UDF under one predicate, enforcing the support contract."""
    predicate = as_predicate(predicate)
    if getattr(function, "supports_predicates", False):
        return float(function(canonical, predicate=predicate))
    if predicate.kind != "subset":
        raise ValueError(
            f"UDF does not support predicate {predicate.spec!r}; "
            "only subset-containment UDFs can omit supports_predicates"
        )
    return float(function(canonical))


def invoke_udf_many(
    function: Udf,
    canonicals: Sequence[tuple[int, ...]],
    predicate: Predicate = SUBSET,
) -> list[float]:
    """Batched invocation; uses the UDF's ``many`` path when it has one."""
    predicate = as_predicate(predicate)
    many = getattr(function, "many", None)
    if callable(many):
        if getattr(function, "supports_predicates", False):
            return [float(value) for value in many(canonicals, predicate=predicate)]
        if predicate.kind != "subset":
            raise ValueError(
                f"UDF does not support predicate {predicate.spec!r}; "
                "only subset-containment UDFs can omit supports_predicates"
            )
        return [float(value) for value in many(canonicals)]
    return [invoke_udf(function, canonical, predicate) for canonical in canonicals]


class ServedUdf:
    """A UDF backed by a serving :class:`~repro.serve.SetServer`.

    Scalar calls delegate to the server's blocking :meth:`query`; the
    engine's batched execution path uses :meth:`many`, which submits every
    query before waiting so the micro-batcher can coalesce them into
    vectorized model calls.  The server understands the whole predicate
    family, so the wrapper advertises ``supports_predicates``.
    """

    supports_predicates = True

    def __init__(self, server):
        if not hasattr(server, "query") or not hasattr(server, "query_many"):
            raise TypeError("ServedUdf needs a SetServer-like object")
        self.server = server

    def __call__(
        self, query: tuple[int, ...], predicate: Predicate | str | None = None
    ) -> float:
        return float(self.server.query(query, predicate=predicate))

    def many(
        self,
        queries: Sequence[tuple[int, ...]],
        predicate: Predicate | str | None = None,
    ) -> list[float]:
        return [
            float(value)
            for value in self.server.query_many(queries, predicate=predicate)
        ]


class UdfRegistry:
    """Named scalar functions available to the engine."""

    def __init__(self):
        self._functions: dict[str, Udf] = {}

    def register(self, name: str, function: Udf) -> None:
        """Register ``function`` under ``name`` (replacing any previous)."""
        if not callable(function):
            raise TypeError("UDF must be callable")
        self._functions[name] = function

    def unregister(self, name: str) -> None:
        del self._functions[name]

    def get(self, name: str) -> Udf:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"no UDF registered under {name!r}") from None

    def call(
        self,
        name: str,
        query: Iterable[int],
        predicate: Predicate | str | None = None,
    ) -> float:
        return invoke_udf(
            self.get(name), tuple(sorted(set(query))), as_predicate(predicate)
        )

    def call_many(
        self,
        name: str,
        queries: Sequence[Iterable[int]],
        predicate: Predicate | str | None = None,
    ) -> list[float]:
        """Batched invocation under one captured function lookup."""
        function = self.get(name)
        canonicals = [tuple(sorted(set(q))) for q in queries]
        return invoke_udf_many(function, canonicals, as_predicate(predicate))

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)
