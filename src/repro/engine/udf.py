"""User-defined function registry.

The paper implements its cardinality estimator as a PostgreSQL UDF
(§8.5.3); the mini engine mirrors that: a UDF is a named callable the query
planner can route a COUNT query to instead of executing it exactly.

A UDF may additionally expose a *batch* path: :class:`ServedUdf` wraps a
:class:`repro.serve.SetServer` so a ``udf:`` plan executed over many
queries at once rides the server's micro-batcher instead of looping
single-query model calls.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

__all__ = ["ServedUdf", "UdfRegistry"]

Udf = Callable[[tuple[int, ...]], float]


class ServedUdf:
    """A UDF backed by a serving :class:`~repro.serve.SetServer`.

    Scalar calls delegate to the server's blocking :meth:`query`; the
    engine's batched execution path uses :meth:`many`, which submits every
    query before waiting so the micro-batcher can coalesce them into
    vectorized model calls.
    """

    def __init__(self, server):
        if not hasattr(server, "query") or not hasattr(server, "query_many"):
            raise TypeError("ServedUdf needs a SetServer-like object")
        self.server = server

    def __call__(self, query: tuple[int, ...]) -> float:
        return float(self.server.query(query))

    def many(self, queries: Sequence[tuple[int, ...]]) -> list[float]:
        return [float(value) for value in self.server.query_many(queries)]


class UdfRegistry:
    """Named scalar functions available to the engine."""

    def __init__(self):
        self._functions: dict[str, Udf] = {}

    def register(self, name: str, function: Udf) -> None:
        """Register ``function`` under ``name`` (replacing any previous)."""
        if not callable(function):
            raise TypeError("UDF must be callable")
        self._functions[name] = function

    def unregister(self, name: str) -> None:
        del self._functions[name]

    def get(self, name: str) -> Udf:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"no UDF registered under {name!r}") from None

    def call(self, name: str, query: Iterable[int]) -> float:
        return float(self.get(name)(tuple(sorted(set(query)))))

    def call_many(
        self, name: str, queries: Sequence[Iterable[int]]
    ) -> list[float]:
        """Batched invocation; uses the UDF's ``many`` path when it has one."""
        function = self.get(name)
        canonicals = [tuple(sorted(set(q))) for q in queries]
        many = getattr(function, "many", None)
        if callable(many):
            return [float(value) for value in many(canonicals)]
        return [float(function(canonical)) for canonical in canonicals]

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)
