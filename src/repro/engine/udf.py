"""User-defined function registry.

The paper implements its cardinality estimator as a PostgreSQL UDF
(§8.5.3); the mini engine mirrors that: a UDF is a named callable the query
planner can route a COUNT query to instead of executing it exactly.
"""

from __future__ import annotations

from typing import Callable, Iterable

__all__ = ["UdfRegistry"]

Udf = Callable[[tuple[int, ...]], float]


class UdfRegistry:
    """Named scalar functions available to the engine."""

    def __init__(self):
        self._functions: dict[str, Udf] = {}

    def register(self, name: str, function: Udf) -> None:
        """Register ``function`` under ``name`` (replacing any previous)."""
        if not callable(function):
            raise TypeError("UDF must be callable")
        self._functions[name] = function

    def unregister(self, name: str) -> None:
        del self._functions[name]

    def get(self, name: str) -> Udf:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"no UDF registered under {name!r}") from None

    def call(self, name: str, query: Iterable[int]) -> float:
        return float(self.get(name)(tuple(sorted(set(query)))))

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)
