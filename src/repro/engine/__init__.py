"""Mini relational engine: the PostgreSQL stand-in for Table 12."""

from .gin import GinIndex
from .query import QueryResult, SetQueryEngine
from .table import SetTable
from .udf import ServedUdf, UdfRegistry

__all__ = [
    "SetTable",
    "GinIndex",
    "SetQueryEngine",
    "QueryResult",
    "UdfRegistry",
    "ServedUdf",
]
