"""COUNT-query execution over a :class:`SetTable` (Table 12's three regimes).

The engine answers ``SELECT COUNT(*) FROM t WHERE set <predicate> :query``
through one of three plans, mirroring the paper's PostgreSQL comparison:

* ``seqscan``   — full-table scan with a predicate test per row
  (PostgreSQL without an index);
* ``gin``       — posting-list evaluation on the :class:`GinIndex`
  (PostgreSQL with the hstore index);
* ``udf:NAME``  — delegate to a registered estimator UDF
  (the paper's CLSM-in-PostgreSQL integration; approximate).

The predicate defaults to subset containment (``set @> query``, the
paper's query); ``superset`` / ``overlap>=K`` / ``jaccard>=T`` route to the
matching exact algorithms (:mod:`repro.sets.predicates`) on seqscan and
GIN plans, and to the UDF only when it advertises predicate support.

``explain`` implements the planner choice: GIN if present, else seq scan —
a UDF plan is only used when explicitly requested, as in the paper.
Execution resolves a plan to its *executor* exactly once per call: a batch
(:meth:`SetQueryEngine.count_many`) runs start to finish against the index
captured at resolution time, so a concurrent ``drop_gin_index()`` cannot
tear it into half-GIN, half-error results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from ..sets.predicates import SUBSET, Predicate, as_predicate
from ..sets.vocab import Vocabulary
from .gin import GinIndex
from .table import SetTable
from .udf import ServedUdf, UdfRegistry, invoke_udf, invoke_udf_many

__all__ = ["QueryResult", "SetQueryEngine"]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one COUNT query."""

    count: float
    plan: str
    rows_examined: int
    seconds: float

    @property
    def is_exact(self) -> bool:
        return not self.plan.startswith("udf:")


class SetQueryEngine:
    """Planner + executor for set-predicate COUNT queries."""

    def __init__(self, table: SetTable):
        self.table = table
        self.gin: GinIndex | None = None
        self.udfs = UdfRegistry()

    # -- DDL-ish operations ----------------------------------------------------

    def create_gin_index(self) -> GinIndex:
        """Build (or rebuild) the GIN index on the set column."""
        self.gin = GinIndex(self.table)
        return self.gin

    def drop_gin_index(self) -> None:
        self.gin = None

    def register_udf(self, name: str, function) -> None:
        self.udfs.register(name, function)

    def register_server(self, name: str, server) -> None:
        """Route ``udf:name`` COUNT plans through a serving ``SetServer``.

        The server must serve the cardinality task (COUNT is what a UDF
        plan estimates).  Single queries block on the server; batched
        execution (:meth:`count_many`) submits everything up front so the
        server's micro-batcher coalesces the whole workload.
        """
        kind = getattr(server, "kind", None)
        if kind != "cardinality":
            raise ValueError(
                f"COUNT plans need a cardinality server, got kind={kind!r}"
            )
        self.udfs.register(name, ServedUdf(server))

    # -- planning ----------------------------------------------------------------

    def explain(self, plan: str | None = None) -> str:
        """Resolve the plan for a COUNT query.

        ``None`` lets the planner pick: GIN when available, sequential scan
        otherwise.  Explicit values are validated.
        """
        return self._resolve(plan)[0]

    def _resolve(self, plan: str | None):
        """Validate ``plan`` and capture its executor in one step.

        Returns ``(resolved_name, gin_index, udf_function)`` where exactly
        one of the last two is non-``None`` for indexed/UDF plans.  The
        caller executes against the captured objects, never through
        ``self.gin`` / the registry again, so concurrent DDL (dropping the
        index, unregistering the UDF) cannot change an execution midway.
        """
        gin = self.gin
        if plan is None:
            return ("gin", gin, None) if gin is not None else ("seqscan", None, None)
        if plan == "seqscan":
            return plan, None, None
        if plan == "gin":
            if gin is None:
                raise RuntimeError("no GIN index exists; create_gin_index() first")
            return plan, gin, None
        if plan.startswith("udf:"):
            return plan, None, self.udfs.get(plan[4:])
        raise ValueError(f"unknown plan {plan!r}")

    def _default_plan_name(self, plan: str | None) -> str:
        """Plan *name* without validation — for results that skip execution."""
        if plan is not None:
            return plan
        return "gin" if self.gin is not None else "seqscan"

    # -- execution ----------------------------------------------------------------

    def count(
        self,
        query: Iterable[int],
        plan: str | None = None,
        predicate: Predicate | str | None = None,
    ) -> QueryResult:
        """Run ``COUNT(*) WHERE predicate(query, set)`` under the resolved plan."""
        predicate = as_predicate(predicate)
        canonical = tuple(sorted(set(int(e) for e in query)))
        if not canonical:
            raise ValueError("query must contain at least one element")
        resolved, gin, function = self._resolve(plan)
        started = time.perf_counter()
        if resolved == "seqscan":
            count, examined = self._seqscan(canonical, predicate)
        elif resolved == "gin":
            count = gin.count_matching(canonical, predicate)
            examined = 0
        else:
            count = invoke_udf(function, canonical, predicate)
            examined = 0
        return QueryResult(
            count=float(count),
            plan=resolved,
            rows_examined=examined,
            seconds=time.perf_counter() - started,
        )

    def count_many(
        self,
        queries: Iterable[Iterable[int]],
        plan: str | None = None,
        predicate: Predicate | str | None = None,
    ) -> list[QueryResult]:
        """Run one COUNT per query under a single resolved plan.

        The plan is resolved — and its executor captured — once for the
        whole batch, so every query runs against the same index even if
        the index is dropped or rebuilt concurrently.  For ``udf:`` plans
        whose UDF exposes a batch path (a registered server), all queries
        are submitted together and answered by coalesced vectorized model
        calls; other plans execute per query.  The per-result ``seconds``
        is the mean over the batch for the batched path, since batching
        makes individual timings meaningless.
        """
        predicate = as_predicate(predicate)
        canonicals = []
        for query in queries:
            canonical = tuple(sorted(set(int(e) for e in query)))
            if not canonical:
                raise ValueError("query must contain at least one element")
            canonicals.append(canonical)
        resolved, gin, function = self._resolve(plan)
        if not resolved.startswith("udf:"):
            results = []
            for canonical in canonicals:
                started = time.perf_counter()
                if resolved == "gin":
                    count = gin.count_matching(canonical, predicate)
                    examined = 0
                else:
                    count, examined = self._seqscan(canonical, predicate)
                results.append(
                    QueryResult(
                        count=float(count),
                        plan=resolved,
                        rows_examined=examined,
                        seconds=time.perf_counter() - started,
                    )
                )
            return results
        started = time.perf_counter()
        counts = invoke_udf_many(function, canonicals, predicate)
        mean_seconds = (
            (time.perf_counter() - started) / len(canonicals) if canonicals else 0.0
        )
        return [
            QueryResult(
                count=float(count),
                plan=resolved,
                rows_examined=0,
                seconds=mean_seconds,
            )
            for count in counts
        ]

    def count_tokens(
        self,
        tokens: Iterable[str],
        vocab: Vocabulary,
        plan: str | None = None,
        predicate: Predicate | str | None = None,
    ) -> QueryResult:
        """COUNT for a string-token query; unseen tokens are a defined miss.

        Real queries arrive as strings (hashtags, log tokens).  A token the
        vocabulary never interned cannot occur in any stored set, so under
        ``subset`` the exact count is 0 — returned *before* plan resolution,
        so a miss never raises on a plan whose executor is unavailable
        (``plan="gin"`` with no index, an unregistered ``udf:``).  Under
        the other predicates unknown tokens are dropped from the query:
        exact for ``superset`` and ``overlap`` (unknown elements contribute
        nothing to intersections and never block containment), a documented
        over-approximation for ``jaccard`` (the lost union members would
        only shrink the score); a query of *only* unknown tokens is a miss.
        """
        predicate = as_predicate(predicate)
        ids, unknown = vocab.encode_lenient(tokens)
        if unknown and (predicate.kind == "subset" or not ids):
            return QueryResult(
                count=0.0,
                plan=self._default_plan_name(plan),
                rows_examined=0,
                seconds=0.0,
            )
        return self.count(ids, plan=plan, predicate=predicate)

    def _seqscan(
        self, query: tuple[int, ...], predicate: Predicate = SUBSET
    ) -> tuple[int, int]:
        q = frozenset(query)
        count = 0
        examined = 0
        if predicate.kind == "subset":
            for _, stored in self.table.scan():
                examined += 1
                if q.issubset(stored):
                    count += 1
            return count, examined
        for _, stored in self.table.scan():
            examined += 1
            if predicate.matches(q, stored):
                count += 1
        return count, examined
