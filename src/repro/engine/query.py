"""COUNT-query execution over a :class:`SetTable` (Table 12's three regimes).

The engine answers ``SELECT COUNT(*) FROM t WHERE set @> :query`` through
one of three plans, mirroring the paper's PostgreSQL comparison:

* ``seqscan``   — full-table scan with a subset test per row
  (PostgreSQL without an index);
* ``gin``       — posting-list intersection on the :class:`GinIndex`
  (PostgreSQL with the hstore index);
* ``udf:NAME``  — delegate to a registered estimator UDF
  (the paper's CLSM-in-PostgreSQL integration; approximate).

``explain`` implements the planner choice: GIN if present, else seq scan —
a UDF plan is only used when explicitly requested, as in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from ..sets.vocab import Vocabulary
from .gin import GinIndex
from .table import SetTable
from .udf import ServedUdf, UdfRegistry

__all__ = ["QueryResult", "SetQueryEngine"]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one COUNT query."""

    count: float
    plan: str
    rows_examined: int
    seconds: float

    @property
    def is_exact(self) -> bool:
        return not self.plan.startswith("udf:")


class SetQueryEngine:
    """Planner + executor for subset-containment COUNT queries."""

    def __init__(self, table: SetTable):
        self.table = table
        self.gin: GinIndex | None = None
        self.udfs = UdfRegistry()

    # -- DDL-ish operations ----------------------------------------------------

    def create_gin_index(self) -> GinIndex:
        """Build (or rebuild) the GIN index on the set column."""
        self.gin = GinIndex(self.table)
        return self.gin

    def drop_gin_index(self) -> None:
        self.gin = None

    def register_udf(self, name: str, function) -> None:
        self.udfs.register(name, function)

    def register_server(self, name: str, server) -> None:
        """Route ``udf:name`` COUNT plans through a serving ``SetServer``.

        The server must serve the cardinality task (COUNT is what a UDF
        plan estimates).  Single queries block on the server; batched
        execution (:meth:`count_many`) submits everything up front so the
        server's micro-batcher coalesces the whole workload.
        """
        kind = getattr(server, "kind", None)
        if kind != "cardinality":
            raise ValueError(
                f"COUNT plans need a cardinality server, got kind={kind!r}"
            )
        self.udfs.register(name, ServedUdf(server))

    # -- planning ----------------------------------------------------------------

    def explain(self, plan: str | None = None) -> str:
        """Resolve the plan for a COUNT query.

        ``None`` lets the planner pick: GIN when available, sequential scan
        otherwise.  Explicit values are validated.
        """
        if plan is None:
            return "gin" if self.gin is not None else "seqscan"
        if plan == "seqscan":
            return plan
        if plan == "gin":
            if self.gin is None:
                raise RuntimeError("no GIN index exists; create_gin_index() first")
            return plan
        if plan.startswith("udf:"):
            name = plan[4:]
            if name not in self.udfs:
                raise KeyError(f"no UDF registered under {name!r}")
            return plan
        raise ValueError(f"unknown plan {plan!r}")

    # -- execution ----------------------------------------------------------------

    def count(self, query: Iterable[int], plan: str | None = None) -> QueryResult:
        """Run ``COUNT(*) WHERE set @> query`` under the resolved plan."""
        canonical = tuple(sorted(set(int(e) for e in query)))
        if not canonical:
            raise ValueError("query must contain at least one element")
        resolved = self.explain(plan)
        started = time.perf_counter()
        if resolved == "seqscan":
            count, examined = self._seqscan(canonical)
        elif resolved == "gin":
            count = self.gin.count_contains(canonical)
            examined = 0
        else:
            count = self.udfs.call(resolved[4:], canonical)
            examined = 0
        return QueryResult(
            count=float(count),
            plan=resolved,
            rows_examined=examined,
            seconds=time.perf_counter() - started,
        )

    def count_many(
        self, queries: Iterable[Iterable[int]], plan: str | None = None
    ) -> list[QueryResult]:
        """Run one COUNT per query under a single resolved plan.

        For ``udf:`` plans whose UDF exposes a batch path (a registered
        server), all queries are submitted together and answered by
        coalesced vectorized model calls; other plans execute per query.
        The per-result ``seconds`` is the mean over the batch for the
        batched path, since batching makes individual timings meaningless.
        """
        canonicals = []
        for query in queries:
            canonical = tuple(sorted(set(int(e) for e in query)))
            if not canonical:
                raise ValueError("query must contain at least one element")
            canonicals.append(canonical)
        resolved = self.explain(plan)
        if not resolved.startswith("udf:"):
            return [self.count(canonical, plan=resolved) for canonical in canonicals]
        started = time.perf_counter()
        counts = self.udfs.call_many(resolved[4:], canonicals)
        mean_seconds = (
            (time.perf_counter() - started) / len(canonicals) if canonicals else 0.0
        )
        return [
            QueryResult(
                count=float(count),
                plan=resolved,
                rows_examined=0,
                seconds=mean_seconds,
            )
            for count in counts
        ]

    def count_tokens(
        self,
        tokens: Iterable[str],
        vocab: Vocabulary,
        plan: str | None = None,
    ) -> QueryResult:
        """COUNT for a string-token query; unseen tokens are a defined miss.

        Real queries arrive as strings (hashtags, log tokens).  A token the
        vocabulary never interned cannot occur in any stored set, so the
        exact count is 0 — returned without touching the plan's executor
        instead of surfacing an uncaught ``KeyError`` from strict encoding.
        """
        ids, unknown = vocab.encode_lenient(tokens)
        if unknown:
            return QueryResult(
                count=0.0,
                plan=self.explain(plan),
                rows_examined=0,
                seconds=0.0,
            )
        return self.count(ids, plan=plan)

    def _seqscan(self, query: tuple[int, ...]) -> tuple[int, int]:
        q = frozenset(query)
        count = 0
        examined = 0
        for _, stored in self.table.scan():
            examined += 1
            if q.issubset(stored):
                count += 1
        return count, examined
