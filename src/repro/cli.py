"""Command-line interface: generate data, train structures, run queries.

Usage (installed as the ``repro`` console script, or
``python -m repro.cli``):

.. code-block:: bash

    repro datasets                              # list presets
    repro generate rw-small sets.txt --scale 0.5
    repro stats sets.txt
    repro train cardinality sets.txt est.pkl --kind clsm --epochs 30
    repro train index sets.txt idx.pkl
    repro train bloom sets.txt bf.pkl
    repro train predicate sets.txt suite.pkl   # one estimator per predicate
    repro build index sets.txt idx.pkl --shards 4 --workers 4
    repro bench-shard --dataset rw-small --shards 4
    repro estimate est.pkl 3 17 42             # cardinality of {3, 17, 42}
    repro estimate suite.pkl 3 17 --predicate "overlap>=2"
    repro estimate suite.pkl 3 17 --predicate superset
    repro lookup idx.pkl 3 17                  # first position containing {3, 17}
    repro contains bf.pkl 3 17                 # membership answer
    repro serve est.pkl --port 7007            # concurrent TCP query serving
    repro serve idx.pkl --auto-refresh         # + background staleness repair
    repro serve est.pkl --workers 4            # multi-process worker pool
    repro bench-serve --workers 2              # pool-vs-threaded benchmark
    repro refresh-status --connect 127.0.0.1:7007   # maintenance status JSON
    repro stats --connect 127.0.0.1:7007       # live server telemetry (JSON)
    repro stats --connect 127.0.0.1:7007 --metrics   # Prometheus exposition
    repro trace-dump --connect 127.0.0.1:7007  # recent query-path spans
    repro bench-serve --dataset rw-small       # serving-vs-serial loadgen
    repro scenario list                        # robustness scenario suite
    repro scenario run --all --seeds 3         # run + SLO-grade every scenario
    repro scenario run --fast                  # CI smoke subset, scaled down
    repro scenario trend                       # flag SLO-margin drift across runs
    repro freeze est.pkl                       # attach compiled inference plans
    repro bench-infer --min-speedup 10         # frozen-plan vs autograd timing

Trained structures are pickled whole (model + scaler + auxiliaries), which
matches the paper's memory-measurement methodology.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import pickle
import sys
from pathlib import Path

import numpy as np

from .core import (
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    ModelConfig,
    OutlierRemovalConfig,
    TrainConfig,
)
from .datasets import DATASETS, load_dataset
from .reliability import (
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
)
from .sets import SetCollection

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learned set structures (EDBT 2024 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list the built-in dataset presets")

    generate = commands.add_parser("generate", help="write a preset dataset to a file")
    generate.add_argument("preset", choices=sorted(DATASETS))
    generate.add_argument("out", type=Path)
    generate.add_argument("--scale", type=float, default=None,
                          help="size multiplier (default: REPRO_SCALE or 1.0)")

    stats = commands.add_parser(
        "stats",
        help="print Table-2 statistics of a collection file, or live "
             "telemetry of a running server (--connect)",
    )
    stats.add_argument("collection", type=Path, nargs="?", default=None)
    stats.add_argument("--connect", metavar="HOST:PORT", default=None,
                       help="fetch telemetry from a running `repro serve` "
                            "instead of reading a collection file")
    stats.add_argument("--metrics", action="store_true",
                       help="with --connect: print the Prometheus-style "
                            "exposition (METRICS verb) instead of JSON stats")

    trace_dump = commands.add_parser(
        "trace-dump",
        help="dump recent query-path trace spans from a running server",
    )
    trace_dump.add_argument("--connect", metavar="HOST:PORT", required=True)
    trace_dump.add_argument("--limit", type=int, default=50,
                            help="maximum spans to fetch (newest kept)")
    trace_dump.add_argument("--json", action="store_true",
                            help="print the raw span JSON instead of the "
                                 "one-line-per-span summary")

    train = commands.add_parser("train", help="train a learned structure")
    train.add_argument("task", choices=("cardinality", "index", "bloom", "predicate"))
    train.add_argument("collection", type=Path)
    train.add_argument("out", type=Path)
    train.add_argument("--kind", choices=("lsm", "clsm"), default="clsm")
    train.add_argument("--embedding-dim", type=int, default=8)
    train.add_argument("--epochs", type=int, default=30)
    train.add_argument("--lr", type=float, default=5e-3)
    train.add_argument("--batch-size", type=int, default=1024)
    train.add_argument("--max-subset-size", type=int, default=4)
    train.add_argument("--max-training-samples", type=int, default=40_000)
    train.add_argument("--no-hybrid", action="store_true",
                       help="skip guided outlier removal (regression tasks)")
    train.add_argument("--guarded", action="store_true",
                       help="wrap the structure in the reliability facade "
                            "(exact fallback + health counters)")
    train.add_argument("--seed", type=int, default=0)

    build = commands.add_parser(
        "build",
        help="train a sharded structure (parallel per-shard training)",
    )
    build.add_argument("task", choices=("cardinality", "index", "bloom", "predicate"))
    build.add_argument("collection", type=Path)
    build.add_argument("out", type=Path)
    build.add_argument("--shards", type=int, default=4,
                       help="number of contiguous shards (clamped to the "
                            "collection size)")
    build.add_argument("--workers", type=int, default=1,
                       help="training process-pool size (1 = inline)")
    build.add_argument("--kind", choices=("lsm", "clsm"), default="clsm")
    build.add_argument("--embedding-dim", type=int, default=8)
    build.add_argument("--epochs", type=int, default=30)
    build.add_argument("--lr", type=float, default=5e-3)
    build.add_argument("--batch-size", type=int, default=1024)
    build.add_argument("--max-subset-size", type=int, default=4)
    build.add_argument("--max-training-samples", type=int, default=40_000)
    build.add_argument("--guarded", action="store_true",
                       help="wrap each shard in its reliability facade")
    build.add_argument("--seed", type=int, default=0)

    for name, help_text in (
        ("estimate", "estimate the cardinality of a query subset"),
        ("lookup", "find the first position containing a query subset"),
        ("contains", "answer a subset-membership query"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("structure", type=Path)
        sub.add_argument("elements", type=int, nargs="+")
        if name == "estimate":
            sub.add_argument(
                "--predicate", default="subset",
                help="query semantics: subset (default), superset, "
                     "overlap>=K, or jaccard>=T (needs a structure "
                     "trained with `repro train predicate`)",
            )

    serve = commands.add_parser(
        "serve",
        help="serve a trained structure over TCP with micro-batching",
    )
    serve.add_argument("structure", type=Path)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7007)
    serve.add_argument("--workers", type=int, default=0,
                       help="serve through N worker processes with "
                            "shared-memory plan snapshots and an asyncio "
                            "frontend (0 = single-process threaded tier)")
    serve.add_argument("--max-respawns", type=int, default=None,
                       help="per-worker crash-respawn budget (--workers "
                            "only; default unlimited)")
    _add_serving_knobs(serve)
    serve.add_argument(
        "--auto-refresh", action="store_true",
        help="watch staleness (delta count / aux fraction) and retrain + "
             "hot-swap the structure in the background when a threshold trips",
    )
    serve.add_argument("--refresh-interval", type=float, default=1.0,
                       help="seconds between staleness checks")
    serve.add_argument("--refresh-max-deltas", type=int, default=1000,
                       help="refresh once this many mutations accumulate")
    serve.add_argument("--refresh-max-aux-fraction", type=float, default=0.25,
                       help="refresh once the auxiliary layer holds this "
                            "fraction of answers")
    serve.add_argument("--refresh-min-interval", type=float, default=30.0,
                       help="minimum seconds between two refreshes")
    serve.add_argument("--refresh-epochs", type=int, default=6,
                       help="training epochs per background rebuild")
    serve.add_argument("--refresh-workers", type=int, default=1,
                       help="per-shard rebuild process-pool size (sharded "
                            "structures only)")
    serve.add_argument("--refresh-collection", type=Path, default=None,
                       help="collection file backing rebuilds (needed for "
                            "unsharded cardinality/bloom structures, which "
                            "do not carry their training collection)")
    serve.add_argument("--refresh-backoff-base", type=float, default=0.5,
                       help="base seconds of exponential backoff after a "
                            "failed refresh (doubles per consecutive failure)")
    serve.add_argument("--refresh-breaker-failures", type=int, default=5,
                       help="consecutive refresh failures that open the "
                            "circuit breaker")
    serve.add_argument(
        "--adaptive", action="store_true",
        help="record the served workload and refresh adaptively: rebuilds "
             "are frequency-weighted toward observed queries, and with a "
             "sharded structure only drift-tripped shards are rebuilt "
             "(STALENESS for status; implies --auto-refresh)",
    )
    serve.add_argument("--adaptive-workload-capacity", type=int, default=4096,
                       help="distinct query keys the workload log retains "
                            "(lowest-frequency keys evict past this)")
    serve.add_argument("--adaptive-observe-every", type=int, default=16,
                       help="sample every N-th served query against exact "
                            "truth for observed q-error (0 disables)")
    serve.add_argument("--adaptive-max-local-q-error", type=float, default=4.0,
                       help="per-shard observed q-error that trips a "
                            "targeted shard rebuild")
    serve.add_argument("--adaptive-min-observations", type=int, default=8,
                       help="observations a shard needs in its window "
                            "before its local q-error can trip")
    serve.add_argument("--adaptive-novelty-fraction", type=float, default=0.25,
                       help="fraction of adaptive training samples drawn "
                            "from fresh perturbation sampling instead of "
                            "the observed workload")
    serve.add_argument("--idle-timeout", type=float, default=300.0,
                       help="drop client connections idle this many seconds "
                            "(0 disables)")
    serve.add_argument("--max-line-bytes", type=int, default=65536,
                       help="longest accepted request line")
    serve.add_argument("--request-deadline", type=float, default=30.0,
                       help="per-query answer deadline in seconds (0 disables)")

    refresh_status = commands.add_parser(
        "refresh-status",
        help="query a running server's maintenance status (REFRESH verb)",
    )
    refresh_status.add_argument("--connect", metavar="HOST:PORT", required=True)
    refresh_status.add_argument("--now", action="store_true",
                                help="force a refresh before reporting")
    refresh_status.add_argument("--json", action="store_true",
                                help="print the raw status JSON instead of "
                                     "the human summary")

    bench = commands.add_parser(
        "bench-serve",
        help="load-generate against a SetServer and report QPS + latency",
    )
    bench.add_argument("--dataset", choices=sorted(DATASETS), default="rw-small")
    bench.add_argument("--task", choices=("cardinality", "index", "bloom"),
                       default="cardinality")
    bench.add_argument("--num-queries", type=int, default=2000)
    bench.add_argument("--threads", type=int, default=8)
    bench.add_argument("--workers", type=int, default=0,
                       help="also bench a worker pool of N processes "
                            "(writes results/BENCH_serve_mp.json)")
    bench.add_argument("--min-speedup", type=float, default=0.0,
                       help="required pool-over-serial speedup with "
                            "--workers (default 0.0: parity-only, since "
                            "a 1-core host cannot show a throughput win)")
    bench.add_argument("--epochs", type=int, default=10)
    bench.add_argument("--max-subset-size", type=int, default=4)
    bench.add_argument("--max-training-samples", type=int, default=20_000)
    bench.add_argument("--guarded", action="store_true",
                       help="serve through the reliability facade")
    bench.add_argument("--scale", type=float, default=None,
                       help="dataset size multiplier (default: REPRO_SCALE)")
    bench.add_argument("--out", type=Path, default=None,
                       help="report path (default: results/BENCH_serve.json)")
    bench.add_argument("--seed", type=int, default=0)
    _add_serving_knobs(bench)

    bench_shard = commands.add_parser(
        "bench-shard",
        help="time parallel sharded builds vs one worker and verify results",
    )
    bench_shard.add_argument("--dataset", choices=sorted(DATASETS), default="rw-small")
    bench_shard.add_argument("--task", choices=("cardinality", "index", "bloom"),
                             default="cardinality")
    bench_shard.add_argument("--shards", type=int, default=4)
    bench_shard.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                             help="worker counts to time (each builds the "
                                  "same plan with the same seeds)")
    bench_shard.add_argument("--num-queries", type=int, default=200)
    bench_shard.add_argument("--epochs", type=int, default=6)
    bench_shard.add_argument("--max-subset-size", type=int, default=3)
    bench_shard.add_argument("--max-training-samples", type=int, default=4000)
    bench_shard.add_argument("--scale", type=float, default=None,
                             help="dataset size multiplier (default: REPRO_SCALE)")
    bench_shard.add_argument("--out", type=Path, default=None,
                             help="report path (default: results/BENCH_shard.json)")
    bench_shard.add_argument("--seed", type=int, default=0)

    scenario = commands.add_parser(
        "scenario",
        help="run the declarative robustness scenario suite with SLO grading",
    )
    scenario_commands = scenario.add_subparsers(
        dest="scenario_command", required=True
    )
    scenario_commands.add_parser(
        "list", help="list the built-in scenarios and their SLOs"
    )
    scenario_run = scenario_commands.add_parser(
        "run", help="run scenarios across seeds and grade each run"
    )
    scenario_run.add_argument(
        "names", nargs="*",
        help="scenario names to run (see 'repro scenario list')",
    )
    scenario_run.add_argument("--all", action="store_true",
                              help="run every built-in scenario")
    scenario_run.add_argument("--fast", action="store_true",
                              help="scaled-down variants (CI smoke); with "
                                   "no names, runs the fast subset")
    scenario_run.add_argument("--seeds", type=int, default=3,
                              help="number of seeds per scenario")
    scenario_run.add_argument("--seed", type=int, default=None,
                              help="base seed (default: REPRO_TEST_SEED "
                                   "env or 20260805)")
    scenario_run.add_argument("--out", type=Path, default=None,
                              help="JSONL trajectory path (default: "
                                   "results/BENCH_scenarios.json)")
    scenario_trend = scenario_commands.add_parser(
        "trend",
        help="diff recent runs in the scenario trajectory and flag "
             "SLO-margin drift",
    )
    scenario_trend.add_argument("--path", type=Path, default=None,
                                help="JSONL trajectory to analyze (default: "
                                     "results/BENCH_scenarios.json)")
    scenario_trend.add_argument("--drift-threshold", type=float, default=0.2,
                                help="flag when consumed SLO budget grows by "
                                     "more than this fraction between runs")
    scenario_trend.add_argument("--json", action="store_true",
                                help="print the full report as JSON")

    freeze = commands.add_parser(
        "freeze",
        help="compile a trained structure's model(s) into frozen "
             "inference plans (float64/float32/int8) and re-pickle it",
    )
    freeze.add_argument("structure", type=Path)
    freeze.add_argument("--out", type=Path, default=None,
                        help="output pickle (default: rewrite in place)")
    freeze.add_argument("--dtypes", nargs="+",
                        default=["float64", "float32", "int8"],
                        choices=("float64", "float32", "int8"))
    freeze.add_argument("--active", default="float32",
                        choices=("float64", "float32", "int8"),
                        help="variant the structure serves through")
    freeze.add_argument("--strict", action="store_true",
                        help="fail instead of skipping a variant whose "
                             "accuracy delta exceeds its gate")
    freeze.add_argument("--max-mean-qerror", type=float, default=None,
                        help="override the mean q-error gate for quantized "
                             "variants (regression structures)")
    freeze.add_argument("--max-flip-fraction", type=float, default=None,
                        help="override the decision-flip gate for quantized "
                             "variants (Bloom filters)")

    bench_infer = commands.add_parser(
        "bench-infer",
        help="time frozen plans vs the autograd forward on all three "
             "structures (writes results/BENCH_infer.json)",
    )
    bench_infer.add_argument("--batch-size", type=int, default=1024)
    bench_infer.add_argument("--num-sets", type=int, default=400)
    bench_infer.add_argument("--universe", type=int, default=500)
    bench_infer.add_argument("--repeats", type=int, default=7)
    bench_infer.add_argument("--epochs", type=int, default=3)
    bench_infer.add_argument("--min-speedup", type=float, default=10.0,
                             help="required float32 speedup over autograd "
                                  "(CI smoke uses a relaxed bound)")
    bench_infer.add_argument("--structures", nargs="+",
                             default=["cardinality", "index", "bloom"],
                             choices=("cardinality", "index", "bloom"))
    bench_infer.add_argument("--no-json", action="store_true",
                             help="skip writing results/BENCH_infer.json")
    bench_infer.add_argument("--seed", type=int, default=0)

    return parser


def _add_serving_knobs(sub) -> None:
    sub.add_argument("--max-batch-size", type=int, default=64)
    sub.add_argument("--max-wait-ms", type=float, default=2.0)
    sub.add_argument("--max-queue", type=int, default=1024)
    sub.add_argument("--overflow", choices=("block", "reject", "shed-to-exact"),
                     default="block")
    sub.add_argument("--cache-size", type=int, default=4096)


def _cmd_datasets(_args) -> int:
    for name, spec in DATASETS.items():
        print(f"{name:10s} {spec.paper_name:10s} base size {spec.base_num_sets}")
    return 0


def _cmd_generate(args) -> int:
    collection = load_dataset(args.preset, scale=args.scale)
    collection.save(args.out)
    print(f"wrote {len(collection)} sets to {args.out}")
    return 0


def _parse_address(address: str) -> tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"error: --connect expects HOST:PORT, got {address!r}")
    return host, int(port)


def _fetch_from_server(address: str, verb: str) -> str:
    """Send one protocol verb to a running server and return its reply.

    ``METRICS`` replies are multi-line and terminated by ``# EOF``; every
    other verb answers on a single line.
    """
    import socket

    host, port = _parse_address(address)
    with socket.create_connection((host, port), timeout=10.0) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        stream.write(verb + "\n")
        stream.flush()
        if not verb.upper().startswith("METRICS"):
            return stream.readline().strip()
        lines = []
        for line in stream:
            if line.strip() == "# EOF":
                break
            lines.append(line.rstrip("\n"))
        return "\n".join(lines)


def _cmd_stats(args) -> int:
    if args.connect is not None:
        print(_fetch_from_server(args.connect, "METRICS" if args.metrics else "STATS"))
        return 0
    if args.metrics:
        print("error: --metrics requires --connect", file=sys.stderr)
        return 2
    if args.collection is None:
        print("error: pass a collection file or --connect HOST:PORT",
              file=sys.stderr)
        return 2
    collection = SetCollection.load(args.collection)
    stats = collection.stats()
    for key, value in stats.as_row().items():
        print(f"{key:10s} {value}")
    return 0


def _cmd_trace_dump(args) -> int:
    import json

    payload = _fetch_from_server(args.connect, f"TRACE {max(args.limit, 0)}")
    spans = json.loads(payload or "[]")
    if args.json:
        print(json.dumps(spans, indent=2, sort_keys=True))
        return 0
    if not spans:
        print("no spans recorded")
        return 0
    for span in spans:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span["attrs"].items())
        )
        parent = f" parent={span['parent_id']}" if span.get("parent_id") else ""
        print(
            f"#{span['span_id']:<6d} {span['name']:<14s} "
            f"{span['duration_ms']:9.3f}ms{parent}"
            f"{'  ' + attrs if attrs else ''}"
        )
    return 0


def _build_structure(args, collection: SetCollection):
    """Train the structure described by ``args`` (shared by train/bench-serve)."""
    kind = getattr(args, "kind", "clsm")
    batch_size = getattr(args, "batch_size", 1024)
    lr = getattr(args, "lr", 5e-3)
    model_config = ModelConfig(
        kind=kind, embedding_dim=getattr(args, "embedding_dim", 8), seed=args.seed
    )
    removal = None if getattr(args, "no_hybrid", False) else OutlierRemovalConfig(
        percentile=90.0, at_epochs=(max(args.epochs * 2 // 3, 1),)
    )
    rng = np.random.default_rng(args.seed)
    if args.task == "cardinality":
        structure = LearnedCardinalityEstimator.build(
            collection,
            model_config=model_config,
            train_config=TrainConfig(
                epochs=args.epochs, batch_size=batch_size, lr=lr,
                loss="mse", seed=args.seed,
            ),
            removal=removal,
            max_subset_size=args.max_subset_size,
            max_training_samples=args.max_training_samples,
            rng=rng,
        )
    elif args.task == "predicate":
        from .core import PredicateCardinalitySuite

        structure = PredicateCardinalitySuite.build(
            collection,
            model_config=model_config,
            train_config=TrainConfig(
                epochs=args.epochs, batch_size=batch_size, lr=lr,
                loss="mse", seed=args.seed,
            ),
            removal=removal,
            max_subset_size=args.max_subset_size,
            num_samples=args.max_training_samples,
            rng=rng,
        )
    elif args.task == "index":
        structure = LearnedSetIndex.build(
            collection,
            model_config=model_config,
            train_config=TrainConfig(
                epochs=args.epochs, batch_size=batch_size, lr=lr,
                loss="mse", seed=args.seed,
            ),
            removal=removal,
            max_subset_size=args.max_subset_size,
            max_training_samples=args.max_training_samples,
            rng=rng,
        )
    else:
        structure = LearnedBloomFilter.build(
            collection,
            model_config=model_config,
            train_config=TrainConfig(
                epochs=args.epochs, batch_size=batch_size, lr=lr,
                loss="bce", seed=args.seed,
            ),
            max_subset_size=min(args.max_subset_size, 3),
            max_positive_samples=args.max_training_samples,
            num_negative_samples=args.max_training_samples // 2,
            rng=rng,
        )
    if args.guarded:
        if args.task == "cardinality":
            structure = GuardedCardinalityEstimator.for_collection(
                structure, collection
            )
        elif args.task == "predicate":
            from .reliability import GuardedPredicateSuite

            structure = GuardedPredicateSuite.for_collection(structure, collection)
        elif args.task == "index":
            structure = GuardedSetIndex(structure)
        else:
            structure = GuardedBloomFilter.for_collection(structure, collection)
    return structure


def _cmd_train(args) -> int:
    collection = SetCollection.load(args.collection)
    structure = _build_structure(args, collection)
    with open(args.out, "wb") as handle:
        pickle.dump(structure, handle, protocol=pickle.HIGHEST_PROTOCOL)
    size_kb = args.out.stat().st_size / 1e3
    guarded_note = " guarded" if args.guarded else ""
    print(
        f"trained{guarded_note} {args.task} structure ({args.kind}) "
        f"-> {args.out} ({size_kb:.1f} KB)"
    )
    return 0


def _cmd_build(args) -> int:
    from .shard import ShardedBuilder, ShardPlan

    collection = SetCollection.load(args.collection)
    plan = ShardPlan.contiguous(collection, args.shards)
    removal = None if args.task == "bloom" else OutlierRemovalConfig(
        percentile=90.0, at_epochs=(max(args.epochs * 2 // 3, 1),)
    )
    builder = ShardedBuilder(
        plan,
        workers=args.workers,
        base_seed=args.seed,
        guarded=args.guarded,
        model_config=ModelConfig(
            kind=args.kind, embedding_dim=args.embedding_dim, seed=args.seed
        ),
        train_config=TrainConfig(
            epochs=args.epochs, batch_size=args.batch_size, lr=args.lr,
            seed=args.seed,
        ),
        removal=removal,
        max_subset_size=(
            min(args.max_subset_size, 3) if args.task == "bloom"
            else args.max_subset_size
        ),
        max_training_samples=args.max_training_samples,
    )
    structure = builder.build(args.task)
    with open(args.out, "wb") as handle:
        pickle.dump(structure, handle, protocol=pickle.HIGHEST_PROTOCOL)
    size_kb = args.out.stat().st_size / 1e3
    guarded_note = " guarded" if args.guarded else ""
    print(
        f"built{guarded_note} sharded {args.task} structure "
        f"({len(plan)} shards, {args.workers} workers) "
        f"-> {args.out} ({size_kb:.1f} KB)"
    )
    return 0


def _load_structure(path: Path):
    with open(path, "rb") as handle:
        return pickle.load(handle)


def _report_health(structure) -> None:
    """Print the guarded facade's health-report line (stderr, machine-greppable)."""
    print(structure.health.report_line(), file=sys.stderr)


def _cmd_estimate(args) -> int:
    from .core import PredicateCardinalitySuite
    from .reliability import GuardedPredicateSuite
    from .sets import as_predicate
    from .shard import ShardedCardinalityEstimator

    structure = _load_structure(args.structure)
    if not isinstance(
        structure,
        (
            LearnedCardinalityEstimator,
            GuardedCardinalityEstimator,
            ShardedCardinalityEstimator,
            PredicateCardinalitySuite,
            GuardedPredicateSuite,
        ),
    ):
        print("error: structure is not a cardinality estimator", file=sys.stderr)
        return 2
    try:
        predicate = as_predicate(args.predicate)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if predicate.kind == "subset" and not getattr(
        structure, "supports_predicates", False
    ):
        print(f"{structure.estimate(args.elements):.2f}")
    else:
        try:
            value = structure.estimate(args.elements, predicate=predicate)
        except (KeyError, TypeError, ValueError) as exc:
            print(
                f"error: structure cannot answer predicate "
                f"{predicate.spec!r}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"{value:.2f}")
    if isinstance(structure, (GuardedCardinalityEstimator, GuardedPredicateSuite)):
        _report_health(structure)
    return 0


def _cmd_lookup(args) -> int:
    from .shard import ShardedSetIndex

    structure = _load_structure(args.structure)
    if not isinstance(structure, (LearnedSetIndex, GuardedSetIndex, ShardedSetIndex)):
        print("error: structure is not a set index", file=sys.stderr)
        return 2
    position = structure.lookup(args.elements)
    print("not found" if position is None else str(position))
    if isinstance(structure, GuardedSetIndex):
        _report_health(structure)
    return 0


def _cmd_contains(args) -> int:
    from .shard import ShardedBloomFilter

    structure = _load_structure(args.structure)
    if not isinstance(
        structure, (LearnedBloomFilter, GuardedBloomFilter, ShardedBloomFilter)
    ):
        print("error: structure is not a Bloom filter", file=sys.stderr)
        return 2
    print("present" if structure.contains(args.elements) else "absent")
    if isinstance(structure, GuardedBloomFilter):
        _report_health(structure)
    return 0


def _batch_policy(args):
    from .serve import BatchPolicy

    return BatchPolicy(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        overflow=args.overflow,
    )


def _make_refresher(args, server, structure, workload=None):
    """Build and start the background refresher for ``repro serve``."""
    from .maintain import (
        BackgroundRefresher,
        StalenessPolicy,
        default_rebuilder,
        unwrap_structure,
    )

    collection = (
        SetCollection.load(args.refresh_collection)
        if args.refresh_collection is not None
        else None
    )
    train_config = TrainConfig(
        epochs=args.refresh_epochs,
        seed=args.seed if hasattr(args, "seed") else 0,
    )
    rebuild = default_rebuilder(
        structure,
        collection=collection,
        train_config=train_config,
        workers=args.refresh_workers,
    )
    adaptive = getattr(args, "adaptive", False) and workload is not None
    policy = StalenessPolicy(
        max_deltas=args.refresh_max_deltas,
        max_aux_fraction=args.refresh_max_aux_fraction,
        min_interval_s=args.refresh_min_interval,
        max_local_q_error=(
            args.adaptive_max_local_q_error if adaptive else None
        ),
    )
    common = dict(
        policy=policy,
        interval_s=args.refresh_interval,
        backoff_base_s=getattr(args, "refresh_backoff_base", 0.5),
        breaker_failures=getattr(args, "refresh_breaker_failures", 5),
    )
    if not adaptive:
        return BackgroundRefresher(server, rebuild, **common).start()

    from .adapt import (
        AdaptiveRefresher,
        ShardStalenessTracker,
        workload_shard_rebuilder,
    )

    inner = unwrap_structure(structure)
    tracker = None
    shard_rebuild = None
    if getattr(inner, "plan", None) is not None:
        tracker = ShardStalenessTracker(
            inner.plan.offsets(),
            min_observations=args.adaptive_min_observations,
        )
        shard_rebuild = workload_shard_rebuilder(
            workload,
            train_config=train_config,
            base_seed=getattr(args, "seed", 0) or 0,
        )
    return AdaptiveRefresher(
        server, rebuild,
        workload=workload,
        tracker=tracker,
        shard_rebuild=shard_rebuild,
        **common,
    ).start()


def _cmd_serve(args) -> int:
    import json

    from .serve import AsyncTcpFrontend, SetServer, TcpServeFrontend, WorkerPool

    structure = _load_structure(args.structure)
    workload = None
    if args.adaptive:
        from .adapt import WorkloadLog

        workload = WorkloadLog(
            capacity=args.adaptive_workload_capacity,
            observe_every=args.adaptive_observe_every,
        )
    if args.workers > 0:
        backend = WorkerPool(
            structure,
            workers=args.workers,
            policy=_batch_policy(args),
            cache_size=args.cache_size,
            max_respawns=args.max_respawns,
            workload=workload,
        )
        tier_note = f"{args.workers} worker processes, asyncio frontend"
    else:
        backend = SetServer(
            structure, policy=_batch_policy(args), cache_size=args.cache_size,
            workload=workload,
        )
        tier_note = "threaded tier"
    with backend:
        refresher = None
        if args.auto_refresh or args.adaptive:
            try:
                refresher = _make_refresher(
                    args, backend, structure, workload=workload
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        frontend_class = (
            AsyncTcpFrontend if args.workers > 0 else TcpServeFrontend
        )
        frontend = frontend_class(
            backend,
            host=args.host,
            port=args.port,
            idle_timeout_s=args.idle_timeout or None,
            max_line_bytes=args.max_line_bytes,
            request_deadline_s=args.request_deadline or None,
        )
        if args.workers > 0:
            frontend.start_background()
        host, port = frontend.address
        if refresher is not None and workload is not None:
            refresh_note = "; adaptive refresh on (STALENESS for status)"
        elif refresher is not None:
            refresh_note = "; auto-refresh on (REFRESH for status)"
        else:
            refresh_note = ""
        print(
            f"serving {backend.kind} queries on {host}:{port} "
            f"({tier_note}; one query per line; STATS for telemetry, "
            f"QUIT to disconnect){refresh_note}"
        )
        try:
            if args.workers > 0:
                frontend.wait()
            else:
                frontend.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            frontend.shutdown()
            if refresher is not None:
                refresher.close()
        if args.workers > 0:
            print(
                json.dumps(backend.stats_dict().get("pool", {}), sort_keys=True),
                file=sys.stderr,
            )
        else:
            print(backend.stats.report_line(), file=sys.stderr)
        if refresher is not None:
            print(
                f"[maintain] refreshes={refresher.refreshes} "
                f"failures={refresher.failures} "
                f"replayed={refresher.replayed}",
                file=sys.stderr,
            )
    return 0


def _cmd_refresh_status(args) -> int:
    import json

    verb = "REFRESH NOW" if args.now else "REFRESH"
    payload = _fetch_from_server(args.connect, verb)
    if payload.startswith("error"):
        print(payload, file=sys.stderr)
        return 1
    status = json.loads(payload)
    if not status.get("auto_refresh", False):
        print("auto-refresh is not enabled on this server", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    state = status.get("state", {})
    print(
        f"{status['kind']} maintainer "
        f"{'running' if status.get('running') else 'stopped'} "
        f"(check interval {status.get('interval_s')}s)"
    )
    print(
        f"refreshes {status.get('refreshes', 0)} "
        f"(failures {status.get('failures', 0)}, "
        f"replayed deltas {status.get('replayed_deltas', 0)}); "
        f"serving snapshot v{status.get('snapshot_version')}"
    )
    print(
        f"pending deltas {state.get('pending_deltas', 0)}, "
        f"aux fraction {state.get('aux_fraction', 0.0):.3f}, "
        f"probe q-error {state.get('probe_q_error')}"
    )
    if status.get("last_reasons"):
        print(f"last refresh reasons: {', '.join(status['last_reasons'])}")
    if status.get("last_error"):
        print(f"last error: {status['last_error']}")
    return 0


def _cmd_bench_serve(args) -> int:
    from .bench.serving import (
        run_serving_benchmark,
        serving_workload,
        write_serving_report,
    )

    collection = load_dataset(args.dataset, scale=args.scale)
    structure = _build_structure(args, collection)
    queries = serving_workload(
        collection,
        args.num_queries,
        max_subset_size=args.max_subset_size,
        seed=args.seed + 1,
    )
    if args.workers > 0:
        return _bench_serve_mp(args, structure, queries)
    report = run_serving_benchmark(
        structure,
        queries,
        threads=args.threads,
        policy=_batch_policy(args),
        cache_size=args.cache_size,
    )
    report["dataset"] = args.dataset
    report["guarded"] = args.guarded
    path = write_serving_report(report, args.out)
    print(
        f"{args.task} serving on {args.dataset}: "
        f"serial {report['serial_qps']:,.0f} qps -> "
        f"served {report['served_qps']:,.0f} qps "
        f"({report['speedup']:.2f}x, {args.threads} threads)"
    )
    print(
        f"latency p50={report['p50_ms']:.3f}ms p95={report['p95_ms']:.3f}ms "
        f"p99={report['p99_ms']:.3f}ms  mean_batch={report['mean_batch_size']:.1f}  "
        f"mismatches={report['mismatches']}"
    )
    print(f"wrote {path}")
    return 0 if report["mismatches"] == 0 else 1


def _bench_serve_mp(args, structure, queries) -> int:
    from .bench.serving_mp import run_mp_serving_benchmark, write_mp_serving_report

    report = run_mp_serving_benchmark(
        structure,
        queries,
        workers=args.workers,
        threads=args.threads,
        policy=_batch_policy(args),
        cache_size=args.cache_size,
        min_speedup=args.min_speedup,
    )
    report["dataset"] = args.dataset
    report["guarded"] = args.guarded
    path = write_mp_serving_report(report, args.out)
    print(
        f"{args.task} mp-serving on {args.dataset}: "
        f"serial {report['serial_qps']:,.0f} qps, "
        f"threaded {report['threaded_qps']:,.0f} qps, "
        f"pool {report['pool_qps']:,.0f} qps "
        f"({report['pool_speedup']:.2f}x over serial, "
        f"{args.workers} workers on {report['cpu_count']} core(s))"
    )
    print(
        f"mismatches: threaded={report['threaded_mismatches']} "
        f"pool={report['pool_mismatches']}"
    )
    print(f"caveat: {report['caveat']}")
    print(f"wrote {path}")
    return 0 if report["passed"] else 1


def _cmd_bench_shard(args) -> int:
    from .bench.sharding import run_shard_benchmark, write_shard_report

    collection = load_dataset(args.dataset, scale=args.scale)
    report = run_shard_benchmark(
        collection,
        task=args.task,
        num_shards=args.shards,
        worker_counts=tuple(args.workers),
        num_queries=args.num_queries,
        epochs=args.epochs,
        max_subset_size=args.max_subset_size,
        max_training_samples=args.max_training_samples,
        seed=args.seed,
    )
    report["dataset"] = args.dataset
    path = write_shard_report(report, args.out)
    times = report["build_seconds"]
    timings = "  ".join(
        f"{workers}w={times[str(workers)]:.2f}s" for workers in args.workers
    )
    print(
        f"sharded {args.task} build on {args.dataset} "
        f"({report['num_shards']} shards, cpu_count={report['cpu_count']}): "
        f"{timings}"
    )
    print(
        f"speedup {report['speedup']:.2f}x at {report['speedup_workers']} workers; "
        f"violations {sum(report['violations'].values())}"
    )
    print(f"wrote {path}")
    return 0 if sum(report["violations"].values()) == 0 else 1


def _cmd_scenario(args) -> int:
    from .scenario import (
        FAST_SUBSET,
        SCENARIOS,
        append_record,
        grade,
        make_record,
        run_scenario,
    )

    if args.scenario_command == "list":
        for name, spec in SCENARIOS.items():
            print(f"{name:12s} {spec.steps:3d} steps  {spec.description}")
        return 0

    if args.scenario_command == "trend":
        return _cmd_scenario_trend(args)

    if args.all:
        names = list(SCENARIOS)
    elif args.names:
        names = list(args.names)
    elif args.fast:
        names = list(FAST_SUBSET)
    else:
        print(
            "error: name at least one scenario, or use --all / --fast",
            file=sys.stderr,
        )
        return 2
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        print(
            f"error: unknown scenario(s) {', '.join(unknown)}; "
            f"available: {', '.join(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2

    base_seed = args.seed
    if base_seed is None:
        base_seed = int(os.environ.get("REPRO_TEST_SEED", "20260805"))
    seeds = [base_seed + offset for offset in range(max(args.seeds, 1))]
    print(
        f"scenario suite: {len(names)} scenario(s) x {len(seeds)} seed(s), "
        f"base seed {base_seed}"
        + (" [fast]" if args.fast else "")
    )
    failures = 0
    for name in names:
        spec = SCENARIOS[name]
        for seed in seeds:
            obs = run_scenario(spec, seed, fast=args.fast)
            violations = grade(spec, obs)
            record = make_record(spec, seed, obs, violations, fast=args.fast)
            path = append_record(record, args.out)
            verdict = "PASS" if not violations else "FAIL"
            print(
                f"[{verdict}] {name} seed={seed} ops={obs['ops']} "
                f"p99={obs['p99_ms']:.1f}ms refreshes={obs['refreshes']} "
                f"wall={obs['wall_s']:.1f}s"
            )
            for violation in violations:
                print(f"       violation: {violation}")
            failures += bool(violations)
    print(f"appended {len(names) * len(seeds)} record(s) to {path}")
    if failures:
        print(f"{failures} run(s) violated their SLOs", file=sys.stderr)
    return 1 if failures else 0


def _cmd_scenario_trend(args) -> int:
    import json

    from .scenario import scenario_trend

    try:
        report = scenario_trend(
            path=args.path, drift_threshold=args.drift_threshold
        )
    except FileNotFoundError as exc:
        print(f"error: no scenario trajectory at {exc.filename}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1
    print(
        f"{report['records']} record(s) across {len(report['keys'])} "
        f"(scenario, seed) key(s)"
        + (f"; skipped {report['skipped_lines']} bad line(s)"
           if report["skipped_lines"] else "")
    )
    for label, entry in report["keys"].items():
        budget = entry["slo_consumption"]
        headline = (
            f"p99 at {budget['p99_ms']:.0%} of budget"
            if "p99_ms" in budget else "no bounded SLOs"
        )
        drift = entry["drift"].get("p99_ms")
        drift_note = f", drift {drift:+.0%}" if drift is not None else ""
        status = "PASS" if entry["passed"] else "FAIL"
        print(f"  [{status}] {label}: {headline}{drift_note} "
              f"({entry['runs']} run(s))")
    if report["flags"]:
        print("flags:")
        for flag in report["flags"]:
            print(f"  ! {flag}")
    else:
        print("no SLO-margin drift detected")
    return 0 if report["ok"] else 1


def _cmd_freeze(args) -> int:
    from .infer import FreezeError, FrozenVariantRejected, GateConfig, freeze_structure

    try:
        structure = _load_structure(args.structure)
    except FileNotFoundError:
        print(f"error: no such structure pickle: {args.structure}",
              file=sys.stderr)
        return 2
    overrides = {}
    if args.max_mean_qerror is not None:
        overrides["max_mean_qerror"] = args.max_mean_qerror
    if args.max_flip_fraction is not None:
        overrides["max_flip_fraction"] = args.max_flip_fraction
    gates = dataclasses.replace(GateConfig(), **overrides)
    try:
        report = freeze_structure(
            structure,
            dtypes=tuple(args.dtypes),
            active=args.active,
            gates=gates,
            strict=args.strict,
        )
    except FrozenVariantRejected as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FreezeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = args.out or args.structure
    with open(out, "wb") as handle:
        pickle.dump(structure, handle, protocol=pickle.HIGHEST_PROTOCOL)
    for index, part in enumerate(report.parts):
        for name, entry in sorted(part["reports"].items()):
            if entry.get("accepted"):
                plan = part["plans"].variants[name]
                active_note = " [active]" if name == part["plans"].active else ""
                print(
                    f"part {index}: {name:8s} accepted "
                    f"({plan.size_bytes() / 1e3:.1f} KB){active_note}"
                )
            else:
                print(
                    f"part {index}: {name:8s} rejected -- {entry.get('reason')}"
                )
    size_kb = Path(out).stat().st_size / 1e3
    print(f"froze {report.kind} structure -> {out} ({size_kb:.1f} KB)")
    return 0


def _cmd_bench_infer(args) -> int:
    from .bench.infer import run_infer_bench

    report = run_infer_bench(
        num_sets=args.num_sets,
        universe=args.universe,
        batch_size=args.batch_size,
        repeats=args.repeats,
        epochs=args.epochs,
        seed=args.seed,
        min_speedup=args.min_speedup,
        structures=tuple(args.structures),
        write_json=not args.no_json,
    )
    if not report["passed"]:
        print(
            f"bench-infer FAILED: min float32 speedup "
            f"{report['min_float32_speedup']:.2f}x < {args.min_speedup}x "
            f"or a published variant escaped its gate",
            file=sys.stderr,
        )
        return 1
    print(
        f"bench-infer passed: min float32 speedup "
        f"{report['min_float32_speedup']:.2f}x (required {args.min_speedup}x)"
    )
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "trace-dump": _cmd_trace_dump,
    "train": _cmd_train,
    "build": _cmd_build,
    "estimate": _cmd_estimate,
    "lookup": _cmd_lookup,
    "contains": _cmd_contains,
    "serve": _cmd_serve,
    "refresh-status": _cmd_refresh_status,
    "bench-serve": _cmd_bench_serve,
    "bench-shard": _cmd_bench_shard,
    "bench-infer": _cmd_bench_infer,
    "freeze": _cmd_freeze,
    "scenario": _cmd_scenario,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
