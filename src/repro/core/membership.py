"""Learned set Bloom filter (paper §4.3, evaluated in §8.4).

A DeepSets classifier scores subset membership; scores below the threshold
fall through to a **backup Bloom filter** holding exactly the positive
training subsets the model got wrong, so there are *no false negatives* on
the indexed universe — the same guarantee a traditional Bloom filter gives
(Kraska et al.'s construction, adapted to sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..nn.data import RaggedArray, SetDataLoader
from ..nn.serialize import state_dict_bytes
from ..baselines.bloom import BloomFilter
from ..reliability.faults import corrupt_prediction, corrupt_predictions
from ..sets.collection import SetCollection
from ..sets.inverted import InvertedIndex
from ..sets.subsets import negative_membership_samples, positive_membership_samples
from .config import ModelConfig
from .hooks import UpdateNotifier
from .qerror import binary_accuracy
from .training import TrainConfig, Trainer

__all__ = ["LearnedBloomFilter"]


@dataclass
class _BuildReport:
    num_positives: int = 0
    num_negatives: int = 0
    num_backup_entries: int = 0
    seconds_per_epoch: float = 0.0
    total_seconds: float = 0.0
    train_accuracy: float = field(default=float("nan"))


class LearnedBloomFilter(UpdateNotifier):
    """Classifier + backup filter answering subset-membership queries."""

    def __init__(self, model, threshold: float = 0.5):
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.model = model
        self.threshold = threshold
        self.backup: BloomFilter | None = None
        self.report = _BuildReport()
        # Validation aid: the positives this filter guarantees (kept only
        # in memory; not part of the serialized structure or its size).
        self.trained_positives: tuple[tuple[int, ...], ...] = ()
        self.infer_plan = None

    # -- compiled inference ----------------------------------------------------

    def attach_plan(self, plan) -> None:
        """Serve classifier scores through a frozen plan (None detaches)."""
        self.infer_plan = plan

    def detach_plan(self) -> None:
        """Drop the attached plan; queries return to the autograd path."""
        self.infer_plan = None

    def _predict_scaled(self, sets) -> np.ndarray:
        plan = self.infer_plan
        if plan is not None:
            scores = plan.predict_scaled(self.model, sets)
            if scores is not None:
                return scores
        return self.model.predict(sets)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        collection: SetCollection,
        model_config: ModelConfig | None = None,
        train_config: TrainConfig | None = None,
        max_subset_size: int | None = 4,
        max_positive_samples: int | None = None,
        num_negative_samples: int | None = None,
        threshold: float = 0.5,
        backup_fp_rate: float = 0.01,
        rng: np.random.Generator | None = None,
    ) -> "LearnedBloomFilter":
        """Generate positive/negative training data and train the filter.

        Negatives are sampled combinations of existing elements verified to
        be absent (§7.1.2); their count defaults to matching the positives.
        """
        rng = rng or np.random.default_rng(
            train_config.seed if train_config else None
        )
        positives = positive_membership_samples(
            collection, max_subset_size, max_positive_samples, rng
        )
        index = InvertedIndex(collection)
        negatives = negative_membership_samples(
            collection,
            index,
            num_samples=num_negative_samples or len(positives),
            max_subset_size=max_subset_size or 4,
            rng=rng,
        )
        return cls.from_training_data(
            positives,
            negatives,
            max_element_id=collection.max_element_id(),
            model_config=model_config,
            train_config=train_config,
            threshold=threshold,
            backup_fp_rate=backup_fp_rate,
            rng=rng,
        )

    @classmethod
    def from_training_data(
        cls,
        positives: Sequence[tuple[int, ...]],
        negatives: Sequence[tuple[int, ...]],
        max_element_id: int,
        model_config: ModelConfig | None = None,
        train_config: TrainConfig | None = None,
        threshold: float = 0.5,
        backup_fp_rate: float = 0.01,
        rng: np.random.Generator | None = None,
    ) -> "LearnedBloomFilter":
        if not positives:
            raise ValueError("at least one positive sample is required")
        model_config = model_config or ModelConfig(
            embedding_dim=2, phi_hidden=(8,), rho_hidden=(8, 8)
        )
        train_config = train_config or TrainConfig(loss="bce")
        if train_config.loss != "bce":
            raise ValueError("the membership task trains with the 'bce' loss")
        model = model_config.build(max_element_id)
        filter_ = cls(model, threshold=threshold)

        samples = list(positives) + list(negatives)
        labels = np.concatenate(
            [np.ones(len(positives)), np.zeros(len(negatives))]
        )
        loader = SetDataLoader(
            RaggedArray(samples),
            labels,
            batch_size=train_config.batch_size,
            rng=rng or np.random.default_rng(train_config.seed),
        )
        trainer = Trainer(model, train_config)
        history = trainer.fit(loader)

        # Backup filter: exactly the positives the model misses — this is
        # what eliminates false negatives.
        scores = model.predict(list(positives))
        missed = [p for p, s in zip(positives, scores) if s < threshold]
        if missed:
            filter_.backup = BloomFilter(
                capacity=len(missed), fp_rate=backup_fp_rate
            )
            for subset in missed:
                filter_.backup.add_set(subset)

        filter_.trained_positives = tuple(positives)
        all_scores = model.predict(samples)
        filter_.report = _BuildReport(
            num_positives=len(positives),
            num_negatives=len(negatives),
            num_backup_entries=len(missed),
            seconds_per_epoch=history.seconds_per_epoch,
            total_seconds=history.total_seconds,
            train_accuracy=binary_accuracy(all_scores, labels, threshold),
        )
        return filter_

    # -- queries --------------------------------------------------------------

    def max_known_id(self) -> int:
        """Largest element id the classifier can embed."""
        model = self.model
        if hasattr(model, "vocab_size"):
            return model.vocab_size - 1
        return model.compressor.max_value

    # Backwards-compatible private alias (pre-sharding callers).
    _max_known_id = max_known_id

    def _in_universe(self, canonical: tuple[int, ...]) -> bool:
        return bool(canonical) and 0 <= canonical[0] and canonical[-1] <= self.max_known_id()

    def score(self, query: Iterable[int]) -> float:
        """Raw membership probability from the classifier.

        Queries containing elements outside the trained universe score 0 —
        an element the collection never contained cannot be a member of any
        stored set (though the backup filter may still hold it if it was
        inserted post-training).
        """
        canonical = tuple(sorted(set(query)))
        if not self._in_universe(canonical):
            return 0.0
        return corrupt_prediction(float(self._predict_scaled([canonical])[0]))

    def contains(self, query: Iterable[int]) -> bool:
        """Membership answer; model first, backup filter on rejection.

        A non-finite score (corrupted weights, injected faults) fails
        *open*: the Bloom contract tolerates false positives but never
        false negatives, and a NaN carries no evidence of absence.
        """
        score = self.score(query)
        if not np.isfinite(score):
            return True
        if score >= self.threshold:
            return True
        if self.backup is not None:
            return self.backup.contains_set(set(query))
        return False

    def __contains__(self, query: Iterable[int]) -> bool:
        return self.contains(query)

    def score_many(self, queries: Sequence[Iterable[int]]) -> np.ndarray:
        """Vectorized :meth:`score`: out-of-universe queries score 0.

        Duplicate queries are collapsed to their unique canonical forms
        before the forward pass and scattered back.
        """
        canonicals = [tuple(sorted(set(q))) for q in queries]
        scores = np.zeros(len(canonicals), dtype=np.float64)
        unique_sets: list[tuple[int, ...]] = []
        unique_slot: dict[tuple[int, ...], int] = {}
        model_rows: list[int] = []
        model_slots: list[int] = []
        for row, canonical in enumerate(canonicals):
            if not self._in_universe(canonical):
                continue
            slot = unique_slot.get(canonical)
            if slot is None:
                slot = unique_slot[canonical] = len(unique_sets)
                unique_sets.append(canonical)
            model_rows.append(row)
            model_slots.append(slot)
        if unique_sets:
            predicted = corrupt_predictions(self._predict_scaled(unique_sets))
            scores[model_rows] = predicted[model_slots]
        return scores

    def contains_many(self, queries: Sequence[Iterable[int]]) -> np.ndarray:
        """Vectorized membership answers (non-finite scores fail open)."""
        canonicals = [tuple(sorted(set(q))) for q in queries]
        scores = self.score_many(canonicals)
        answers = (scores >= self.threshold) | ~np.isfinite(scores)
        if self.backup is not None:
            for row in np.flatnonzero(~answers):
                answers[row] = self.backup.contains_set(set(canonicals[row]))
        return answers

    # -- updates (paper §7.2) ----------------------------------------------------

    def insert(self, subset, expected_inserts: int = 1024) -> None:
        """Index a new subset without retraining.

        Updates flow into the backup Bloom filter (created lazily with
        ``expected_inserts`` capacity), preserving the no-false-negative
        guarantee for inserted subsets; the classifier is rebuilt only when
        the filter saturates.
        """
        if self.backup is None:
            self.backup = BloomFilter(capacity=expected_inserts, fp_rate=0.01)
        self.backup.add_set(set(subset))
        self._notify_update(tuple(sorted(set(subset))))

    # -- accounting ------------------------------------------------------------

    def model_bytes(self) -> int:
        """Float32 weight footprint (the LSM/CLSM columns of Table 10)."""
        return state_dict_bytes(self.model)

    def backup_bytes(self) -> int:
        """Bit-array size of the backup filter (0 when none was needed)."""
        return self.backup.size_bytes() if self.backup is not None else 0

    def total_bytes(self) -> int:
        """Model + backup-filter footprint."""
        return self.model_bytes() + self.backup_bytes()
