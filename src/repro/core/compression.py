"""Per-element lossless compression (paper Section 5, Algorithm 1).

An element id is decomposed into ``ns`` sub-elements through repeated
division by a divisor ``sv_d``: at each step the remainder is emitted and
the quotient carries on; the final quotient is the last sub-element.  With
the optimal divisor ``sv_d = ceil(max_id ** (1/ns))`` every sub-element
vocabulary has roughly ``max_id ** (1/ns)`` entries — the embedding matrix
shrinks from ``O(max_id)`` rows to ``O(ns * max_id^{1/ns})`` rows, which is
what makes learned Bloom filters competitive at all (Figure 3).

``sv_d`` is *tunable* (Table 6): any value between 2 and ``max_id`` trades
memory against the pattern complexity the network must learn; ``sv_d``
larger than ``max_id`` degenerates to no compression.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "optimal_divisor",
    "compress_element",
    "decompress_element",
    "ElementCompressor",
    "embedding_matrix_entries",
    "embedding_matrix_bytes",
    "compressed_input_dims",
]


def optimal_divisor(max_value: int, ns: int) -> int:
    """The paper's ``sv_d = ceil(ns-th root of max_value)`` (at least 2)."""
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    if ns < 1:
        raise ValueError("ns must be at least 1")
    if ns == 1:
        return max(2, max_value + 1)
    root = math.ceil(max(max_value, 1) ** (1.0 / ns))
    # Guard against floating point undershoot (e.g. 1000**(1/3) = 9.9999...).
    while root**ns < max_value:
        root += 1
    return max(2, root)


def compress_element(element: int, divisor: int, ns: int) -> tuple[int, ...]:
    """Algorithm 1: split ``element`` into ``ns`` sub-elements.

    Returns ``(r_1, ..., r_{ns-1}, q)`` — the remainders of successive
    divisions followed by the final quotient.  Lossless together with
    ``divisor``.
    """
    if element < 0:
        raise ValueError("element ids must be non-negative")
    if divisor < 2:
        raise ValueError("divisor must be at least 2")
    current = int(element)
    parts: list[int] = []
    for _ in range(ns - 1):
        quotient, remainder = divmod(current, divisor)
        parts.append(remainder)
        current = quotient
    parts.append(current)
    return tuple(parts)


def decompress_element(parts: tuple[int, ...], divisor: int) -> int:
    """Inverse of :func:`compress_element`."""
    value = parts[-1]
    for remainder in reversed(parts[:-1]):
        value = value * divisor + remainder
    return int(value)


class ElementCompressor:
    """Vectorized compressor bound to a dataset's element universe.

    Parameters
    ----------
    max_value:
        Largest element id in the collection (``max_{v_id}``).
    ns:
        Number of sub-elements (the paper recommends 2 or 3).
    divisor:
        Compression factor ``sv_d``; defaults to the optimal (most
        compressing) value.  Larger divisors (Table 6) enlarge the
        remainder vocabulary and improve accuracy at a memory cost.
    """

    def __init__(self, max_value: int, ns: int = 2, divisor: int | None = None):
        if ns < 1:
            raise ValueError("ns must be at least 1")
        self.max_value = int(max_value)
        self.ns = ns
        self.divisor = int(divisor) if divisor is not None else optimal_divisor(
            max_value, ns
        )
        if self.divisor < 2:
            raise ValueError("divisor must be at least 2")

    def compress(self, element: int) -> tuple[int, ...]:
        return compress_element(element, self.divisor, self.ns)

    def decompress(self, parts: tuple[int, ...]) -> int:
        return decompress_element(parts, self.divisor)

    def compress_array(self, elements: np.ndarray) -> np.ndarray:
        """Compress a flat id array to shape ``(ns, len(elements))``.

        Row ``i`` holds the ``i``-th sub-element of every input element, in
        the same order as :func:`compress_element`.
        """
        current = np.asarray(elements, dtype=np.int64)
        rows = np.empty((self.ns, len(current)), dtype=np.int64)
        for i in range(self.ns - 1):
            rows[i] = current % self.divisor
            current = current // self.divisor
        rows[self.ns - 1] = current
        return rows

    def vocab_sizes(self) -> tuple[int, ...]:
        """Embedding-table row counts per sub-element position.

        Remainder positions need ``divisor`` rows; the final quotient is at
        most ``max_value // divisor^(ns-1)``.
        """
        sizes = [self.divisor] * (self.ns - 1)
        sizes.append(self.max_value // self.divisor ** (self.ns - 1) + 1)
        return tuple(sizes)

    def total_vocab(self) -> int:
        """Total embedding rows across all sub-element tables (Figure 8)."""
        return sum(self.vocab_sizes())

    def __repr__(self) -> str:
        return (
            f"ElementCompressor(max_value={self.max_value}, ns={self.ns}, "
            f"divisor={self.divisor})"
        )


def embedding_matrix_entries(vocab_size: int, embedding_dim: int) -> int:
    """Number of weights in a ``vocab_size x embedding_dim`` table."""
    return vocab_size * embedding_dim


def embedding_matrix_bytes(
    vocab_size: int, embedding_dim: int, bytes_per_weight: int = 4
) -> int:
    """Float32 footprint of an embedding table (Figure 3's learned curve)."""
    return embedding_matrix_entries(vocab_size, embedding_dim) * bytes_per_weight


def compressed_input_dims(max_value: int, ns: int) -> int:
    """One-hot input width after compressing with optimal ``sv_d`` (Fig. 8).

    For ``ns = 1`` this is the uncompressed vocabulary size; higher ``ns``
    shrinks it towards ``ns * max_value^{1/ns}``.
    """
    if ns == 1:
        return max_value + 1
    return ElementCompressor(max_value, ns).total_vocab()
